use super::*;
use crate::arch::Dataflow;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan_tensor::{s_conv, t_conv, w_conv_for_s_layer, w_conv_for_t_layer, ConvGeom};

fn phase(kind: ConvKind) -> ConvShape {
    let geom = ConvGeom::down(12, 12, 4, 4, 2, 6, 6).unwrap();
    ConvShape::new(kind, geom, 5, 3, 12, 12)
}

#[test]
fn parity_order_is_a_permutation() {
    let mut order = kernel_parity_order(4, 4, 2);
    assert_eq!(order.len(), 16);
    order.sort_unstable();
    order.dedup();
    assert_eq!(order.len(), 16);
    // Stride 1: plain raster order.
    assert_eq!(
        kernel_parity_order(2, 2, 1),
        vec![(0, 0), (0, 1), (1, 0), (1, 1)]
    );
}

#[test]
fn zfost_s_conv_matches_reference_and_schedule() {
    let mut rng = SmallRng::seed_from_u64(1);
    let p = phase(ConvKind::S);
    let x: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
    let zf = Zfost::new(4, 4, 2);
    let out = zfost_s_conv(&zf, &p, &x, &k).unwrap();
    let reference = s_conv(&x, &k, p.geom()).unwrap();
    assert!(out.output.max_abs_diff(&reference) < 1e-9);
    assert_eq!(out.cycles, zf.schedule(&p).cycles);
}

#[test]
fn zfost_t_conv_matches_reference_and_schedule() {
    let mut rng = SmallRng::seed_from_u64(2);
    let p = phase(ConvKind::T);
    let x: Fmaps<f64> = Fmaps::random(5, 6, 6, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
    let zf = Zfost::new(2, 3, 2);
    let out = zfost_t_conv(&zf, &p, &x, &k).unwrap();
    let reference = t_conv(&x, &k, p.geom()).unwrap();
    assert!(
        out.output.max_abs_diff(&reference) < 1e-9,
        "diff {}",
        out.output.max_abs_diff(&reference)
    );
    assert_eq!(out.cycles, zf.schedule(&p).cycles);
}

#[test]
fn zfwst_wgrad_s_matches_reference_and_schedule() {
    let mut rng = SmallRng::seed_from_u64(3);
    let p = phase(ConvKind::WGradS);
    let data: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
    let err: Fmaps<f64> = Fmaps::random(5, 6, 6, 1.0, &mut rng);
    let zf = Zfwst::new(3, 3, 4);
    let out = zfwst_wgrad_s(&zf, &p, &data, &err).unwrap();
    let reference = w_conv_for_s_layer(&data, &err, p.geom()).unwrap();
    assert!(out.output.max_abs_diff(&reference) < 1e-9);
    assert_eq!(out.cycles, zf.schedule(&p).cycles);
}

#[test]
fn zfwst_wgrad_t_matches_reference_and_schedule() {
    let mut rng = SmallRng::seed_from_u64(4);
    let p = phase(ConvKind::WGradT);
    let data: Fmaps<f64> = Fmaps::random(5, 6, 6, 1.0, &mut rng);
    let err: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
    let zf = Zfwst::new(4, 2, 3);
    let out = zfwst_wgrad_t(&zf, &p, &data, &err).unwrap();
    let reference = w_conv_for_t_layer(&data, &err, p.geom()).unwrap();
    assert!(out.output.max_abs_diff(&reference) < 1e-9);
    assert_eq!(out.cycles, zf.schedule(&p).cycles);
}

#[test]
fn executors_reject_wrong_kinds_and_shapes() {
    let mut rng = SmallRng::seed_from_u64(5);
    let x: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
    let zf = Zfost::new(4, 4, 2);
    assert!(zfost_s_conv(&zf, &phase(ConvKind::T), &x, &k).is_err());
    let wrong: Fmaps<f64> = Fmaps::random(2, 12, 12, 1.0, &mut rng);
    assert!(zfost_s_conv(&zf, &phase(ConvKind::S), &wrong, &k).is_err());
}

#[test]
fn zfwst_s_executor_matches_reference_and_schedule() {
    let mut rng = SmallRng::seed_from_u64(21);
    let p = phase(ConvKind::S);
    let x: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
    let zf = Zfwst::new(3, 3, 2);
    let out = zfwst_s_conv(&zf, &p, &x, &k).unwrap();
    let reference = s_conv(&x, &k, p.geom()).unwrap();
    assert!(out.output.max_abs_diff(&reference) < 1e-9);
    assert_eq!(out.cycles, zf.schedule(&p).cycles);
}

#[test]
fn zfwst_t_executor_matches_reference_and_schedule() {
    let mut rng = SmallRng::seed_from_u64(22);
    let p = phase(ConvKind::T);
    let x: Fmaps<f64> = Fmaps::random(5, 6, 6, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
    let zf = Zfwst::new(2, 2, 2);
    let out = zfwst_t_conv(&zf, &p, &x, &k).unwrap();
    let reference = t_conv(&x, &k, p.geom()).unwrap();
    assert!(
        out.output.max_abs_diff(&reference) < 1e-9,
        "diff {}",
        out.output.max_abs_diff(&reference)
    );
    assert_eq!(out.cycles, zf.schedule(&p).cycles);
}

#[test]
fn wst_executor_matches_reference_and_schedule() {
    let mut rng = SmallRng::seed_from_u64(11);
    let p = phase(ConvKind::S);
    let x: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
    let wst = crate::Wst::new(4, 4, 2);
    let (out, (pr, pw)) = wst_s_conv(&wst, &p, &x, &k).unwrap();
    let reference = s_conv(&x, &k, p.geom()).unwrap();
    assert!(out.output.max_abs_diff(&reference) < 1e-9);
    assert_eq!(out.cycles, wst.schedule(&p).cycles);
    // Observed psum traffic: one read+write per MAC actually fired.
    // The stream never presents padding pixels, so the count sits just
    // below the census (which includes zero-padding MACs).
    assert_eq!(pr, pw);
    assert!(pr <= p.effectual_macs());
    assert!(
        pr * 10 >= p.effectual_macs() * 8,
        "pr {pr} vs census {}",
        p.effectual_macs()
    );
}

#[test]
fn nlr_executor_matches_reference_and_schedule() {
    let mut rng = SmallRng::seed_from_u64(12);
    let p = phase(ConvKind::S);
    let x: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
    let nlr = crate::Nlr::new(3, 5);
    let (out, weight_fetches) = nlr_s_conv(&nlr, &p, &x, &k).unwrap();
    let reference = s_conv(&x, &k, p.geom()).unwrap();
    assert!(out.output.max_abs_diff(&reference) < 1e-9);
    assert_eq!(out.cycles, nlr.schedule(&p).cycles);
    // No local reuse: every MAC fetched its weight.
    assert_eq!(weight_fetches, p.effectual_macs());
}

#[test]
fn ost_t_executor_counts_the_wasted_work() {
    // The baseline executor really multiplies the inserted zeros: its
    // effectual count equals the phase's analytical census and the
    // total equals `naive_muls`.
    let mut rng = SmallRng::seed_from_u64(9);
    let p = phase(ConvKind::T);
    let x: Fmaps<f64> = Fmaps::random(5, 6, 6, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
    let ost = crate::Ost::new(4, 4, 2);
    let (out, (effectual, ineffectual)) = ost_t_conv(&ost, &p, &x, &k).unwrap();
    let reference = t_conv(&x, &k, p.geom()).unwrap();
    assert!(out.output.max_abs_diff(&reference) < 1e-9);
    assert_eq!(out.cycles, ost.schedule(&p).cycles);
    assert_eq!(effectual, p.effectual_macs());
    assert_eq!(effectual + ineffectual, p.naive_muls());
    // ~3/4 of the baseline's multiplications are wasted.
    let frac = ineffectual as f64 / (effectual + ineffectual) as f64;
    assert!((0.6..0.85).contains(&frac), "wasted fraction {frac}");
}

#[test]
fn traced_executor_streams_nondecreasing_events_and_matches_untraced() {
    let mut rng = SmallRng::seed_from_u64(7);
    let p = phase(ConvKind::S);
    let x: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
    let zf = Zfost::new(4, 4, 2);
    let (out, trace) = zfost_s_conv_traced(&zf, &p, &x, &k, 4096).unwrap();
    // Tracing never changes results or cycle counts.
    assert_eq!(out, zfost_s_conv(&zf, &p, &x, &k).unwrap());
    assert!(!trace.is_empty());
    let mut last = 0u64;
    for (c, _) in trace.iter() {
        assert!(c >= last, "cycle stamps must be nondecreasing");
        last = c;
    }
    assert!(trace
        .iter()
        .any(|(_, e)| matches!(e, TraceEvent::PhaseStart { .. })));
    assert!(trace
        .iter()
        .any(|(_, e)| matches!(e, TraceEvent::Mac { .. })));
    // The binary-search window over the traced run sees everything.
    assert_eq!(trace.window(0, out.cycles + 1).len(), trace.len());
}

#[test]
fn every_traced_variant_emits_events() {
    let mut rng = SmallRng::seed_from_u64(8);
    let x: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
    let small_x: Fmaps<f64> = Fmaps::random(5, 6, 6, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
    let err_small: Fmaps<f64> = Fmaps::random(5, 6, 6, 1.0, &mut rng);
    let err_big: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
    let cap = 512;
    let traces = vec![
        zfost_s_conv_traced(&Zfost::new(4, 4, 2), &phase(ConvKind::S), &x, &k, cap)
            .unwrap()
            .1,
        zfost_t_conv_traced(&Zfost::new(2, 3, 2), &phase(ConvKind::T), &small_x, &k, cap)
            .unwrap()
            .1,
        zfwst_wgrad_s_traced(
            &Zfwst::new(3, 3, 4),
            &phase(ConvKind::WGradS),
            &x,
            &err_small,
            cap,
        )
        .unwrap()
        .1,
        zfwst_wgrad_t_traced(
            &Zfwst::new(4, 2, 3),
            &phase(ConvKind::WGradT),
            &small_x,
            &err_big,
            cap,
        )
        .unwrap()
        .1,
        ost_t_conv_traced(&Ost::new(4, 4, 2), &phase(ConvKind::T), &small_x, &k, cap)
            .unwrap()
            .1,
        wst_s_conv_traced(&Wst::new(4, 4, 2), &phase(ConvKind::S), &x, &k, cap)
            .unwrap()
            .1,
        nlr_s_conv_traced(&Nlr::new(3, 5), &phase(ConvKind::S), &x, &k, cap)
            .unwrap()
            .1,
        zfwst_s_conv_traced(&Zfwst::new(3, 3, 2), &phase(ConvKind::S), &x, &k, cap)
            .unwrap()
            .1,
        zfwst_t_conv_traced(&Zfwst::new(2, 2, 2), &phase(ConvKind::T), &small_x, &k, cap)
            .unwrap()
            .1,
    ];
    for (i, t) in traces.iter().enumerate() {
        assert!(!t.is_empty(), "executor {i} recorded nothing");
        let mut last = 0u64;
        for (c, _) in t.iter() {
            assert!(c >= last, "executor {i}: stamps must be nondecreasing");
            last = c;
        }
    }
}

#[test]
fn zero_trace_capacity_disables_retention_without_changing_results() {
    // The documented capacity-0 contract on the `*_traced` APIs.
    let mut rng = SmallRng::seed_from_u64(13);
    let p = phase(ConvKind::S);
    let x: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
    let zf = Zfost::new(4, 4, 2);
    let (out, trace) = zfost_s_conv_traced(&zf, &p, &x, &k, 0).unwrap();
    assert_eq!(out, zfost_s_conv(&zf, &p, &x, &k).unwrap());
    assert!(!trace.enabled());
    assert!(trace.is_empty());
    assert_eq!(trace.evicted(), 0);
}

#[test]
fn workspace_variant_matches_and_reuses_buffers() {
    let mut rng = SmallRng::seed_from_u64(14);
    let p = phase(ConvKind::S);
    let x: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
    let zf = Zfost::new(4, 4, 2);
    let baseline = zfost_s_conv(&zf, &p, &x, &k).unwrap();
    let mut ws = ExecWorkspace::new();
    for _ in 0..3 {
        let out = zfost_s_conv_ws(&zf, &p, &x, &k, &mut ws).unwrap();
        assert_eq!(out, baseline);
        ws.give_fmaps(out.output);
    }
}

#[test]
fn schedule_telemetry_lands_in_scoped_registry() {
    let reg = std::sync::Arc::new(zfgan_telemetry::Registry::new());
    let _g = zfgan_telemetry::scope(std::sync::Arc::clone(&reg));
    let zf = Zfost::new(4, 4, 2);
    let stats = zf.schedule(&phase(ConvKind::S));
    let snap = reg.snapshot();
    let cycles = snap
        .counters
        .iter()
        .find(|(k, _, _)| k.render() == "schedule_cycles_total{arch=\"ZFOST\"}")
        .map(|(_, _, v)| *v);
    assert_eq!(cycles, Some(stats.cycles));
    assert!(reg.spans().iter().any(|s| {
        s.path == "schedule/ZFOST/s_conv" && s.attrs.contains(&("cycles".to_string(), stats.cycles))
    }));
}

#[test]
fn asymmetric_padding_t_conv_matches() {
    // MNIST-GAN geometry: 5×5 kernel, pads (1,2,1,2).
    let mut rng = SmallRng::seed_from_u64(6);
    let geom = ConvGeom::down(28, 28, 5, 5, 2, 14, 14).unwrap();
    let p = ConvShape::new(ConvKind::T, geom, 4, 2, 28, 28);
    let x: Fmaps<f64> = Fmaps::random(4, 14, 14, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(4, 2, 5, 5, 1.0, &mut rng);
    let zf = Zfost::new(4, 4, 2);
    let out = zfost_t_conv(&zf, &p, &x, &k).unwrap();
    let reference = t_conv(&x, &k, &geom).unwrap();
    assert!(out.output.max_abs_diff(&reference) < 1e-9);
    assert_eq!(out.cycles, zf.schedule(&p).cycles);
}

#[test]
fn engine_matches_scalar_oracle_on_the_dcgan_phase() {
    // The engine entry points are diffed exhaustively in
    // `tests/exec_engine.rs`; this is the in-crate smoke over one shape,
    // covering outputs, cycles, and the expanded trace stream.
    let mut rng = SmallRng::seed_from_u64(15);
    let p = phase(ConvKind::S);
    let x: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
    let zf = Zfost::new(4, 4, 2);
    let (fast, fast_trace) = zfost_s_conv_traced(&zf, &p, &x, &k, 1 << 20).unwrap();
    let (slow, slow_trace) = scalar::zfost_s_conv_traced(&zf, &p, &x, &k, 1 << 20).unwrap();
    assert_eq!(fast, slow);
    assert_eq!(
        fast_trace.iter().collect::<Vec<_>>(),
        slow_trace.iter().collect::<Vec<_>>()
    );
}
