//! The fast executor engine: interior/edge tile split, pooled channel-group
//! parallelism, and batched trace emission.
//!
//! Every function here is the drop-in fast twin of the same-named oracle in
//! [`super::scalar`], bit-identical in output tensors, cycle counts, access
//! counters, and (expanded) trace streams. Three mechanisms, layered:
//!
//! 1. **Interior/edge split.** For each output tile and kernel position the
//!    engine decides *once* whether every access the oracle would make is
//!    in-bounds. Interior tiles then run over flat row slices with
//!    precomputed strides — no padding clip, no `oy/ox >= bound` guards, no
//!    per-element accessor asserts. Edge tiles keep the oracle's guarded
//!    walk verbatim. Per output element the *term order* of the
//!    accumulation is unchanged (the split never reorders the
//!    `(if_, ky, kx)` feed sequence an element sees), so floating-point
//!    results are bit-identical, not just close.
//!
//! 2. **Pooled channel groups.** The `of_base` groups of every executor are
//!    independent by construction — each owns a disjoint contiguous slice
//!    of the output tensor. [`zfgan_pool::parallel_chunks_for`] hands group
//!    `g` exactly that sub-slice; no task writes outside its chunk and no
//!    result depends on scheduling, so outputs are byte-identical at any
//!    `ZFGAN_THREADS`. Data-dependent counters (OST's effectual census)
//!    are accumulated per-task and combined with commutative integer adds.
//!    Scratch comes from the recycled [`ExecWorkspace`], keeping the
//!    steady-state untraced pass zero-allocation (`tests/zero_alloc.rs`).
//!
//! 3. **Batched traces.** Cycle counts and the entire event stream of every
//!    executor are *structural* — fixed by geometry before any data is
//!    touched (the one data-dependent stream, ZFWST T-CONV's tap thinning,
//!    is fixed by the tap map). So the traced variants do not thread a
//!    per-cycle sink through the compute at all: the engine computes
//!    untraced, then emits the identical stream as run-length segments
//!    ([`TraceBuffer::record_run`] / [`TraceBuffer::record_block`]) whose
//!    lazy expansion reproduces the oracle's per-cycle events exactly.
//!
//! The closed-form cycle counts used here are the same chunk/group
//! enumeration the oracle performs (`groups × per_group`), asserted equal
//! to the oracle's by the proptests in `tests/exec_engine.rs` and to
//! [`crate::Dataflow::schedule`]'s by the in-crate tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use zfgan_pool::parallel_chunks_for;
use zfgan_sim::trace::{TraceBuffer, TraceEvent};
use zfgan_sim::{ConvKind, ConvShape};
use zfgan_tensor::{ConvWorkspace, Fmaps, Kernels, Num, ShapeError, TensorResult};

use super::{check_kind, kernel_parity_order_into, record_exec, ExecOutcome};
use crate::nlr::Nlr;
use crate::ost::Ost;
use crate::wst::Wst;
use crate::zfost::Zfost;
use crate::zfwst::Zfwst;

/// Recycled scratch for the fast executors.
///
/// Holds the output-tensor arena plus the engine's geometry buffers (parity
/// feed order, ZFWST-T tap map, WST per-kernel-row output ranges), all
/// reused across calls so a warmed-up untraced executor pass performs no
/// heap allocation. Return finished outputs via [`ExecWorkspace::give_fmaps`]
/// / [`ExecWorkspace::give_kernels`] to keep the arena warm.
pub struct ExecWorkspace<T: Num> {
    conv: ConvWorkspace<T>,
    parity: Vec<(usize, usize)>,
    taps: Vec<[u32; 4]>,
    taps_off: Vec<u32>,
    ranges_y: Vec<(usize, usize)>,
    ranges_x: Vec<(usize, usize)>,
}

impl<T: Num> ExecWorkspace<T> {
    /// Creates an empty workspace; buffers grow on first use and are
    /// recycled afterwards.
    pub fn new() -> Self {
        ExecWorkspace {
            conv: ConvWorkspace::new(),
            parity: Vec::new(),
            taps: Vec::new(),
            taps_off: Vec::new(),
            ranges_y: Vec::new(),
            ranges_x: Vec::new(),
        }
    }

    /// Returns a feature-map output to the arena for reuse.
    pub fn give_fmaps(&mut self, f: Fmaps<T>) {
        self.conv.give_fmaps(f);
    }

    /// Returns a kernel-gradient output to the arena for reuse.
    pub fn give_kernels(&mut self, k: Kernels<T>) {
        self.conv.give_kernels(k);
    }
}

impl<T: Num> Default for ExecWorkspace<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Num> std::fmt::Debug for ExecWorkspace<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecWorkspace")
            .field("parity_len", &self.parity.len())
            .field("taps_len", &self.taps.len())
            .finish_non_exhaustive()
    }
}

/// Exact output-row range `[lo, hi)` a kernel row feeds: the `oy` with
/// `0 <= stride*oy + k - pad < limit`, clamped to `[0, out)`.
fn feed_range(k: usize, pad: usize, stride: usize, limit: usize, out: usize) -> (usize, usize) {
    let lo = if pad > k {
        (pad - k).div_ceil(stride)
    } else {
        0
    };
    let hi_num = limit as isize - 1 + pad as isize - k as isize;
    let hi = if hi_num < 0 {
        0
    } else {
        (hi_num as usize / stride + 1).min(out)
    };
    (lo.min(hi), hi)
}

/// Advances the W-CONV position countdown over `n` positions whose terms
/// are all zero (skipped), flushing the accumulator into its gradient
/// slot at each chunk boundary crossed — exactly where the oracle's
/// `positions.chunks(grid)` loop adds its accumulator.
#[inline]
fn skip_positions<T: Num>(slot: &mut T, acc: &mut T, left: &mut usize, grid: usize, mut n: usize) {
    while n >= *left {
        *slot += *acc;
        *acc = T::zero();
        n -= *left;
        *left = grid;
    }
    *left -= n;
}

// ---------------------------------------------------------------------------
// ZFOST S-CONV
// ---------------------------------------------------------------------------

#[allow(clippy::type_complexity)]
pub(super) fn zfost_s<T: Num>(
    zf: &Zfost,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    ws: &mut ExecWorkspace<T>,
    trace_capacity: Option<usize>,
) -> TensorResult<(ExecOutcome<Fmaps<T>>, Option<TraceBuffer>)> {
    check_kind(phase, ConvKind::S)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    let (lh, lw) = phase.large_hw();
    if input.shape() != (large, lh, lw) {
        return Err(ShapeError::new("input does not match phase's large side"));
    }
    if kernels.shape() != (small, large, geom.kh(), geom.kw()) {
        return Err(ShapeError::new("kernels do not match phase channels"));
    }
    let (p_oy, p_ox, p_of) = zf.factors();
    let (kh, kw) = (geom.kh(), geom.kw());
    let stride = geom.stride();
    let (pt, pl) = (geom.pad_top(), geom.pad_left());
    kernel_parity_order_into(kh, kw, stride, &mut ws.parity);
    let (nty, ntx) = (sh.div_ceil(p_oy), sw.div_ceil(p_ox));
    let fold = (p_of / small).max(1);
    let n_chunks = (nty * ntx).div_ceil(fold) as u64;
    let groups = small.div_ceil(p_of);
    let per_chunk = (large * kh * kw) as u64;
    let per_group = n_chunks * per_chunk;
    let cycles = groups as u64 * per_group;

    let mut out = ws.conv.take_fmaps(small, sh, sw);
    {
        let parity: &[(usize, usize)] = &ws.parity;
        let in_s = input.as_slice();
        let k_s = kernels.as_slice();
        parallel_chunks_for(out.as_mut_slice(), p_of * sh * sw, |g, chunk| {
            // The oracle's tile loop is orthogonal to the per-element term
            // order (each output cell sees its terms in `(if_, parity)`
            // order no matter how cells are grouped), so the engine walks
            // full interior rows instead: per kernel position the feed
            // range is the exact set of outputs with an in-bounds input,
            // everything outside it is a padded zero term and is skipped.
            let of_base = g * p_of;
            let n_of = chunk.len() / (sh * sw);
            for if_ in 0..large {
                let in_ch = &in_s[if_ * lh * lw..(if_ + 1) * lh * lw];
                for &(ky, kx) in parity {
                    let (ylo, yhi) = feed_range(ky, pt, stride, lh, sh);
                    let (xlo, xhi) = feed_range(kx, pl, stride, lw, sw);
                    if ylo >= yhi || xlo >= xhi {
                        continue; // every term is a padded zero
                    }
                    let xw = xhi - xlo;
                    let ib0 = stride * xlo + kx - pl;
                    let wk = |of: usize| k_s[(((of_base + of) * large + if_) * kh + ky) * kw + kx];
                    // Output channels are independent, so rows are updated
                    // two channels at a time: one pass over the input row
                    // feeds both accumulator rows (half the loads, twice
                    // the independent float chains per iteration).
                    let mut of = 0;
                    while of + 1 < n_of {
                        let (w0, w1) = (wk(of), wk(of + 1));
                        let (c0, c1) = chunk[of * sh * sw..].split_at_mut(sh * sw);
                        for oy in ylo..yhi {
                            let iy = stride * oy + ky - pt;
                            let ob = oy * sw + xlo;
                            let r0 = &mut c0[ob..ob + xw];
                            let r1 = &mut c1[ob..ob + xw];
                            let irow = &in_ch[iy * lw + ib0..];
                            if stride == 1 {
                                for ((o0, o1), i) in r0.iter_mut().zip(r1).zip(&irow[..xw]) {
                                    o0.mul_add_assign(*i, w0);
                                    o1.mul_add_assign(*i, w1);
                                }
                            } else {
                                for (n, (o0, o1)) in r0.iter_mut().zip(r1).enumerate() {
                                    let i = irow[n * stride];
                                    o0.mul_add_assign(i, w0);
                                    o1.mul_add_assign(i, w1);
                                }
                            }
                        }
                        of += 2;
                    }
                    if of < n_of {
                        let w = wk(of);
                        let o_ch = of * sh * sw;
                        for oy in ylo..yhi {
                            let iy = stride * oy + ky - pt;
                            let ob = o_ch + oy * sw + xlo;
                            let orow = &mut chunk[ob..ob + xw];
                            let irow = &in_ch[iy * lw + ib0..];
                            if stride == 1 {
                                for (o, i) in orow.iter_mut().zip(&irow[..xw]) {
                                    o.mul_add_assign(*i, w);
                                }
                            } else {
                                for (n, o) in orow.iter_mut().enumerate() {
                                    o.mul_add_assign(irow[n * stride], w);
                                }
                            }
                        }
                    }
                }
            }
        })
        .expect("executor group task panicked");
    }
    record_exec("zfost/s_conv", cycles);

    let trace = trace_capacity.map(|cap| {
        let mut buf = TraceBuffer::with_expected(cap, groups as u64 * (1 + per_group));
        if buf.enabled() {
            let mut events = Vec::with_capacity(large * ws.parity.len());
            for if_ in 0..large {
                for (i, &(ky, kx)) in ws.parity.iter().enumerate() {
                    events.push((
                        (if_ * ws.parity.len() + i) as u64,
                        TraceEvent::Mac {
                            ch: if_ as u16,
                            row: ky as u16,
                            col: kx as u16,
                        },
                    ));
                }
            }
            let events: Arc<[(u64, TraceEvent)]> = events.into();
            for g in 0..groups {
                let base = g as u64 * per_group;
                buf.record(base, TraceEvent::PhaseStart { label: g as u16 });
                buf.record_block(base, per_chunk, n_chunks, Arc::clone(&events));
            }
        }
        buf
    });
    Ok((
        ExecOutcome {
            output: out,
            cycles,
        },
        trace,
    ))
}

// ---------------------------------------------------------------------------
// ZFOST T-CONV
// ---------------------------------------------------------------------------

#[allow(clippy::type_complexity)]
pub(super) fn zfost_t<T: Num>(
    zf: &Zfost,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    ws: &mut ExecWorkspace<T>,
    trace_capacity: Option<usize>,
) -> TensorResult<(ExecOutcome<Fmaps<T>>, Option<TraceBuffer>)> {
    check_kind(phase, ConvKind::T)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    let (lh, lw) = phase.large_hw();
    if input.shape() != (small, sh, sw) {
        return Err(ShapeError::new("input does not match phase's small side"));
    }
    if kernels.shape() != (small, large, geom.kh(), geom.kw()) {
        return Err(ShapeError::new("kernels do not match phase channels"));
    }
    let (p_oy, p_ox, p_of) = zf.factors();
    let s = geom.stride();
    let (kh, kw) = (geom.kh(), geom.kw());
    let (pt_, _, pl_, _) = geom.t_conv_pads();
    let region_h = s * p_oy;
    let region_w = s * p_ox;
    let (nty, ntx) = (lh.div_ceil(region_h), lw.div_ceil(region_w));
    let fold = (p_of / large).max(1);
    let n_chunks = (nty * ntx).div_ceil(fold) as u64;
    let groups = large.div_ceil(p_of);
    let per_chunk = (small * kh * kw) as u64;
    let per_group = n_chunks * per_chunk;
    let cycles = groups as u64 * per_group;

    let mut out = ws.conv.take_fmaps(large, lh, lw);
    {
        let in_s = input.as_slice();
        let k_s = kernels.as_slice();
        parallel_chunks_for(out.as_mut_slice(), p_of * lh * lw, |g, chunk| {
            // As in the S direction, the tile loop is orthogonal to the
            // per-element `(sf, ky, kx)` term order. Each kernel position
            // only feeds outputs of its parity class `oy ≡ res_y (mod s)`;
            // solving the oracle's per-element guards for the index range
            // once turns the walk into consecutive input reads scattered
            // to a strided output row.
            let of_base = g * p_of;
            let n_of = chunk.len() / (lh * lw);
            for sf in 0..small {
                let in_ch = &in_s[sf * sh * sw..(sf + 1) * sh * sw];
                for ky in 0..kh {
                    let res_y = (pt_ as isize - ky as isize).rem_euclid(s as isize) as usize;
                    if res_y >= lh {
                        continue;
                    }
                    // oy = res_y + s*m maps to input row iy = m + cy; the
                    // division is exact by the parity construction.
                    let cy = ((res_y + ky) as isize - pt_ as isize) / s as isize;
                    let m_lo = 0isize.max(-cy) as usize;
                    let m_hi = (((lh - 1 - res_y) / s) as isize + 1).min(sh as isize - cy);
                    if (m_hi as i64) <= m_lo as i64 {
                        continue;
                    }
                    let m_hi = m_hi as usize;
                    for kx in 0..kw {
                        let res_x = (pl_ as isize - kx as isize).rem_euclid(s as isize) as usize;
                        if res_x >= lw {
                            continue;
                        }
                        let cx = ((res_x + kx) as isize - pl_ as isize) / s as isize;
                        let n_lo = 0isize.max(-cx) as usize;
                        let n_hi = (((lw - 1 - res_x) / s) as isize + 1).min(sw as isize - cx);
                        if (n_hi as i64) <= n_lo as i64 {
                            continue;
                        }
                        let n_hi = n_hi as usize;
                        let nw = n_hi - n_lo;
                        let wk = |of: usize| {
                            k_s[((sf * large + of_base + of) * kh + (kh - 1 - ky)) * kw
                                + (kw - 1 - kx)]
                        };
                        // Same channel pairing as the S direction: one pass
                        // over the input row feeds two output channels.
                        let mut of = 0;
                        while of + 1 < n_of {
                            let (w0, w1) = (wk(of), wk(of + 1));
                            let (c0, c1) = chunk[of * lh * lw..].split_at_mut(lh * lw);
                            for m in m_lo..m_hi {
                                let oy = res_y + s * m;
                                let iy = (m as isize + cy) as usize;
                                let ob = oy * lw + res_x + s * n_lo;
                                let ib = iy * sw + (n_lo as isize + cx) as usize;
                                let irow = &in_ch[ib..ib + nw];
                                if s == 1 {
                                    let r1 = &mut c1[ob..ob + nw];
                                    for ((o0, o1), i) in
                                        c0[ob..ob + nw].iter_mut().zip(r1).zip(irow)
                                    {
                                        o0.mul_add_assign(*i, w0);
                                        o1.mul_add_assign(*i, w1);
                                    }
                                } else {
                                    for (n, i) in irow.iter().enumerate() {
                                        let x = ob + s * n;
                                        c0[x].mul_add_assign(*i, w0);
                                        c1[x].mul_add_assign(*i, w1);
                                    }
                                }
                            }
                            of += 2;
                        }
                        if of < n_of {
                            let w = wk(of);
                            let o_ch = of * lh * lw;
                            for m in m_lo..m_hi {
                                let oy = res_y + s * m;
                                let iy = (m as isize + cy) as usize;
                                let ob = o_ch + oy * lw + res_x + s * n_lo;
                                let ib = iy * sw + (n_lo as isize + cx) as usize;
                                let irow = &in_ch[ib..ib + nw];
                                if s == 1 {
                                    for (o, i) in chunk[ob..ob + nw].iter_mut().zip(irow) {
                                        o.mul_add_assign(*i, w);
                                    }
                                } else {
                                    for (n, i) in irow.iter().enumerate() {
                                        chunk[ob + s * n].mul_add_assign(*i, w);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        })
        .expect("executor group task panicked");
    }
    record_exec("zfost/t_conv", cycles);

    let trace = trace_capacity.map(|cap| {
        let mut buf = TraceBuffer::with_expected(cap, groups as u64 * (1 + per_group));
        if buf.enabled() {
            let events = mac_raster_events(small, kh, kw);
            for g in 0..groups {
                let base = g as u64 * per_group;
                buf.record(base, TraceEvent::PhaseStart { label: g as u16 });
                buf.record_block(base, per_chunk, n_chunks, Arc::clone(&events));
            }
        }
        buf
    });
    Ok((
        ExecOutcome {
            output: out,
            cycles,
        },
        trace,
    ))
}

/// One `Mac{sf, ky, kx}` per relative cycle in `sf → ky → kx` raster order:
/// the per-chunk feed template shared by the T-CONV executors.
fn mac_raster_events(small: usize, kh: usize, kw: usize) -> Arc<[(u64, TraceEvent)]> {
    let mut events = Vec::with_capacity(small * kh * kw);
    for sf in 0..small {
        for ky in 0..kh {
            for kx in 0..kw {
                events.push((
                    ((sf * kh + ky) * kw + kx) as u64,
                    TraceEvent::Mac {
                        ch: sf as u16,
                        row: ky as u16,
                        col: kx as u16,
                    },
                ));
            }
        }
    }
    events.into()
}

// ---------------------------------------------------------------------------
// ZFWST W-CONV (both directions share the chunked-pair structure)
// ---------------------------------------------------------------------------

#[allow(clippy::type_complexity)]
pub(super) fn wgrad_s<T: Num>(
    zf: &Zfwst,
    phase: &ConvShape,
    data: &Fmaps<T>,
    error: &Fmaps<T>,
    ws: &mut ExecWorkspace<T>,
    trace_capacity: Option<usize>,
) -> TensorResult<(ExecOutcome<Kernels<T>>, Option<TraceBuffer>)> {
    check_kind(phase, ConvKind::WGradS)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    let (lh, lw) = phase.large_hw();
    if data.shape() != (large, lh, lw) {
        return Err(ShapeError::new("data does not match phase's large side"));
    }
    if error.shape() != (small, sh, sw) {
        return Err(ShapeError::new("error does not match phase's small side"));
    }
    let (p_ky, p_kx, p_of) = zf.factors();
    let grid = p_ky * p_kx;
    let stride = geom.stride();
    let (kh, kw) = (geom.kh(), geom.kw());
    let (pt, pl) = (geom.pad_top(), geom.pad_left());
    let n_pos_chunks = (sh * sw).div_ceil(grid);
    let groups = (small * large).div_ceil(p_of);
    let per_group = (kh * kw * n_pos_chunks) as u64;
    let cycles = groups as u64 * per_group;

    let mut grad = ws.conv.take_kernels(small, large, kh, kw);
    {
        let err_s = error.as_slice();
        let data_s = data.as_slice();
        parallel_chunks_for(grad.as_mut_slice(), p_of * kh * kw, |g, chunk| {
            // Per gradient element the oracle's term order is the raster
            // walk of output positions, summed into an accumulator that is
            // flushed every `grid` positions. The engine keeps those flush
            // boundaries (a countdown) but walks whole rows: positions
            // whose data access would be padding contribute exact zeros
            // and only advance the countdown.
            let p0 = g * p_of;
            let n_pairs = chunk.len() / (kh * kw);
            for j in 0..n_pairs {
                let p = p0 + j;
                let (of, if_) = (p / large, p % large);
                let err_ch = &err_s[of * sh * sw..(of + 1) * sh * sw];
                let data_ch = &data_s[if_ * lh * lw..(if_ + 1) * lh * lw];
                for ky in 0..kh {
                    let (ylo, yhi) = feed_range(ky, pt, stride, lh, sh);
                    for kx in 0..kw {
                        let (xlo, xhi) = feed_range(kx, pl, stride, lw, sw);
                        let gi = j * kh * kw + ky * kw + kx;
                        let mut acc = T::zero();
                        let mut left = grid;
                        for oy in 0..sh {
                            if oy < ylo || oy >= yhi || xlo >= xhi {
                                skip_positions(&mut chunk[gi], &mut acc, &mut left, grid, sw);
                                continue;
                            }
                            let eb = oy * sw;
                            let db = (stride * oy + ky - pt) * lw + stride * xlo + kx - pl;
                            skip_positions(&mut chunk[gi], &mut acc, &mut left, grid, xlo);
                            for nx in 0..(xhi - xlo) {
                                acc.mul_add_assign(
                                    err_ch[eb + xlo + nx],
                                    data_ch[db + stride * nx],
                                );
                                left -= 1;
                                if left == 0 {
                                    chunk[gi] += acc;
                                    acc = T::zero();
                                    left = grid;
                                }
                            }
                            skip_positions(&mut chunk[gi], &mut acc, &mut left, grid, sw - xhi);
                        }
                        if left != grid {
                            // The oracle's final partial chunk.
                            chunk[gi] += acc;
                        }
                    }
                }
            }
        })
        .expect("executor group task panicked");
    }
    record_exec("zfwst/wgrad_s", cycles);

    let trace = trace_capacity.map(|cap| wgrad_trace(cap, groups, kh, kw, n_pos_chunks as u64));
    Ok((
        ExecOutcome {
            output: grad,
            cycles,
        },
        trace,
    ))
}

#[allow(clippy::type_complexity)]
pub(super) fn wgrad_t<T: Num>(
    zf: &Zfwst,
    phase: &ConvShape,
    data: &Fmaps<T>,
    error: &Fmaps<T>,
    ws: &mut ExecWorkspace<T>,
    trace_capacity: Option<usize>,
) -> TensorResult<(ExecOutcome<Kernels<T>>, Option<TraceBuffer>)> {
    check_kind(phase, ConvKind::WGradT)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    let (lh, lw) = phase.large_hw();
    if data.shape() != (small, sh, sw) {
        return Err(ShapeError::new("data does not match phase's small side"));
    }
    if error.shape() != (large, lh, lw) {
        return Err(ShapeError::new("error does not match phase's large side"));
    }
    let (p_ky, p_kx, p_of) = zf.factors();
    let grid = p_ky * p_kx;
    let stride = geom.stride();
    let (kh, kw) = (geom.kh(), geom.kw());
    let (pt, pl) = (geom.pad_top(), geom.pad_left());
    let n_pos_chunks = (sh * sw).div_ceil(grid);
    let groups = (small * large).div_ceil(p_of);
    let per_group = (kh * kw * n_pos_chunks) as u64;
    let cycles = groups as u64 * per_group;

    let mut grad = ws.conv.take_kernels(small, large, kh, kw);
    {
        let data_s = data.as_slice();
        let err_s = error.as_slice();
        parallel_chunks_for(grad.as_mut_slice(), p_of * kh * kw, |g, chunk| {
            // Mirror of the S-direction walk with data on the small side;
            // out-of-bounds error targets are skipped by the oracle too,
            // so the feed range IS the oracle's guard set.
            let p0 = g * p_of;
            let n_pairs = chunk.len() / (kh * kw);
            for j in 0..n_pairs {
                let p = p0 + j;
                let (sf, lf) = (p / large, p % large);
                let data_ch = &data_s[sf * sh * sw..(sf + 1) * sh * sw];
                let err_ch = &err_s[lf * lh * lw..(lf + 1) * lh * lw];
                for ky in 0..kh {
                    let (ylo, yhi) = feed_range(ky, pt, stride, lh, sh);
                    for kx in 0..kw {
                        let (xlo, xhi) = feed_range(kx, pl, stride, lw, sw);
                        let gi = j * kh * kw + ky * kw + kx;
                        let mut acc = T::zero();
                        let mut left = grid;
                        for iy in 0..sh {
                            if iy < ylo || iy >= yhi || xlo >= xhi {
                                skip_positions(&mut chunk[gi], &mut acc, &mut left, grid, sw);
                                continue;
                            }
                            let db = iy * sw;
                            let eb = (stride * iy + ky - pt) * lw + stride * xlo + kx - pl;
                            skip_positions(&mut chunk[gi], &mut acc, &mut left, grid, xlo);
                            for nx in 0..(xhi - xlo) {
                                acc.mul_add_assign(
                                    data_ch[db + xlo + nx],
                                    err_ch[eb + stride * nx],
                                );
                                left -= 1;
                                if left == 0 {
                                    chunk[gi] += acc;
                                    acc = T::zero();
                                    left = grid;
                                }
                            }
                            skip_positions(&mut chunk[gi], &mut acc, &mut left, grid, sw - xhi);
                        }
                        if left != grid {
                            // The oracle's final partial chunk.
                            chunk[gi] += acc;
                        }
                    }
                }
            }
        })
        .expect("executor group task panicked");
    }
    record_exec("zfwst/wgrad_t", cycles);

    let trace = trace_capacity.map(|cap| wgrad_trace(cap, groups, kh, kw, n_pos_chunks as u64));
    Ok((
        ExecOutcome {
            output: grad,
            cycles,
        },
        trace,
    ))
}

/// Both W-CONV directions share the same structural stream: per group one
/// `PhaseStart`, then per kernel position a run of `Mac` + psum
/// `BufferWrite` beats, one per position chunk.
fn wgrad_trace(cap: usize, groups: usize, kh: usize, kw: usize, npc: u64) -> TraceBuffer {
    let per_group = (kh * kw) as u64 * npc;
    let mut buf = TraceBuffer::with_expected(cap, groups as u64 * (1 + 2 * per_group));
    if !buf.enabled() {
        return buf;
    }
    for g in 0..groups {
        let base = g as u64 * per_group;
        buf.record(base, TraceEvent::PhaseStart { label: g as u16 });
        let mut cursor = base;
        for ky in 0..kh {
            for kx in 0..kw {
                let events: Arc<[(u64, TraceEvent)]> = vec![
                    (
                        0,
                        TraceEvent::Mac {
                            ch: g as u16,
                            row: ky as u16,
                            col: kx as u16,
                        },
                    ),
                    (0, TraceEvent::BufferWrite { buffer: 3 }),
                ]
                .into();
                buf.record_block(cursor, 1, npc, events);
                cursor += npc;
            }
        }
    }
    buf
}

// ---------------------------------------------------------------------------
// OST T-CONV (baseline; multiplies the inserted zeros and counts them)
// ---------------------------------------------------------------------------

#[allow(clippy::type_complexity)]
pub(super) fn ost_t<T: Num>(
    ost: &Ost,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    ws: &mut ExecWorkspace<T>,
    trace_capacity: Option<usize>,
) -> TensorResult<((ExecOutcome<Fmaps<T>>, (u64, u64)), Option<TraceBuffer>)> {
    check_kind(phase, ConvKind::T)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    let (lh, lw) = phase.large_hw();
    if input.shape() != (small, sh, sw) {
        return Err(ShapeError::new("input does not match phase's small side"));
    }
    if kernels.shape() != (small, large, geom.kh(), geom.kw()) {
        return Err(ShapeError::new("kernels do not match phase channels"));
    }
    let (p_oy, p_ox, p_of) = ost.factors();
    let s = geom.stride();
    let (kh, kw) = (geom.kh(), geom.kw());
    let (pt_, _, pl_, _) = geom.t_conv_pads();
    let (zh, zw) = ((sh - 1) * s + 1, (sw - 1) * s + 1);
    let (nty, ntx) = (lh.div_ceil(p_oy), lw.div_ceil(p_ox));
    let fold = (p_of / large).max(1);
    let n_chunks = (nty * ntx).div_ceil(fold) as u64;
    let groups = large.div_ceil(p_of);
    let per_chunk = (small * kh * kw) as u64;
    let per_group = n_chunks * per_chunk;
    let cycles = groups as u64 * per_group;

    // Zero-inserted map, scattered into recycled scratch.
    let mut zi = ws.conv.take_fmaps(small, zh, zw);
    {
        let in_s = input.as_slice();
        let zi_s = zi.as_mut_slice();
        for sf in 0..small {
            for iy in 0..sh {
                let zb = (sf * zh + iy * s) * zw;
                let ib = (sf * sh + iy) * sw;
                for ix in 0..sw {
                    zi_s[zb + ix * s] = in_s[ib + ix];
                }
            }
        }
    }

    let effectual = AtomicU64::new(0);
    let ineffectual = AtomicU64::new(0);
    let mut out = ws.conv.take_fmaps(large, lh, lw);
    {
        let zi_s = zi.as_slice();
        let k_s = kernels.as_slice();
        parallel_chunks_for(out.as_mut_slice(), p_of * lh * lw, |g, chunk| {
            let of_base = g * p_of;
            let n_of = chunk.len() / (lh * lw);
            let (mut eff, mut ineff) = (0u64, 0u64);
            for ty in 0..nty {
                let oy0 = ty * p_oy;
                let oy1 = (oy0 + p_oy).min(lh);
                for tx in 0..ntx {
                    let ox0 = tx * p_ox;
                    let ox1 = (ox0 + p_ox).min(lw);
                    let tw = ox1 - ox0;
                    for sf in 0..small {
                        let zi_ch = &zi_s[sf * zh * zw..(sf + 1) * zh * zw];
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let y_ok = oy0 + ky >= pt_ && oy1 - 1 + ky < pt_ + zh;
                                let x_ok = ox0 + kx >= pl_ && ox1 - 1 + kx < pl_ + zw;
                                if y_ok && x_ok {
                                    let zx0 = ox0 + kx - pl_;
                                    let mut nz = 0u64;
                                    for oy in oy0..oy1 {
                                        let zb = (oy + ky - pt_) * zw + zx0;
                                        for v in &zi_ch[zb..zb + tw] {
                                            if !v.is_zero() {
                                                nz += 1;
                                            }
                                        }
                                    }
                                    eff += n_of as u64 * nz;
                                    ineff += n_of as u64 * (((oy1 - oy0) * tw) as u64 - nz);
                                    for of in 0..n_of {
                                        let w = k_s[((sf * large + of_base + of) * kh
                                            + (kh - 1 - ky))
                                            * kw
                                            + (kw - 1 - kx)];
                                        let o_ch = of * lh * lw;
                                        for oy in oy0..oy1 {
                                            let ob = o_ch + oy * lw + ox0;
                                            let zb = (oy + ky - pt_) * zw + zx0;
                                            for (o, v) in
                                                chunk[ob..ob + tw].iter_mut().zip(&zi_ch[zb..])
                                            {
                                                o.mul_add_assign(*v, w);
                                            }
                                        }
                                    }
                                } else {
                                    for oy in oy0..oy1 {
                                        let zy = oy as isize + ky as isize - pt_ as isize;
                                        for ox in ox0..ox1 {
                                            let zx = ox as isize + kx as isize - pl_ as isize;
                                            let v = if zy >= 0
                                                && zx >= 0
                                                && (zy as usize) < zh
                                                && (zx as usize) < zw
                                            {
                                                zi_ch[zy as usize * zw + zx as usize]
                                            } else {
                                                T::zero()
                                            };
                                            if v.is_zero() {
                                                ineff += n_of as u64;
                                            } else {
                                                eff += n_of as u64;
                                            }
                                            for of in 0..n_of {
                                                let w = k_s[((sf * large + of_base + of) * kh
                                                    + (kh - 1 - ky))
                                                    * kw
                                                    + (kw - 1 - kx)];
                                                chunk[of * lh * lw + oy * lw + ox]
                                                    .mul_add_assign(v, w);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            effectual.fetch_add(eff, Ordering::Relaxed);
            ineffectual.fetch_add(ineff, Ordering::Relaxed);
        })
        .expect("executor group task panicked");
    }
    ws.conv.give_fmaps(zi);
    record_exec("ost/t_conv", cycles);

    let trace = trace_capacity.map(|cap| {
        let mut buf = TraceBuffer::with_expected(cap, groups as u64 * (1 + per_group));
        if buf.enabled() {
            let events = mac_raster_events(small, kh, kw);
            for g in 0..groups {
                let base = g as u64 * per_group;
                buf.record(base, TraceEvent::PhaseStart { label: g as u16 });
                buf.record_block(base, per_chunk, n_chunks, Arc::clone(&events));
            }
        }
        buf
    });
    Ok((
        (
            ExecOutcome {
                output: out,
                cycles,
            },
            (
                effectual.load(Ordering::Relaxed),
                ineffectual.load(Ordering::Relaxed),
            ),
        ),
        trace,
    ))
}

// ---------------------------------------------------------------------------
// WST S-CONV
// ---------------------------------------------------------------------------

#[allow(clippy::type_complexity)]
pub(super) fn wst_s<T: Num>(
    wst: &Wst,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    ws: &mut ExecWorkspace<T>,
    trace_capacity: Option<usize>,
) -> TensorResult<((ExecOutcome<Fmaps<T>>, (u64, u64)), Option<TraceBuffer>)> {
    check_kind(phase, ConvKind::S)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    let (lh, lw) = phase.large_hw();
    if input.shape() != (large, lh, lw) {
        return Err(ShapeError::new("input does not match phase's large side"));
    }
    if kernels.shape() != (small, large, geom.kh(), geom.kw()) {
        return Err(ShapeError::new("kernels do not match phase channels"));
    }
    let (p_ky, p_kx, p_of) = wst.factors();
    let stride = geom.stride();
    let (kh, kw) = (geom.kh(), geom.kw());
    let (pt, pl) = (geom.pad_top(), geom.pad_left());
    let groups = small.div_ceil(p_of);
    let (nkb, nxb) = (kh.div_ceil(p_ky), kw.div_ceil(p_kx));
    let per_group = (nkb * nxb * large * lh * lw) as u64;
    let cycles = groups as u64 * per_group;

    // Exact output ranges each kernel row/column feeds: the scalar loop's
    // per-MAC divisibility guards, solved once.
    ws.ranges_y.clear();
    ws.ranges_x.clear();
    for ky in 0..kh {
        ws.ranges_y.push(feed_range(ky, pt, stride, lh, sh));
    }
    for kx in 0..kw {
        ws.ranges_x.push(feed_range(kx, pl, stride, lw, sw));
    }
    let sy: u64 = ws.ranges_y.iter().map(|&(lo, hi)| (hi - lo) as u64).sum();
    let sx: u64 = ws.ranges_x.iter().map(|&(lo, hi)| (hi - lo) as u64).sum();
    let psums = (small * large) as u64 * sy * sx;

    let mut out = ws.conv.take_fmaps(small, sh, sw);
    {
        let ranges_y: &[(usize, usize)] = &ws.ranges_y;
        let ranges_x: &[(usize, usize)] = &ws.ranges_x;
        let in_s = input.as_slice();
        let k_s = kernels.as_slice();
        parallel_chunks_for(out.as_mut_slice(), p_of * sh * sw, |g, chunk| {
            let of_base = g * p_of;
            let n_of = chunk.len() / (sh * sw);
            for kyb in (0..kh).step_by(p_ky) {
                let ky_end = (kyb + p_ky).min(kh);
                for kxb in (0..kw).step_by(p_kx) {
                    let kx_end = (kxb + p_kx).min(kw);
                    for if_ in 0..large {
                        let in_ch = &in_s[if_ * lh * lw..(if_ + 1) * lh * lw];
                        for of in 0..n_of {
                            let o_ch = of * sh * sw;
                            let k_ch = ((of_base + of) * large + if_) * kh * kw;
                            for ky in kyb..ky_end {
                                let (ylo, yhi) = ranges_y[ky];
                                for oy in ylo..yhi {
                                    let ib = (stride * oy + ky - pt) * lw;
                                    let ob = o_ch + oy * sw;
                                    for kx in kxb..kx_end {
                                        let (xlo, xhi) = ranges_x[kx];
                                        if xlo >= xhi {
                                            continue;
                                        }
                                        let w = k_s[k_ch + ky * kw + kx];
                                        for (i, o) in
                                            chunk[ob + xlo..ob + xhi].iter_mut().enumerate()
                                        {
                                            let ix = stride * (xlo + i) + kx - pl;
                                            o.mul_add_assign(in_ch[ib + ix], w);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        })
        .expect("executor group task panicked");
    }
    record_exec("wst/s_conv", cycles);

    let trace = trace_capacity.map(|cap| {
        let expected = groups as u64 * (1 + per_group) + 2 * psums;
        let mut buf = TraceBuffer::with_expected(cap, expected);
        if buf.enabled() {
            // Per input position: one stream read, then one psum
            // read/write pair per MAC the grid fires that cycle.
            let mut cnt_y = vec![0u64; lh];
            let mut cnt_x = vec![0u64; lw];
            for g in 0..groups {
                let base = g as u64 * per_group;
                buf.record(base, TraceEvent::PhaseStart { label: g as u16 });
                let n_of = ((g * p_of + p_of).min(small) - g * p_of) as u64;
                let mut block_base = base;
                for kyb in (0..kh).step_by(p_ky) {
                    let ky_end = (kyb + p_ky).min(kh);
                    for kxb in (0..kw).step_by(p_kx) {
                        let kx_end = (kxb + p_kx).min(kw);
                        cnt_y.iter_mut().for_each(|c| *c = 0);
                        cnt_x.iter_mut().for_each(|c| *c = 0);
                        for ky in kyb..ky_end {
                            let (lo, hi) = ws.ranges_y[ky];
                            for oy in lo..hi {
                                cnt_y[stride * oy + ky - pt] += 1;
                            }
                        }
                        for kx in kxb..kx_end {
                            let (lo, hi) = ws.ranges_x[kx];
                            for ox in lo..hi {
                                cnt_x[stride * ox + kx - pl] += 1;
                            }
                        }
                        let mut events = Vec::new();
                        for (iy, &cy) in cnt_y.iter().enumerate() {
                            for (ix, &cx) in cnt_x.iter().enumerate() {
                                let rel = (iy * lw + ix) as u64;
                                events.push((rel, TraceEvent::BufferRead { buffer: 1 }));
                                for _ in 0..n_of * cy * cx {
                                    events.push((rel, TraceEvent::BufferRead { buffer: 2 }));
                                    events.push((rel, TraceEvent::BufferWrite { buffer: 2 }));
                                }
                            }
                        }
                        buf.record_block(block_base, (lh * lw) as u64, large as u64, events.into());
                        block_base += (large * lh * lw) as u64;
                    }
                }
            }
        }
        buf
    });
    Ok((
        (
            ExecOutcome {
                output: out,
                cycles,
            },
            (psums, psums),
        ),
        trace,
    ))
}

// ---------------------------------------------------------------------------
// NLR S-CONV
// ---------------------------------------------------------------------------

#[allow(clippy::type_complexity)]
pub(super) fn nlr_s<T: Num>(
    nlr: &Nlr,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    ws: &mut ExecWorkspace<T>,
    trace_capacity: Option<usize>,
) -> TensorResult<((ExecOutcome<Fmaps<T>>, u64), Option<TraceBuffer>)> {
    check_kind(phase, ConvKind::S)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    let (lh, lw) = phase.large_hw();
    if input.shape() != (large, lh, lw) {
        return Err(ShapeError::new("input does not match phase's large side"));
    }
    if kernels.shape() != (small, large, geom.kh(), geom.kw()) {
        return Err(ShapeError::new("kernels do not match phase channels"));
    }
    let (p_if, p_of) = (nlr.p_if(), nlr.p_of());
    let stride = geom.stride();
    let (kh, kw) = (geom.kh(), geom.kw());
    let (pt, pl) = (geom.pad_top(), geom.pad_left());
    let groups = small.div_ceil(p_of);
    let nib = large.div_ceil(p_if);
    let per_group = (nib * sh * sw * kh * kw) as u64;
    let cycles = groups as u64 * per_group;
    let weight_fetches = (small * large * sh * sw * kh * kw) as u64;

    // Interior box: outputs whose full kernel window is in-bounds.
    let (oy_lo, oy_hi) = interior_box(pt, stride, kh, lh, sh);
    let (ox_lo, ox_hi) = interior_box(pl, stride, kw, lw, sw);

    let mut out = ws.conv.take_fmaps(small, sh, sw);
    {
        let in_s = input.as_slice();
        let k_s = kernels.as_slice();
        parallel_chunks_for(out.as_mut_slice(), p_of * sh * sw, |g, chunk| {
            let of_base = g * p_of;
            let n_of = chunk.len() / (sh * sw);
            for ib in 0..nib {
                let if_base = ib * p_if;
                let if_end = (if_base + p_if).min(large);
                for oy in 0..sh {
                    let y_in = oy >= oy_lo && oy < oy_hi;
                    for ox in 0..sw {
                        if y_in && ox >= ox_lo && ox < ox_hi {
                            for ky in 0..kh {
                                let ib_row = (stride * oy + ky - pt) * lw;
                                for kx in 0..kw {
                                    let ix = stride * ox + kx - pl;
                                    for of in 0..n_of {
                                        let k_ch = (of_base + of) * large;
                                        let mut tree = T::zero();
                                        for if_ in if_base..if_end {
                                            tree += in_s[if_ * lh * lw + ib_row + ix]
                                                * k_s[((k_ch + if_) * kh + ky) * kw + kx];
                                        }
                                        chunk[of * sh * sw + oy * sw + ox] += tree;
                                    }
                                }
                            }
                        } else {
                            for ky in 0..kh {
                                let iy = (stride * oy + ky) as isize - pt as isize;
                                for kx in 0..kw {
                                    let ix = (stride * ox + kx) as isize - pl as isize;
                                    let in_bounds = iy >= 0
                                        && ix >= 0
                                        && (iy as usize) < lh
                                        && (ix as usize) < lw;
                                    for of in 0..n_of {
                                        let k_ch = (of_base + of) * large;
                                        let mut tree = T::zero();
                                        for if_ in if_base..if_end {
                                            let v = if in_bounds {
                                                in_s[if_ * lh * lw + iy as usize * lw + ix as usize]
                                            } else {
                                                T::zero()
                                            };
                                            tree += v * k_s[((k_ch + if_) * kh + ky) * kw + kx];
                                        }
                                        chunk[of * sh * sw + oy * sw + ox] += tree;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        })
        .expect("executor group task panicked");
    }
    record_exec("nlr/s_conv", cycles);

    let trace = trace_capacity.map(|cap| {
        let expected = groups as u64 * (1 + per_group) + weight_fetches;
        let mut buf = TraceBuffer::with_expected(cap, expected);
        if buf.enabled() {
            for g in 0..groups {
                let base = g as u64 * per_group;
                buf.record(base, TraceEvent::PhaseStart { label: g as u16 });
                let n_of = (g * p_of + p_of).min(small) - g * p_of;
                let mut cursor = base;
                for ib in 0..nib {
                    let if_base = ib * p_if;
                    let lanes = (if_base + p_if).min(large) - if_base;
                    for oy in 0..sh {
                        for ox in 0..sw {
                            let mut events = Vec::with_capacity(1 + n_of * lanes);
                            events.push((
                                0,
                                TraceEvent::Mac {
                                    ch: if_base as u16,
                                    row: oy as u16,
                                    col: ox as u16,
                                },
                            ));
                            for _ in 0..n_of * lanes {
                                events.push((0, TraceEvent::BufferRead { buffer: 0 }));
                            }
                            buf.record_block(cursor, 1, (kh * kw) as u64, events.into());
                            cursor += (kh * kw) as u64;
                        }
                    }
                }
            }
        }
        buf
    });
    Ok((
        (
            ExecOutcome {
                output: out,
                cycles,
            },
            weight_fetches,
        ),
        trace,
    ))
}

/// Output range `[lo, hi)` whose *entire* kernel window is in-bounds for a
/// kernel extent `kdim`: `0 <= stride*o + k - pad < limit` for every
/// `k in 0..kdim`.
fn interior_box(
    pad: usize,
    stride: usize,
    kdim: usize,
    limit: usize,
    out: usize,
) -> (usize, usize) {
    let lo = pad.div_ceil(stride);
    let hi_num = limit as isize - 1 + pad as isize - (kdim as isize - 1);
    let hi = if hi_num < 0 {
        0
    } else {
        (hi_num as usize / stride + 1).min(out)
    };
    (lo.min(hi), hi)
}

// ---------------------------------------------------------------------------
// ZFWST S-CONV
// ---------------------------------------------------------------------------

#[allow(clippy::type_complexity)]
pub(super) fn zfwst_s<T: Num>(
    zf: &Zfwst,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    ws: &mut ExecWorkspace<T>,
    trace_capacity: Option<usize>,
) -> TensorResult<(ExecOutcome<Fmaps<T>>, Option<TraceBuffer>)> {
    check_kind(phase, ConvKind::S)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    let (lh, lw) = phase.large_hw();
    if input.shape() != (large, lh, lw) {
        return Err(ShapeError::new("input does not match phase's large side"));
    }
    if kernels.shape() != (small, large, geom.kh(), geom.kw()) {
        return Err(ShapeError::new("kernels do not match phase channels"));
    }
    let (p_ky, p_kx, p_of) = zf.factors();
    let grid = p_ky * p_kx;
    let stride = geom.stride();
    let (kh, kw) = (geom.kh(), geom.kw());
    let (pt, pl) = (geom.pad_top(), geom.pad_left());
    let pc = (kh * kw).div_ceil(grid);
    let groups = small.div_ceil(p_of);
    let per_group = (sh * sw * large * pc) as u64;
    let cycles = groups as u64 * per_group;

    let (oy_lo, oy_hi) = interior_box(pt, stride, kh, lh, sh);
    let (ox_lo, ox_hi) = interior_box(pl, stride, kw, lw, sw);

    let mut out = ws.conv.take_fmaps(small, sh, sw);
    {
        let in_s = input.as_slice();
        let k_s = kernels.as_slice();
        parallel_chunks_for(out.as_mut_slice(), p_of * sh * sw, |g, chunk| {
            let of_base = g * p_of;
            let n_of = chunk.len() / (sh * sw);
            for oy in 0..sh {
                let y_in = oy >= oy_lo && oy < oy_hi;
                for ox in 0..sw {
                    let interior = y_in && ox >= ox_lo && ox < ox_hi;
                    for if_ in 0..large {
                        let in_ch = &in_s[if_ * lh * lw..(if_ + 1) * lh * lw];
                        for c in 0..pc {
                            let r0 = c * grid;
                            let r1 = (r0 + grid).min(kh * kw);
                            for of in 0..n_of {
                                let k_ch = ((of_base + of) * large + if_) * kh * kw;
                                let mut tree = T::zero();
                                if interior {
                                    for p in r0..r1 {
                                        let (ky, kx) = (p / kw, p % kw);
                                        let iy = stride * oy + ky - pt;
                                        let ix = stride * ox + kx - pl;
                                        tree += in_ch[iy * lw + ix] * k_s[k_ch + p];
                                    }
                                } else {
                                    for p in r0..r1 {
                                        let (ky, kx) = (p / kw, p % kw);
                                        let iy = (stride * oy + ky) as isize - pt as isize;
                                        let ix = (stride * ox + kx) as isize - pl as isize;
                                        let v = if iy >= 0
                                            && ix >= 0
                                            && (iy as usize) < lh
                                            && (ix as usize) < lw
                                        {
                                            in_ch[iy as usize * lw + ix as usize]
                                        } else {
                                            T::zero()
                                        };
                                        tree += v * k_s[k_ch + p];
                                    }
                                }
                                chunk[of * sh * sw + oy * sw + ox] += tree;
                            }
                        }
                    }
                }
            }
        })
        .expect("executor group task panicked");
    }
    record_exec("zfwst/s_conv", cycles);

    let trace = trace_capacity.map(|cap| {
        let mut buf = TraceBuffer::with_expected(cap, groups as u64 * (1 + per_group));
        if buf.enabled() {
            for g in 0..groups {
                let base = g as u64 * per_group;
                buf.record(base, TraceEvent::PhaseStart { label: g as u16 });
                let mut cursor = base;
                for oy in 0..sh {
                    for ox in 0..sw {
                        for if_ in 0..large {
                            buf.record_run(
                                cursor,
                                1,
                                pc as u64,
                                TraceEvent::Mac {
                                    ch: if_ as u16,
                                    row: oy as u16,
                                    col: ox as u16,
                                },
                            );
                            cursor += pc as u64;
                        }
                    }
                }
            }
        }
        buf
    });
    Ok((
        ExecOutcome {
            output: out,
            cycles,
        },
        trace,
    ))
}

// ---------------------------------------------------------------------------
// ZFWST T-CONV
// ---------------------------------------------------------------------------

#[allow(clippy::type_complexity)]
pub(super) fn zfwst_t<T: Num>(
    zf: &Zfwst,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    ws: &mut ExecWorkspace<T>,
    trace_capacity: Option<usize>,
) -> TensorResult<(ExecOutcome<Fmaps<T>>, Option<TraceBuffer>)> {
    check_kind(phase, ConvKind::T)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    let (lh, lw) = phase.large_hw();
    if input.shape() != (small, sh, sw) {
        return Err(ShapeError::new("input does not match phase's small side"));
    }
    if kernels.shape() != (small, large, geom.kh(), geom.kw()) {
        return Err(ShapeError::new("kernels do not match phase channels"));
    }
    let (p_ky, p_kx, p_of) = zf.factors();
    let grid = p_ky * p_kx;
    let gmax = grid.max(1);
    let s = geom.stride();
    let (kh, kw) = (geom.kh(), geom.kw());
    let (pt_, _, pl_, _) = geom.t_conv_pads();
    let eff = kh.div_ceil(s) * kw.div_ceil(s);
    let passes = eff.div_ceil(grid) as u64;
    let groups = large.div_ceil(p_of);
    let per_group = (lh * lw * small) as u64 * passes;
    let cycles = groups as u64 * per_group;

    // Tap map (CSR): the non-zero kernel taps of each output's parity
    // class, hoisted out of the per-channel-group loop entirely.
    ws.taps.clear();
    ws.taps_off.clear();
    ws.taps_off.push(0);
    for oy in 0..lh {
        for ox in 0..lw {
            for ky in 0..kh {
                let zy = oy as isize + ky as isize - pt_ as isize;
                if zy < 0 || !(zy as usize).is_multiple_of(s) || zy as usize / s >= sh {
                    continue;
                }
                for kx in 0..kw {
                    let zx = ox as isize + kx as isize - pl_ as isize;
                    if zx < 0 || !(zx as usize).is_multiple_of(s) || zx as usize / s >= sw {
                        continue;
                    }
                    ws.taps.push([
                        ky as u32,
                        kx as u32,
                        (zy as usize / s) as u32,
                        (zx as usize / s) as u32,
                    ]);
                }
            }
            ws.taps_off.push(ws.taps.len() as u32);
        }
    }

    let mut out = ws.conv.take_fmaps(large, lh, lw);
    {
        let taps: &[[u32; 4]] = &ws.taps;
        let taps_off: &[u32] = &ws.taps_off;
        let in_s = input.as_slice();
        let k_s = kernels.as_slice();
        parallel_chunks_for(out.as_mut_slice(), p_of * lh * lw, |g, chunk| {
            let of_base = g * p_of;
            let n_of = chunk.len() / (lh * lw);
            for pos in 0..lh * lw {
                let t0 = taps_off[pos] as usize;
                let t1 = taps_off[pos + 1] as usize;
                for sf in 0..small {
                    let in_ch = &in_s[sf * sh * sw..(sf + 1) * sh * sw];
                    let mut r = t0;
                    while r < t1 {
                        let r1 = (r + gmax).min(t1);
                        for of in 0..n_of {
                            let k_ch = (sf * large + of_base + of) * kh * kw;
                            let mut tree = T::zero();
                            for &[ky, kx, iy, ix] in &taps[r..r1] {
                                tree += in_ch[iy as usize * sw + ix as usize]
                                    * k_s[k_ch
                                        + (kh - 1 - ky as usize) * kw
                                        + (kw - 1 - kx as usize)];
                            }
                            chunk[of * lh * lw + pos] += tree;
                        }
                        r = r1;
                    }
                }
            }
        })
        .expect("executor group task panicked");
    }
    record_exec("zfwst/t_conv", cycles);

    let trace = trace_capacity.map(|cap| {
        let used_total: u64 = (0..lh * lw)
            .map(|pos| {
                let n = (ws.taps_off[pos + 1] - ws.taps_off[pos]) as u64;
                n.div_ceil(gmax as u64)
            })
            .sum();
        let expected = groups as u64 * (1 + small as u64 * used_total);
        let mut buf = TraceBuffer::with_expected(cap, expected);
        if buf.enabled() {
            for g in 0..groups {
                let base = g as u64 * per_group;
                buf.record(base, TraceEvent::PhaseStart { label: g as u16 });
                let mut cursor = base;
                for oy in 0..lh {
                    for ox in 0..lw {
                        let pos = oy * lw + ox;
                        let n = (ws.taps_off[pos + 1] - ws.taps_off[pos]) as u64;
                        let used = n.div_ceil(gmax as u64);
                        for sf in 0..small {
                            buf.record_run(
                                cursor,
                                1,
                                used,
                                TraceEvent::Mac {
                                    ch: sf as u16,
                                    row: oy as u16,
                                    col: ox as u16,
                                },
                            );
                            cursor += passes;
                        }
                    }
                }
            }
        }
        buf
    });
    Ok((
        ExecOutcome {
            output: out,
            cycles,
        },
        trace,
    ))
}
