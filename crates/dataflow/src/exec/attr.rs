//! Cycle attribution: fold a cycle-stamped executor trace into an exact
//! partition of the run's total cycle count.
//!
//! Every cycle of an execution lands in exactly one component, so the
//! components always sum to the engine's enumerated total — the invariant
//! `zfgan report` builds its per-dataflow tables on. Classification is by
//! what the cycle *did*, with a fixed priority when several event kinds
//! share a stamp:
//!
//! 1. **mac** — at least one multiply-accumulate fired (a compute cycle,
//!    even if operands also moved);
//! 2. **dram** — no MAC, but a DRAM burst was in flight (a stall cycle);
//! 3. **buffer** — only on-chip operand traffic (buffer reads/writes,
//!    register shifts);
//! 4. **idle** — no retained event (bubbles, phase boundaries);
//! 5. **untraced** — cycles before the oldest retained event when the
//!    bounded buffer evicted history, so truncation is never silently
//!    folded into the other components.

use zfgan_sim::trace::{TraceBuffer, TraceEvent};

/// An exact partition of one executor run's cycles by activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleAttribution {
    /// Cycles on which at least one MAC fired.
    pub mac_cycles: u64,
    /// MAC-free cycles with a DRAM burst in flight.
    pub dram_cycles: u64,
    /// MAC-free, DRAM-free cycles with on-chip operand traffic.
    pub buffer_cycles: u64,
    /// Cycles with no retained event at all.
    pub idle_cycles: u64,
    /// Cycles older than the oldest retained event (trace evicted).
    pub untraced_cycles: u64,
}

impl CycleAttribution {
    /// Sum of every component — equals the executor's total cycle count.
    pub fn total(&self) -> u64 {
        self.mac_cycles
            + self.dram_cycles
            + self.buffer_cycles
            + self.idle_cycles
            + self.untraced_cycles
    }

    /// `(name, cycles)` pairs in reporting order.
    pub fn components(&self) -> [(&'static str, u64); 5] {
        [
            ("mac", self.mac_cycles),
            ("dram", self.dram_cycles),
            ("buffer", self.buffer_cycles),
            ("idle", self.idle_cycles),
            ("untraced", self.untraced_cycles),
        ]
    }
}

/// Partitions `total_cycles` of an execution by the events in `trace`.
///
/// The trace's cycle stamps are nondecreasing (the [`TraceBuffer`]
/// producer contract), so one forward pass groups events per cycle. The
/// result's [`CycleAttribution::total`] equals `total_cycles` exactly:
/// idle cycles are derived as the remainder after the event-bearing and
/// untraced cycles are counted.
pub fn attribute_cycles(trace: &TraceBuffer, total_cycles: u64) -> CycleAttribution {
    let mut attr = CycleAttribution::default();
    if trace.is_empty() {
        // Nothing retained: with eviction (or tracing off) every cycle is
        // unaccounted-for; an empty trace of an enabled buffer means the
        // run simply emitted nothing, which we report as idle.
        if trace.evicted() > 0 || !trace.enabled() {
            attr.untraced_cycles = total_cycles;
        } else {
            attr.idle_cycles = total_cycles;
        }
        return attr;
    }

    let mut first_cycle = u64::MAX;
    let mut cur: Option<u64> = None;
    let (mut has_mac, mut has_dram, mut has_buf) = (false, false, false);
    let commit = |mac: bool, dram: bool, buf: bool, attr: &mut CycleAttribution| {
        if mac {
            attr.mac_cycles += 1;
        } else if dram {
            attr.dram_cycles += 1;
        } else if buf {
            attr.buffer_cycles += 1;
        }
        // A cycle bearing only phase markers stays in the idle remainder.
    };
    for (cycle, event) in trace.iter() {
        first_cycle = first_cycle.min(cycle);
        if cur != Some(cycle) {
            if cur.is_some() {
                commit(has_mac, has_dram, has_buf, &mut attr);
            }
            cur = Some(cycle);
            (has_mac, has_dram, has_buf) = (false, false, false);
        }
        match event {
            TraceEvent::Mac { .. } => has_mac = true,
            TraceEvent::DramBurst { .. } => has_dram = true,
            TraceEvent::BufferRead { .. }
            | TraceEvent::BufferWrite { .. }
            | TraceEvent::Shift { .. } => has_buf = true,
            TraceEvent::PhaseStart { .. } => {}
        }
    }
    commit(has_mac, has_dram, has_buf, &mut attr);

    if trace.evicted() > 0 {
        attr.untraced_cycles = first_cycle.min(total_cycles);
    }
    attr.idle_cycles = total_cycles
        .saturating_sub(attr.untraced_cycles)
        .saturating_sub(attr.mac_cycles + attr.dram_cycles + attr.buffer_cycles);
    debug_assert_eq!(attr.total(), total_cycles);
    attr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec;
    use crate::{Wst, Zfost};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use zfgan_sim::{ConvKind, ConvShape};
    use zfgan_tensor::{ConvGeom, Fmaps, Kernels};

    fn phase(kind: ConvKind) -> ConvShape {
        let geom = ConvGeom::down(12, 12, 4, 4, 2, 6, 6).unwrap();
        ConvShape::new(kind, geom, 5, 3, 12, 12)
    }

    #[test]
    fn full_trace_partitions_exactly_with_macs_dominating() {
        let mut rng = SmallRng::seed_from_u64(7);
        let x: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
        let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
        let (out, trace) =
            exec::zfost_s_conv_traced(&Zfost::new(4, 4, 2), &phase(ConvKind::S), &x, &k, 1 << 20)
                .unwrap();
        assert_eq!(trace.evicted(), 0);
        let attr = attribute_cycles(&trace, out.cycles);
        assert_eq!(attr.total(), out.cycles);
        assert_eq!(attr.untraced_cycles, 0);
        assert!(attr.mac_cycles > 0);
        assert!(attr.mac_cycles <= out.cycles);
    }

    #[test]
    fn evicted_prefix_is_reported_as_untraced_and_still_sums() {
        let mut rng = SmallRng::seed_from_u64(7);
        let x: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
        let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
        let (pair, trace) =
            exec::wst_s_conv_traced(&Wst::new(4, 4, 2), &phase(ConvKind::S), &x, &k, 64).unwrap();
        let (out, _psum) = pair;
        assert!(trace.evicted() > 0);
        let attr = attribute_cycles(&trace, out.cycles);
        assert_eq!(attr.total(), out.cycles);
        assert!(attr.untraced_cycles > 0);
    }

    #[test]
    fn disabled_trace_attributes_everything_untraced() {
        let mut rng = SmallRng::seed_from_u64(7);
        let x: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
        let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
        let (out, trace) =
            exec::zfost_s_conv_traced(&Zfost::new(4, 4, 2), &phase(ConvKind::S), &x, &k, 0)
                .unwrap();
        let attr = attribute_cycles(&trace, out.cycles);
        assert_eq!(attr.untraced_cycles, out.cycles);
        assert_eq!(attr.total(), out.cycles);
    }
}
