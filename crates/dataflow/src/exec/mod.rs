//! Functional executors: the ZFOST / ZFWST dataflows walked tile by tile on
//! real data.
//!
//! Each executor is the cycle-enumerated twin of the corresponding
//! closed-form schedule: it iterates groups → tiles → operand feeds exactly
//! as the hardware would, incrementing a cycle counter per feed and
//! performing the real multiply-accumulates. Two invariants are enforced by
//! the test suite (including property tests over random shapes):
//!
//! * the numerical output equals the `zfgan-tensor` golden reference;
//! * the enumerated cycle count equals [`crate::Dataflow::schedule`]'s
//!   closed form.
//!
//! This is what makes the simulator a *simulator* rather than a spreadsheet:
//! the cycle counts are properties of an executable schedule.
//!
//! # The fast engine and the scalar oracle
//!
//! Two implementations coexist:
//!
//! * [`scalar`] — the original guarded per-element loops, retained verbatim
//!   as the *oracle*. Every access goes through bounds-checked `at()` /
//!   `at_padded()` and every traced event through a per-cycle
//!   `TraceSink::emit`.
//! * [`engine`] (private; reached through the public entry points below) —
//!   the fast path: output tiles are split into *interior* tiles that run
//!   over flat slices with precomputed row strides (no padding clip, no
//!   bounds guards) and *edge* tiles that keep the guarded walk;
//!   independent output-channel groups fan out across the `zfgan-pool`
//!   workers into disjoint output sub-slices; and traced runs emit
//!   per-tile run-length batches ([`TraceBuffer::record_run`] /
//!   [`TraceBuffer::record_block`]) instead of per-MAC events.
//!
//! The engine is bit-identical and cycle-identical to the oracle by
//! construction — interior/edge splitting never reorders the per-element
//! accumulation sequence, channel groups own disjoint outputs, cycle
//! counts follow the same closed forms, and the batched trace expands to
//! the identical event stream — and by proptest (`tests/exec_engine.rs`
//! diffs all nine executors against [`scalar`] across adversarial
//! geometries). `benches/exec.rs` tracks the resulting speedup in
//! `results/BENCH_exec.json`.

use zfgan_sim::trace::{TraceBuffer, TraceEvent};
use zfgan_sim::{ConvKind, ConvShape};
use zfgan_tensor::{Fmaps, Kernels, Num, ShapeError, TensorResult};

use crate::nlr::Nlr;
use crate::ost::Ost;
use crate::wst::Wst;
use crate::zfost::Zfost;
use crate::zfwst::Zfwst;

mod attr;
mod engine;
pub mod scalar;

pub use attr::{attribute_cycles, CycleAttribution};
pub use engine::ExecWorkspace;

/// Result of a functional execution: the computed tensor plus the
/// enumerated cycle count.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome<T> {
    /// The computed output.
    pub output: T,
    /// Cycles counted while walking the schedule.
    pub cycles: u64,
}

/// Optional cycle-stamped event sink threaded through the scalar oracle.
///
/// The untraced entry points pass [`TraceSink::off`] — a null sink whose
/// `emit` is a branch on `None` — so tracing costs nothing unless a
/// `*_traced` wrapper installed a bounded [`TraceBuffer`]. Cycle stamps are
/// emitted in nondecreasing order, the invariant
/// [`TraceBuffer::window`]'s binary search relies on.
pub(crate) struct TraceSink<'a> {
    buf: Option<&'a mut TraceBuffer>,
}

impl<'a> TraceSink<'a> {
    pub(crate) fn off() -> Self {
        TraceSink { buf: None }
    }

    pub(crate) fn to(buf: &'a mut TraceBuffer) -> Self {
        TraceSink { buf: Some(buf) }
    }

    #[inline]
    pub(crate) fn emit(&mut self, cycle: u64, event: TraceEvent) {
        if let Some(buf) = self.buf.as_mut() {
            buf.record(cycle, event);
        }
    }
}

/// Publish one executor run to the telemetry layer: an
/// `exec/<arch>/<kind>` span carrying the enumerated cycle count. No-op
/// when telemetry is off.
pub(crate) fn record_exec(path: &str, cycles: u64) {
    if !zfgan_telemetry::enabled() {
        return;
    }
    let mut span = zfgan_telemetry::span!("exec/{path}");
    span.record("cycles", cycles);
    zfgan_telemetry::count("exec_runs_total", &[("executor", path)], 1);
    zfgan_telemetry::count("exec_cycles_total", &[("executor", path)], cycles);
}

/// Kernel positions in the parity-class feed order of paper Fig. 12(a).
pub(crate) fn kernel_parity_order(kh: usize, kw: usize, stride: usize) -> Vec<(usize, usize)> {
    let mut order = Vec::with_capacity(kh * kw);
    kernel_parity_order_into(kh, kw, stride, &mut order);
    order
}

/// [`kernel_parity_order`] into a caller-provided buffer (cleared first),
/// so the hot path can reuse one allocation per workspace.
pub(crate) fn kernel_parity_order_into(
    kh: usize,
    kw: usize,
    stride: usize,
    order: &mut Vec<(usize, usize)>,
) {
    order.clear();
    order.reserve(kh * kw);
    for ry in 0..stride.min(kh) {
        for rx in 0..stride.min(kw) {
            for ky in (ry..kh).step_by(stride) {
                for kx in (rx..kw).step_by(stride) {
                    order.push((ky, kx));
                }
            }
        }
    }
}

pub(crate) fn check_kind(phase: &ConvShape, expected: ConvKind) -> TensorResult<()> {
    if phase.kind() != expected {
        return Err(ShapeError::new(format!(
            "executor expects a {expected:?} phase, got {:?}",
            phase.kind()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Public entry points. Every executor has three forms:
//
//   foo(...)            — allocate scratch internally, run the fast engine;
//   foo_ws(..., ws)     — recycle an `ExecWorkspace` (zero-allocation in
//                         steady state; give the returned output back to
//                         the workspace to keep it warm);
//   foo_traced(..., n)  — additionally collect a bounded cycle-stamped
//                         event trace of up to `n` events. A capacity of 0
//                         disables retention entirely: the returned buffer
//                         stays empty (`len() == 0`, `evicted() == 0`)
//                         while the computation and cycle count are
//                         unchanged — the documented tracing-off contract.
// ---------------------------------------------------------------------------

macro_rules! exec_entry {
    (
        $(#[$doc:meta])*
        fn $name:ident / $name_ws:ident / $name_traced:ident,
        engine = $engine:path,
        arch = $arch:ty,
        a = $a:ident : $aty:ty,
        b = $b:ident : $bty:ty,
        out = $out:ty
    ) => {
        $(#[$doc])*
        ///
        /// # Errors
        ///
        /// Returns an error if the operands do not match `phase`.
        pub fn $name<T: Num>(
            arch: &$arch,
            phase: &ConvShape,
            $a: &$aty,
            $b: &$bty,
        ) -> TensorResult<$out> {
            let mut ws = ExecWorkspace::new();
            $name_ws(arch, phase, $a, $b, &mut ws)
        }

        $(#[$doc])*
        ///
        /// This variant recycles `ws` scratch (and draws the output tensor
        /// from it): give the output back via [`ExecWorkspace::give_fmaps`]
        /// / [`ExecWorkspace::give_kernels`] and the steady-state pass
        /// performs zero heap allocations (pinned by `tests/zero_alloc.rs`).
        ///
        /// # Errors
        ///
        /// Returns an error if the operands do not match `phase`.
        pub fn $name_ws<T: Num>(
            arch: &$arch,
            phase: &ConvShape,
            $a: &$aty,
            $b: &$bty,
            ws: &mut ExecWorkspace<T>,
        ) -> TensorResult<$out> {
            Ok($engine(arch, phase, $a, $b, ws, None)?.0)
        }

        $(#[$doc])*
        ///
        /// This variant additionally records a bounded cycle-stamped event
        /// trace of up to `trace_capacity` events (phase starts, operand
        /// feeds, buffer traffic), returned alongside the outcome. Passing
        /// a `trace_capacity` of **0** turns tracing off: the returned
        /// buffer is the disabled [`TraceBuffer`] (empty, nothing counted
        /// as evicted) and the execution itself is unchanged.
        ///
        /// # Errors
        ///
        /// Returns an error if the operands do not match `phase`.
        pub fn $name_traced<T: Num>(
            arch: &$arch,
            phase: &ConvShape,
            $a: &$aty,
            $b: &$bty,
            trace_capacity: usize,
        ) -> TensorResult<($out, TraceBuffer)> {
            let mut ws = ExecWorkspace::new();
            let (outcome, trace) = $engine(arch, phase, $a, $b, &mut ws, Some(trace_capacity))?;
            Ok((outcome, trace.expect("engine returns a buffer when requested")))
        }
    };
}

exec_entry! {
    /// Executes an `S-CONV` phase on a [`Zfost`] array.
    ///
    /// Kernel weights are fed in the parity-reordered order of paper
    /// Fig. 12(a) — `(even,even)`, `(even,odd)`, `(odd,even)`, `(odd,odd)`
    /// — which for `S-CONV` changes the input-register shift pattern but
    /// not the result.
    fn zfost_s_conv / zfost_s_conv_ws / zfost_s_conv_traced,
    engine = engine::zfost_s,
    arch = Zfost,
    a = input: Fmaps<T>,
    b = kernels: Kernels<T>,
    out = ExecOutcome<Fmaps<T>>
}

exec_entry! {
    /// Executes a `T-CONV` phase on a [`Zfost`] array.
    ///
    /// One sweep of the `N_ky × N_kx` kernel feeds completes an
    /// `(s·P_oy) × (s·P_ox)` output region: during the feed of kernel
    /// position `(ky, kx)` the PEs compute the output parity class that
    /// position is effective for (paper Fig. 12b), so no inserted zero is
    /// ever multiplied.
    fn zfost_t_conv / zfost_t_conv_ws / zfost_t_conv_traced,
    engine = engine::zfost_t,
    arch = Zfost,
    a = input: Fmaps<T>,
    b = kernels: Kernels<T>,
    out = ExecOutcome<Fmaps<T>>
}

exec_entry! {
    /// Executes the Discriminator-side `W-CONV` (`D̄w`) on a [`Zfwst`]
    /// array: every cycle the adder tree folds `P_ky × P_kx` real error
    /// positions into one `∇W` neuron per channel group.
    fn zfwst_wgrad_s / zfwst_wgrad_s_ws / zfwst_wgrad_s_traced,
    engine = engine::wgrad_s,
    arch = Zfwst,
    a = data: Fmaps<T>,
    b = error: Fmaps<T>,
    out = ExecOutcome<Kernels<T>>
}

exec_entry! {
    /// Executes the Generator-side `W-CONV` (`Ḡw`) on a [`Zfwst`] array:
    /// only the real (non-inserted) data pixels are loaded into the
    /// register array and folded through the adder tree.
    fn zfwst_wgrad_t / zfwst_wgrad_t_ws / zfwst_wgrad_t_traced,
    engine = engine::wgrad_t,
    arch = Zfwst,
    a = data: Fmaps<T>,
    b = error: Fmaps<T>,
    out = ExecOutcome<Kernels<T>>
}

exec_entry! {
    /// Executes a `T-CONV` phase on a plain [`Ost`] array — the *baseline*
    /// behaviour the zero-free design fixes. The naive dataflow walks the
    /// zero-inserted input; this executor performs those multiplications
    /// for real and counts how many had a zero operand, so the analytical
    /// ineffectual-operation census ([`ConvShape::naive_muls`]) is
    /// validated against an actual execution.
    ///
    /// Returns the output, the enumerated cycles, and
    /// `(effectual, ineffectual)` multiplication counts.
    fn ost_t_conv / ost_t_conv_ws / ost_t_conv_traced,
    engine = engine::ost_t,
    arch = Ost,
    a = input: Fmaps<T>,
    b = kernels: Kernels<T>,
    out = (ExecOutcome<Fmaps<T>>, (u64, u64))
}

exec_entry! {
    /// Executes an `S-CONV` phase on a [`Wst`] array: weights stationary
    /// in the `P_ky × P_kx` grid, one input neuron broadcast per cycle,
    /// partial sums accumulated through the output buffer (counted —
    /// WST's defining cost).
    ///
    /// Returns the output, enumerated cycles, and the observed partial-sum
    /// buffer accesses `(reads, writes)`.
    fn wst_s_conv / wst_s_conv_ws / wst_s_conv_traced,
    engine = engine::wst_s,
    arch = Wst,
    a = input: Fmaps<T>,
    b = kernels: Kernels<T>,
    out = (ExecOutcome<Fmaps<T>>, (u64, u64))
}

exec_entry! {
    /// Executes an `S-CONV` phase on an [`Nlr`] array: `P_if` input lanes
    /// fold through the adder tree into `P_of` output channels; no operand
    /// is kept locally, so every cycle re-fetches its weights (the counted
    /// cost).
    ///
    /// Returns the output, enumerated cycles and the observed weight
    /// fetches.
    fn nlr_s_conv / nlr_s_conv_ws / nlr_s_conv_traced,
    engine = engine::nlr_s,
    arch = Nlr,
    a = input: Fmaps<T>,
    b = kernels: Kernels<T>,
    out = (ExecOutcome<Fmaps<T>>, u64)
}

exec_entry! {
    /// Executes an `S-CONV` phase on a [`Zfwst`] array (the
    /// cross-assignment the paper evaluates in Fig. 15): the layer kernel
    /// is held stationary in the `P_ky × P_kx` grid and the adder tree
    /// folds one output neuron's worth of products per cycle per channel,
    /// accumulating across input maps.
    fn zfwst_s_conv / zfwst_s_conv_ws / zfwst_s_conv_traced,
    engine = engine::zfwst_s,
    arch = Zfwst,
    a = input: Fmaps<T>,
    b = kernels: Kernels<T>,
    out = ExecOutcome<Fmaps<T>>
}

exec_entry! {
    /// Executes a `T-CONV` phase on a [`Zfwst`] array: only the non-zero
    /// kernel taps of each output's parity class are made stationary
    /// ("we only allocate non-zero kernel weights to PEs"), so the tree
    /// folds ~`k²/s²` effective taps per output instead of `k²`.
    fn zfwst_t_conv / zfwst_t_conv_ws / zfwst_t_conv_traced,
    engine = engine::zfwst_t,
    arch = Zfwst,
    a = input: Fmaps<T>,
    b = kernels: Kernels<T>,
    out = ExecOutcome<Fmaps<T>>
}

#[cfg(test)]
mod tests;
