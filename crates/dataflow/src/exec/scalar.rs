//! The scalar executor oracle: the original guarded per-element loops.
//!
//! Every executor here walks groups → tiles → operand feeds exactly as the
//! hardware would, one bounds-checked `at()` / `at_padded()` access and one
//! `TraceSink::emit` per event. This module is deliberately *slow and
//! obvious* — it is the semantics the fast engine in `super::engine` must
//! reproduce bit-for-bit (tensors), cycle-for-cycle, and event-for-event,
//! and the oracle `tests/exec_engine.rs` proptests diff against. Keep it
//! simple; optimize the engine instead.

use zfgan_sim::trace::{TraceBuffer, TraceEvent};
use zfgan_sim::{ConvKind, ConvShape};
use zfgan_tensor::{Fmaps, Kernels, Num, ShapeError, TensorResult};

use super::{check_kind, kernel_parity_order, record_exec, ExecOutcome, TraceSink};
use crate::nlr::Nlr;
use crate::ost::Ost;
use crate::wst::Wst;
use crate::zfost::Zfost;
use crate::zfwst::Zfwst;

/// Small helpers shared by the executors.
pub(super) mod exec_support {
    use zfgan_tensor::{Fmaps, Num};

    /// Zero-inserts without pulling `zfgan_tensor::zeros` into the public
    /// signature (the executor needs the explicit map to index).
    pub fn zero_inserted<T: Num>(input: &Fmaps<T>, stride: usize) -> Fmaps<T> {
        zfgan_tensor::zeros::insert_zeros(input, stride)
    }
}

/// Executes an `S-CONV` phase on a [`Zfost`] array.
///
/// Kernel weights are fed in the parity-reordered order of paper Fig. 12(a)
/// — `(even,even)`, `(even,odd)`, `(odd,even)`, `(odd,odd)` — which for
/// `S-CONV` changes the input-register shift pattern but not the result.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
pub fn zfost_s_conv<T: Num>(
    zf: &Zfost,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
) -> TensorResult<ExecOutcome<Fmaps<T>>> {
    zfost_s_conv_inner(zf, phase, input, kernels, &mut TraceSink::off())
}

/// [`zfost_s_conv`] with a bounded cycle-stamped event trace of up to
/// `trace_capacity` events (phase starts, operand feeds, buffer traffic),
/// returned alongside the outcome.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
pub fn zfost_s_conv_traced<T: Num>(
    zf: &Zfost,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    trace_capacity: usize,
) -> TensorResult<(ExecOutcome<Fmaps<T>>, TraceBuffer)> {
    let mut trace = TraceBuffer::new(trace_capacity);
    let outcome = zfost_s_conv_inner(zf, phase, input, kernels, &mut TraceSink::to(&mut trace))?;
    Ok((outcome, trace))
}

fn zfost_s_conv_inner<T: Num>(
    zf: &Zfost,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    sink: &mut TraceSink<'_>,
) -> TensorResult<ExecOutcome<Fmaps<T>>> {
    check_kind(phase, ConvKind::S)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    if input.shape() != (large, phase.large_hw().0, phase.large_hw().1) {
        return Err(ShapeError::new("input does not match phase's large side"));
    }
    if kernels.shape() != (small, large, geom.kh(), geom.kw()) {
        return Err(ShapeError::new("kernels do not match phase channels"));
    }
    let (p_oy, p_ox, p_of) = zf.factors();
    let stride = geom.stride() as isize;
    let (pt, pl) = (geom.pad_top() as isize, geom.pad_left() as isize);
    let mut out: Fmaps<T> = Fmaps::zeros(small, sh, sw);
    let mut cycles = 0u64;
    // Surplus channel groups fold over extra spatial tiles (matches the
    // closed-form schedule).
    let fold = (p_of / small).max(1);
    let tiles: Vec<(usize, usize)> = (0..sh.div_ceil(p_oy))
        .flat_map(|ty| (0..sw.div_ceil(p_ox)).map(move |tx| (ty, tx)))
        .collect();
    let parity = kernel_parity_order(geom.kh(), geom.kw(), geom.stride());
    for of_base in (0..small).step_by(p_of) {
        sink.emit(
            cycles,
            TraceEvent::PhaseStart {
                label: (of_base / p_of) as u16,
            },
        );
        let of_end = (of_base + p_of).min(small);
        for chunk in tiles.chunks(fold) {
            for if_ in 0..large {
                for &(ky, kx) in &parity {
                    sink.emit(
                        cycles,
                        TraceEvent::Mac {
                            ch: if_ as u16,
                            row: ky as u16,
                            col: kx as u16,
                        },
                    );
                    cycles += 1;
                    for &(ty, tx) in chunk {
                        for of in of_base..of_end {
                            let w = *kernels.at(of, if_, ky, kx);
                            for py in 0..p_oy {
                                let oy = ty * p_oy + py;
                                if oy >= sh {
                                    continue;
                                }
                                for px in 0..p_ox {
                                    let ox = tx * p_ox + px;
                                    if ox >= sw {
                                        continue;
                                    }
                                    let iy = stride * oy as isize + ky as isize - pt;
                                    let ix = stride * ox as isize + kx as isize - pl;
                                    out.at_mut(of, oy, ox)
                                        .mul_add_assign(input.at_padded(if_, iy, ix), w);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    record_exec("zfost/s_conv", cycles);
    Ok(ExecOutcome {
        output: out,
        cycles,
    })
}

/// Executes a `T-CONV` phase on a [`Zfost`] array.
///
/// One sweep of the `N_ky × N_kx` kernel feeds completes an
/// `(s·P_oy) × (s·P_ox)` output region: during the feed of kernel position
/// `(ky, kx)` the PEs compute the output parity class that position is
/// effective for (paper Fig. 12b), so no inserted zero is ever multiplied.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
pub fn zfost_t_conv<T: Num>(
    zf: &Zfost,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
) -> TensorResult<ExecOutcome<Fmaps<T>>> {
    zfost_t_conv_inner(zf, phase, input, kernels, &mut TraceSink::off())
}

/// [`zfost_t_conv`] with a bounded cycle-stamped event trace of up to
/// `trace_capacity` events (phase starts, operand feeds, buffer traffic),
/// returned alongside the outcome.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
pub fn zfost_t_conv_traced<T: Num>(
    zf: &Zfost,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    trace_capacity: usize,
) -> TensorResult<(ExecOutcome<Fmaps<T>>, TraceBuffer)> {
    let mut trace = TraceBuffer::new(trace_capacity);
    let outcome = zfost_t_conv_inner(zf, phase, input, kernels, &mut TraceSink::to(&mut trace))?;
    Ok((outcome, trace))
}

fn zfost_t_conv_inner<T: Num>(
    zf: &Zfost,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    sink: &mut TraceSink<'_>,
) -> TensorResult<ExecOutcome<Fmaps<T>>> {
    check_kind(phase, ConvKind::T)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    let (lh, lw) = phase.large_hw();
    if input.shape() != (small, sh, sw) {
        return Err(ShapeError::new("input does not match phase's small side"));
    }
    if kernels.shape() != (small, large, geom.kh(), geom.kw()) {
        return Err(ShapeError::new("kernels do not match phase channels"));
    }
    let (p_oy, p_ox, p_of) = zf.factors();
    let s = geom.stride();
    let (kh, kw) = (geom.kh(), geom.kw());
    let (pt_, _, pl_, _) = geom.t_conv_pads();
    let region_h = s * p_oy;
    let region_w = s * p_ox;
    let mut out: Fmaps<T> = Fmaps::zeros(large, lh, lw);
    let mut cycles = 0u64;
    let fold = (p_of / large).max(1);
    let tiles: Vec<(usize, usize)> = (0..lh.div_ceil(region_h))
        .flat_map(|ty| (0..lw.div_ceil(region_w)).map(move |tx| (ty, tx)))
        .collect();
    for of_base in (0..large).step_by(p_of) {
        sink.emit(
            cycles,
            TraceEvent::PhaseStart {
                label: (of_base / p_of) as u16,
            },
        );
        let of_end = (of_base + p_of).min(large);
        for chunk in tiles.chunks(fold) {
            {
                for sf in 0..small {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            sink.emit(
                                cycles,
                                TraceEvent::Mac {
                                    ch: sf as u16,
                                    row: ky as u16,
                                    col: kx as u16,
                                },
                            );
                            cycles += 1;
                            // Output rows effective for this kernel row form
                            // one residue class mod s.
                            let res_y =
                                (pt_ as isize - ky as isize).rem_euclid(s as isize) as usize;
                            let res_x =
                                (pl_ as isize - kx as isize).rem_euclid(s as isize) as usize;
                            for &(ty, tx) in chunk {
                                for of in of_base..of_end {
                                    let w = *kernels.at(sf, of, kh - 1 - ky, kw - 1 - kx);
                                    for py in 0..p_oy {
                                        let oy = ty * region_h + py * s + res_y;
                                        if oy >= lh {
                                            continue;
                                        }
                                        let zy = oy as isize + ky as isize - pt_ as isize;
                                        if zy < 0 {
                                            continue;
                                        }
                                        debug_assert_eq!(zy as usize % s, 0);
                                        let iy = zy as usize / s;
                                        if iy >= sh {
                                            continue;
                                        }
                                        for px in 0..p_ox {
                                            let ox = tx * region_w + px * s + res_x;
                                            if ox >= lw {
                                                continue;
                                            }
                                            let zx = ox as isize + kx as isize - pl_ as isize;
                                            if zx < 0 {
                                                continue;
                                            }
                                            let ix = zx as usize / s;
                                            if ix >= sw {
                                                continue;
                                            }
                                            out.at_mut(of, oy, ox)
                                                .mul_add_assign(*input.at(sf, iy, ix), w);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    record_exec("zfost/t_conv", cycles);
    Ok(ExecOutcome {
        output: out,
        cycles,
    })
}

/// Executes the Discriminator-side `W-CONV` (`D̄w`) on a [`Zfwst`] array:
/// every cycle the adder tree folds `P_ky × P_kx` real error positions into
/// one `∇W` neuron per channel group.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
pub fn zfwst_wgrad_s<T: Num>(
    zf: &Zfwst,
    phase: &ConvShape,
    data: &Fmaps<T>,
    error: &Fmaps<T>,
) -> TensorResult<ExecOutcome<Kernels<T>>> {
    zfwst_wgrad_s_inner(zf, phase, data, error, &mut TraceSink::off())
}

/// [`zfwst_wgrad_s`] with a bounded cycle-stamped event trace of up to
/// `trace_capacity` events (phase starts, operand feeds, buffer traffic),
/// returned alongside the outcome.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
pub fn zfwst_wgrad_s_traced<T: Num>(
    zf: &Zfwst,
    phase: &ConvShape,
    data: &Fmaps<T>,
    error: &Fmaps<T>,
    trace_capacity: usize,
) -> TensorResult<(ExecOutcome<Kernels<T>>, TraceBuffer)> {
    let mut trace = TraceBuffer::new(trace_capacity);
    let outcome = zfwst_wgrad_s_inner(zf, phase, data, error, &mut TraceSink::to(&mut trace))?;
    Ok((outcome, trace))
}

fn zfwst_wgrad_s_inner<T: Num>(
    zf: &Zfwst,
    phase: &ConvShape,
    data: &Fmaps<T>,
    error: &Fmaps<T>,
    sink: &mut TraceSink<'_>,
) -> TensorResult<ExecOutcome<Kernels<T>>> {
    check_kind(phase, ConvKind::WGradS)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    if data.shape() != (large, phase.large_hw().0, phase.large_hw().1) {
        return Err(ShapeError::new("data does not match phase's large side"));
    }
    if error.shape() != (small, sh, sw) {
        return Err(ShapeError::new("error does not match phase's small side"));
    }
    let (p_ky, p_kx, p_of) = zf.factors();
    let grid = p_ky * p_kx;
    let stride = geom.stride() as isize;
    let (pt, pl) = (geom.pad_top() as isize, geom.pad_left() as isize);
    let pairs: Vec<(usize, usize)> = (0..small)
        .flat_map(|of| (0..large).map(move |if_| (of, if_)))
        .collect();
    let mut grad: Kernels<T> = Kernels::zeros(small, large, geom.kh(), geom.kw());
    let mut cycles = 0u64;
    let positions: Vec<(usize, usize)> = (0..sh)
        .flat_map(|oy| (0..sw).map(move |ox| (oy, ox)))
        .collect();
    for (g, group) in pairs.chunks(p_of).enumerate() {
        sink.emit(cycles, TraceEvent::PhaseStart { label: g as u16 });
        for ky in 0..geom.kh() {
            for kx in 0..geom.kw() {
                for chunk in positions.chunks(grid) {
                    sink.emit(
                        cycles,
                        TraceEvent::Mac {
                            ch: g as u16,
                            row: ky as u16,
                            col: kx as u16,
                        },
                    );
                    sink.emit(cycles, TraceEvent::BufferWrite { buffer: 3 });
                    cycles += 1;
                    for &(of, if_) in group {
                        let mut acc = T::zero();
                        for &(oy, ox) in chunk {
                            let iy = stride * oy as isize + ky as isize - pt;
                            let ix = stride * ox as isize + kx as isize - pl;
                            acc.mul_add_assign(*error.at(of, oy, ox), data.at_padded(if_, iy, ix));
                        }
                        *grad.at_mut(of, if_, ky, kx) += acc;
                    }
                }
            }
        }
    }
    record_exec("zfwst/wgrad_s", cycles);
    Ok(ExecOutcome {
        output: grad,
        cycles,
    })
}

/// Executes the Generator-side `W-CONV` (`Ḡw`) on a [`Zfwst`] array: only
/// the real (non-inserted) data pixels are loaded into the register array
/// and folded through the adder tree.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
pub fn zfwst_wgrad_t<T: Num>(
    zf: &Zfwst,
    phase: &ConvShape,
    data: &Fmaps<T>,
    error: &Fmaps<T>,
) -> TensorResult<ExecOutcome<Kernels<T>>> {
    zfwst_wgrad_t_inner(zf, phase, data, error, &mut TraceSink::off())
}

/// [`zfwst_wgrad_t`] with a bounded cycle-stamped event trace of up to
/// `trace_capacity` events (phase starts, operand feeds, buffer traffic),
/// returned alongside the outcome.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
pub fn zfwst_wgrad_t_traced<T: Num>(
    zf: &Zfwst,
    phase: &ConvShape,
    data: &Fmaps<T>,
    error: &Fmaps<T>,
    trace_capacity: usize,
) -> TensorResult<(ExecOutcome<Kernels<T>>, TraceBuffer)> {
    let mut trace = TraceBuffer::new(trace_capacity);
    let outcome = zfwst_wgrad_t_inner(zf, phase, data, error, &mut TraceSink::to(&mut trace))?;
    Ok((outcome, trace))
}

fn zfwst_wgrad_t_inner<T: Num>(
    zf: &Zfwst,
    phase: &ConvShape,
    data: &Fmaps<T>,
    error: &Fmaps<T>,
    sink: &mut TraceSink<'_>,
) -> TensorResult<ExecOutcome<Kernels<T>>> {
    check_kind(phase, ConvKind::WGradT)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    let (lh, lw) = phase.large_hw();
    if data.shape() != (small, sh, sw) {
        return Err(ShapeError::new("data does not match phase's small side"));
    }
    if error.shape() != (large, lh, lw) {
        return Err(ShapeError::new("error does not match phase's large side"));
    }
    let (p_ky, p_kx, p_of) = zf.factors();
    let grid = p_ky * p_kx;
    let stride = geom.stride() as isize;
    let (pt, pl) = (geom.pad_top() as isize, geom.pad_left() as isize);
    let pairs: Vec<(usize, usize)> = (0..small)
        .flat_map(|sf| (0..large).map(move |lf| (sf, lf)))
        .collect();
    let mut grad: Kernels<T> = Kernels::zeros(small, large, geom.kh(), geom.kw());
    let mut cycles = 0u64;
    let positions: Vec<(usize, usize)> = (0..sh)
        .flat_map(|iy| (0..sw).map(move |ix| (iy, ix)))
        .collect();
    for (g, group) in pairs.chunks(p_of).enumerate() {
        sink.emit(cycles, TraceEvent::PhaseStart { label: g as u16 });
        for ky in 0..geom.kh() {
            for kx in 0..geom.kw() {
                for chunk in positions.chunks(grid) {
                    sink.emit(
                        cycles,
                        TraceEvent::Mac {
                            ch: g as u16,
                            row: ky as u16,
                            col: kx as u16,
                        },
                    );
                    sink.emit(cycles, TraceEvent::BufferWrite { buffer: 3 });
                    cycles += 1;
                    for &(sf, lf) in group {
                        let mut acc = T::zero();
                        for &(iy, ix) in chunk {
                            let ty = stride * iy as isize + ky as isize - pt;
                            let tx = stride * ix as isize + kx as isize - pl;
                            if ty >= 0 && tx >= 0 && (ty as usize) < lh && (tx as usize) < lw {
                                acc.mul_add_assign(
                                    *data.at(sf, iy, ix),
                                    *error.at(lf, ty as usize, tx as usize),
                                );
                            }
                        }
                        *grad.at_mut(sf, lf, ky, kx) += acc;
                    }
                }
            }
        }
    }
    record_exec("zfwst/wgrad_t", cycles);
    Ok(ExecOutcome {
        output: grad,
        cycles,
    })
}

/// Executes a `T-CONV` phase on a plain [`Ost`] array — the *baseline*
/// behaviour the zero-free design fixes. The naive dataflow walks the
/// zero-inserted input; this executor performs those multiplications for
/// real and counts how many had a zero operand, so the analytical
/// ineffectual-operation census ([`ConvShape::naive_muls`]) is validated
/// against an actual execution.
///
/// Returns the output, the enumerated cycles, and
/// `(effectual, ineffectual)` multiplication counts.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
#[allow(clippy::type_complexity)]
pub fn ost_t_conv<T: Num>(
    ost: &Ost,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
) -> TensorResult<(ExecOutcome<Fmaps<T>>, (u64, u64))> {
    ost_t_conv_inner(ost, phase, input, kernels, &mut TraceSink::off())
}

/// [`ost_t_conv`] with a bounded cycle-stamped event trace of up to
/// `trace_capacity` events (phase starts, operand feeds, buffer traffic),
/// returned alongside the outcome.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
#[allow(clippy::type_complexity)]
pub fn ost_t_conv_traced<T: Num>(
    ost: &Ost,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    trace_capacity: usize,
) -> TensorResult<((ExecOutcome<Fmaps<T>>, (u64, u64)), TraceBuffer)> {
    let mut trace = TraceBuffer::new(trace_capacity);
    let outcome = ost_t_conv_inner(ost, phase, input, kernels, &mut TraceSink::to(&mut trace))?;
    Ok((outcome, trace))
}

#[allow(clippy::type_complexity)]
fn ost_t_conv_inner<T: Num>(
    ost: &Ost,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    sink: &mut TraceSink<'_>,
) -> TensorResult<(ExecOutcome<Fmaps<T>>, (u64, u64))> {
    check_kind(phase, ConvKind::T)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    let (lh, lw) = phase.large_hw();
    if input.shape() != (small, sh, sw) {
        return Err(ShapeError::new("input does not match phase's small side"));
    }
    if kernels.shape() != (small, large, geom.kh(), geom.kw()) {
        return Err(ShapeError::new("kernels do not match phase channels"));
    }
    let (p_oy, p_ox, p_of) = ost.factors();
    let s = geom.stride();
    let (kh, kw) = (geom.kh(), geom.kw());
    let (pt_, _, pl_, _) = geom.t_conv_pads();
    let zi = exec_support::zero_inserted(input, s);
    let (zh, zw) = (zi.height(), zi.width());
    let mut out: Fmaps<T> = Fmaps::zeros(large, lh, lw);
    let mut cycles = 0u64;
    let (mut effectual, mut ineffectual) = (0u64, 0u64);
    let fold = (p_of / large).max(1);
    let tiles: Vec<(usize, usize)> = (0..lh.div_ceil(p_oy))
        .flat_map(|ty| (0..lw.div_ceil(p_ox)).map(move |tx| (ty, tx)))
        .collect();
    for of_base in (0..large).step_by(p_of) {
        sink.emit(
            cycles,
            TraceEvent::PhaseStart {
                label: (of_base / p_of) as u16,
            },
        );
        let of_end = (of_base + p_of).min(large);
        for chunk in tiles.chunks(fold) {
            for sf in 0..small {
                for ky in 0..kh {
                    for kx in 0..kw {
                        sink.emit(
                            cycles,
                            TraceEvent::Mac {
                                ch: sf as u16,
                                row: ky as u16,
                                col: kx as u16,
                            },
                        );
                        cycles += 1;
                        for &(ty, tx) in chunk {
                            for of in of_base..of_end {
                                let w = *kernels.at(sf, of, kh - 1 - ky, kw - 1 - kx);
                                for py in 0..p_oy {
                                    let oy = ty * p_oy + py;
                                    if oy >= lh {
                                        continue;
                                    }
                                    for px in 0..p_ox {
                                        let ox = tx * p_ox + px;
                                        if ox >= lw {
                                            continue;
                                        }
                                        let zy = oy as isize + ky as isize - pt_ as isize;
                                        let zx = ox as isize + kx as isize - pl_ as isize;
                                        let v = if zy >= 0
                                            && zx >= 0
                                            && (zy as usize) < zh
                                            && (zx as usize) < zw
                                        {
                                            *zi.at(sf, zy as usize, zx as usize)
                                        } else {
                                            T::zero()
                                        };
                                        // The naive array multiplies no
                                        // matter what the operand holds.
                                        if v.is_zero() {
                                            ineffectual += 1;
                                        } else {
                                            effectual += 1;
                                        }
                                        out.at_mut(of, oy, ox).mul_add_assign(v, w);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    record_exec("ost/t_conv", cycles);
    Ok((
        ExecOutcome {
            output: out,
            cycles,
        },
        (effectual, ineffectual),
    ))
}

/// Executes an `S-CONV` phase on a [`Wst`] array: weights stationary in
/// the `P_ky × P_kx` grid, one input neuron broadcast per cycle, partial
/// sums accumulated through the output buffer (counted — WST's defining
/// cost).
///
/// Returns the output, enumerated cycles, and the observed partial-sum
/// buffer accesses `(reads, writes)`.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
#[allow(clippy::type_complexity)]
pub fn wst_s_conv<T: Num>(
    wst: &Wst,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
) -> TensorResult<(ExecOutcome<Fmaps<T>>, (u64, u64))> {
    wst_s_conv_inner(wst, phase, input, kernels, &mut TraceSink::off())
}

/// [`wst_s_conv`] with a bounded cycle-stamped event trace of up to
/// `trace_capacity` events (phase starts, operand feeds, buffer traffic),
/// returned alongside the outcome.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
#[allow(clippy::type_complexity)]
pub fn wst_s_conv_traced<T: Num>(
    wst: &Wst,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    trace_capacity: usize,
) -> TensorResult<((ExecOutcome<Fmaps<T>>, (u64, u64)), TraceBuffer)> {
    let mut trace = TraceBuffer::new(trace_capacity);
    let outcome = wst_s_conv_inner(wst, phase, input, kernels, &mut TraceSink::to(&mut trace))?;
    Ok((outcome, trace))
}

#[allow(clippy::type_complexity)]
fn wst_s_conv_inner<T: Num>(
    wst: &Wst,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    sink: &mut TraceSink<'_>,
) -> TensorResult<(ExecOutcome<Fmaps<T>>, (u64, u64))> {
    check_kind(phase, ConvKind::S)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    let (lh, lw) = phase.large_hw();
    if input.shape() != (large, lh, lw) {
        return Err(ShapeError::new("input does not match phase's large side"));
    }
    if kernels.shape() != (small, large, geom.kh(), geom.kw()) {
        return Err(ShapeError::new("kernels do not match phase channels"));
    }
    let (p_ky, p_kx, p_of) = wst.factors();
    let stride = geom.stride() as isize;
    let (kh, kw) = (geom.kh(), geom.kw());
    let (pt, pl) = (geom.pad_top() as isize, geom.pad_left() as isize);
    let mut out: Fmaps<T> = Fmaps::zeros(small, sh, sw);
    let mut cycles = 0u64;
    let (mut psum_reads, mut psum_writes) = (0u64, 0u64);
    for of_base in (0..small).step_by(p_of) {
        sink.emit(
            cycles,
            TraceEvent::PhaseStart {
                label: (of_base / p_of) as u16,
            },
        );
        let of_end = (of_base + p_of).min(small);
        for ky_base in (0..kh).step_by(p_ky) {
            for kx_base in (0..kw).step_by(p_kx) {
                // The grid holds one chunk of each group-channel's kernel;
                // every input neuron of the map streams past it.
                for if_ in 0..large {
                    for iy in 0..lh {
                        for ix in 0..lw {
                            sink.emit(cycles, TraceEvent::BufferRead { buffer: 1 });
                            cycles += 1;
                            let v = *input.at(if_, iy, ix);
                            for of in of_base..of_end {
                                for ky in ky_base..(ky_base + p_ky).min(kh) {
                                    for kx in kx_base..(kx_base + p_kx).min(kw) {
                                        // Which output (if any) does this
                                        // (input, weight) pair feed?
                                        let ny = iy as isize - ky as isize + pt;
                                        let nx = ix as isize - kx as isize + pl;
                                        if ny < 0 || nx < 0 || ny % stride != 0 || nx % stride != 0
                                        {
                                            continue; // idle PE this cycle
                                        }
                                        let (oy, ox) =
                                            ((ny / stride) as usize, (nx / stride) as usize);
                                        if oy >= sh || ox >= sw {
                                            continue;
                                        }
                                        // No stationary psum: read-modify-
                                        // write through the buffer.
                                        psum_reads += 1;
                                        psum_writes += 1;
                                        sink.emit(cycles - 1, TraceEvent::BufferRead { buffer: 2 });
                                        sink.emit(
                                            cycles - 1,
                                            TraceEvent::BufferWrite { buffer: 2 },
                                        );
                                        out.at_mut(of, oy, ox)
                                            .mul_add_assign(v, *kernels.at(of, if_, ky, kx));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    record_exec("wst/s_conv", cycles);
    Ok((
        ExecOutcome {
            output: out,
            cycles,
        },
        (psum_reads, psum_writes),
    ))
}

/// Executes an `S-CONV` phase on an [`Nlr`] array: `P_if` input lanes fold
/// through the adder tree into `P_of` output channels; no operand is kept
/// locally, so every cycle re-fetches its weights (the counted cost).
///
/// Returns the output, enumerated cycles and the observed weight fetches.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
pub fn nlr_s_conv<T: Num>(
    nlr: &Nlr,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
) -> TensorResult<(ExecOutcome<Fmaps<T>>, u64)> {
    nlr_s_conv_inner(nlr, phase, input, kernels, &mut TraceSink::off())
}

/// [`nlr_s_conv`] with a bounded cycle-stamped event trace of up to
/// `trace_capacity` events (phase starts, operand feeds, buffer traffic),
/// returned alongside the outcome.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
#[allow(clippy::type_complexity)]
pub fn nlr_s_conv_traced<T: Num>(
    nlr: &Nlr,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    trace_capacity: usize,
) -> TensorResult<((ExecOutcome<Fmaps<T>>, u64), TraceBuffer)> {
    let mut trace = TraceBuffer::new(trace_capacity);
    let outcome = nlr_s_conv_inner(nlr, phase, input, kernels, &mut TraceSink::to(&mut trace))?;
    Ok((outcome, trace))
}

#[allow(clippy::type_complexity)]
fn nlr_s_conv_inner<T: Num>(
    nlr: &Nlr,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    sink: &mut TraceSink<'_>,
) -> TensorResult<(ExecOutcome<Fmaps<T>>, u64)> {
    check_kind(phase, ConvKind::S)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    if input.shape() != (large, phase.large_hw().0, phase.large_hw().1) {
        return Err(ShapeError::new("input does not match phase's large side"));
    }
    if kernels.shape() != (small, large, geom.kh(), geom.kw()) {
        return Err(ShapeError::new("kernels do not match phase channels"));
    }
    let (p_if, p_of) = (nlr.p_if(), nlr.p_of());
    let stride = geom.stride() as isize;
    let (pt, pl) = (geom.pad_top() as isize, geom.pad_left() as isize);
    let mut out: Fmaps<T> = Fmaps::zeros(small, sh, sw);
    let mut cycles = 0u64;
    let mut weight_fetches = 0u64;
    for of_base in (0..small).step_by(p_of) {
        sink.emit(
            cycles,
            TraceEvent::PhaseStart {
                label: (of_base / p_of) as u16,
            },
        );
        let of_end = (of_base + p_of).min(small);
        for if_base in (0..large).step_by(p_if) {
            let if_end = (if_base + p_if).min(large);
            // One (kernel-position, output-position) coordinate per cycle,
            // P_if lanes folded by the adder tree, P_of channels wide.
            for oy in 0..sh {
                for ox in 0..sw {
                    for ky in 0..geom.kh() {
                        for kx in 0..geom.kw() {
                            sink.emit(
                                cycles,
                                TraceEvent::Mac {
                                    ch: if_base as u16,
                                    row: oy as u16,
                                    col: ox as u16,
                                },
                            );
                            cycles += 1;
                            for of in of_base..of_end {
                                let mut tree = T::zero();
                                for if_ in if_base..if_end {
                                    let iy = stride * oy as isize + ky as isize - pt;
                                    let ix = stride * ox as isize + kx as isize - pl;
                                    weight_fetches += 1;
                                    sink.emit(cycles - 1, TraceEvent::BufferRead { buffer: 0 });
                                    tree +=
                                        input.at_padded(if_, iy, ix) * *kernels.at(of, if_, ky, kx);
                                }
                                *out.at_mut(of, oy, ox) += tree;
                            }
                        }
                    }
                }
            }
        }
    }
    record_exec("nlr/s_conv", cycles);
    Ok((
        ExecOutcome {
            output: out,
            cycles,
        },
        weight_fetches,
    ))
}

/// Executes an `S-CONV` phase on a [`Zfwst`] array (the cross-assignment
/// the paper evaluates in Fig. 15): the layer kernel is held stationary in
/// the `P_ky × P_kx` grid and the adder tree folds one output neuron's
/// worth of products per cycle per channel, accumulating across input maps.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
pub fn zfwst_s_conv<T: Num>(
    zf: &Zfwst,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
) -> TensorResult<ExecOutcome<Fmaps<T>>> {
    zfwst_s_conv_inner(zf, phase, input, kernels, &mut TraceSink::off())
}

/// [`zfwst_s_conv`] with a bounded cycle-stamped event trace of up to
/// `trace_capacity` events (phase starts, operand feeds, buffer traffic),
/// returned alongside the outcome.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
pub fn zfwst_s_conv_traced<T: Num>(
    zf: &Zfwst,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    trace_capacity: usize,
) -> TensorResult<(ExecOutcome<Fmaps<T>>, TraceBuffer)> {
    let mut trace = TraceBuffer::new(trace_capacity);
    let outcome = zfwst_s_conv_inner(zf, phase, input, kernels, &mut TraceSink::to(&mut trace))?;
    Ok((outcome, trace))
}

fn zfwst_s_conv_inner<T: Num>(
    zf: &Zfwst,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    sink: &mut TraceSink<'_>,
) -> TensorResult<ExecOutcome<Fmaps<T>>> {
    check_kind(phase, ConvKind::S)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    if input.shape() != (large, phase.large_hw().0, phase.large_hw().1) {
        return Err(ShapeError::new("input does not match phase's large side"));
    }
    if kernels.shape() != (small, large, geom.kh(), geom.kw()) {
        return Err(ShapeError::new("kernels do not match phase channels"));
    }
    let (p_ky, p_kx, p_of) = zf.factors();
    let grid = p_ky * p_kx;
    let stride = geom.stride() as isize;
    let (pt, pl) = (geom.pad_top() as isize, geom.pad_left() as isize);
    let positions: Vec<(usize, usize)> = (0..geom.kh())
        .flat_map(|ky| (0..geom.kw()).map(move |kx| (ky, kx)))
        .collect();
    let mut out: Fmaps<T> = Fmaps::zeros(small, sh, sw);
    let mut cycles = 0u64;
    for of_base in (0..small).step_by(p_of) {
        sink.emit(
            cycles,
            TraceEvent::PhaseStart {
                label: (of_base / p_of) as u16,
            },
        );
        let of_end = (of_base + p_of).min(small);
        for oy in 0..sh {
            for ox in 0..sw {
                for if_ in 0..large {
                    for chunk in positions.chunks(grid) {
                        sink.emit(
                            cycles,
                            TraceEvent::Mac {
                                ch: if_ as u16,
                                row: oy as u16,
                                col: ox as u16,
                            },
                        );
                        cycles += 1;
                        for of in of_base..of_end {
                            // The adder tree folds the chunk's products.
                            let mut tree = T::zero();
                            for &(ky, kx) in chunk {
                                let iy = stride * oy as isize + ky as isize - pt;
                                let ix = stride * ox as isize + kx as isize - pl;
                                tree += input.at_padded(if_, iy, ix) * *kernels.at(of, if_, ky, kx);
                            }
                            *out.at_mut(of, oy, ox) += tree;
                        }
                    }
                }
            }
        }
    }
    record_exec("zfwst/s_conv", cycles);
    Ok(ExecOutcome {
        output: out,
        cycles,
    })
}

/// Executes a `T-CONV` phase on a [`Zfwst`] array: only the non-zero
/// kernel taps of each output's parity class are made stationary
/// ("we only allocate non-zero kernel weights to PEs"), so the tree folds
/// ~`k²/s²` effective taps per output instead of `k²`.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
pub fn zfwst_t_conv<T: Num>(
    zf: &Zfwst,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
) -> TensorResult<ExecOutcome<Fmaps<T>>> {
    zfwst_t_conv_inner(zf, phase, input, kernels, &mut TraceSink::off())
}

/// [`zfwst_t_conv`] with a bounded cycle-stamped event trace of up to
/// `trace_capacity` events (phase starts, operand feeds, buffer traffic),
/// returned alongside the outcome.
///
/// # Errors
///
/// Returns an error if the operands do not match `phase`.
pub fn zfwst_t_conv_traced<T: Num>(
    zf: &Zfwst,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    trace_capacity: usize,
) -> TensorResult<(ExecOutcome<Fmaps<T>>, TraceBuffer)> {
    let mut trace = TraceBuffer::new(trace_capacity);
    let outcome = zfwst_t_conv_inner(zf, phase, input, kernels, &mut TraceSink::to(&mut trace))?;
    Ok((outcome, trace))
}

fn zfwst_t_conv_inner<T: Num>(
    zf: &Zfwst,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    sink: &mut TraceSink<'_>,
) -> TensorResult<ExecOutcome<Fmaps<T>>> {
    check_kind(phase, ConvKind::T)?;
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    let (lh, lw) = phase.large_hw();
    if input.shape() != (small, sh, sw) {
        return Err(ShapeError::new("input does not match phase's small side"));
    }
    if kernels.shape() != (small, large, geom.kh(), geom.kw()) {
        return Err(ShapeError::new("kernels do not match phase channels"));
    }
    let (p_ky, p_kx, p_of) = zf.factors();
    let grid = p_ky * p_kx;
    let s = geom.stride();
    let (kh, kw) = (geom.kh(), geom.kw());
    let (pt_, _, pl_, _) = geom.t_conv_pads();
    let mut out: Fmaps<T> = Fmaps::zeros(large, lh, lw);
    let mut cycles = 0u64;
    // Per-output effective tap budget: ⌈k/s⌉² grid slots per pass.
    let eff = (kh.div_ceil(s)) * (kw.div_ceil(s));
    let passes = eff.div_ceil(grid);
    for of_base in (0..large).step_by(p_of) {
        sink.emit(
            cycles,
            TraceEvent::PhaseStart {
                label: (of_base / p_of) as u16,
            },
        );
        let of_end = (of_base + p_of).min(large);
        for oy in 0..lh {
            for ox in 0..lw {
                // Non-zero taps of this output's parity class.
                let taps: Vec<(usize, usize, usize, usize)> = (0..kh)
                    .flat_map(|ky| (0..kw).map(move |kx| (ky, kx)))
                    .filter_map(|(ky, kx)| {
                        let zy = oy as isize + ky as isize - pt_ as isize;
                        let zx = ox as isize + kx as isize - pl_ as isize;
                        if zy < 0
                            || zx < 0
                            || !(zy as usize).is_multiple_of(s)
                            || !(zx as usize).is_multiple_of(s)
                        {
                            return None;
                        }
                        let (iy, ix) = (zy as usize / s, zx as usize / s);
                        if iy < sh && ix < sw {
                            Some((ky, kx, iy, ix))
                        } else {
                            None
                        }
                    })
                    .collect();
                for sf in 0..small {
                    // The schedule charges `passes` cycles per (output, map)
                    // regardless of edge-thinning — the hardware's fixed
                    // pipeline beat.
                    for chunk in taps.chunks(grid.max(1)) {
                        sink.emit(
                            cycles,
                            TraceEvent::Mac {
                                ch: sf as u16,
                                row: oy as u16,
                                col: ox as u16,
                            },
                        );
                        cycles += 1;
                        for of in of_base..of_end {
                            let mut tree = T::zero();
                            for &(ky, kx, iy, ix) in chunk {
                                tree += *input.at(sf, iy, ix)
                                    * *kernels.at(sf, of, kh - 1 - ky, kw - 1 - kx);
                            }
                            *out.at_mut(of, oy, ox) += tree;
                        }
                    }
                    // Idle beats when edge-thinning left fewer chunks than
                    // the schedule's fixed pass count.
                    let used = taps.chunks(grid.max(1)).count();
                    cycles += (passes - used.min(passes)) as u64;
                }
            }
        }
    }
    record_exec("zfwst/t_conv", cycles);
    Ok(ExecOutcome {
        output: out,
        cycles,
    })
}
