//! Register-transfer-level model of the ZFOST array (paper Fig. 11).
//!
//! The closed-form schedules count cycles; the functional executors verify
//! the numerics; this module goes one level deeper and models the
//! *hardware state* the paper draws:
//!
//! * an **input register lattice** shared by all PE channels — one register
//!   per PE plus a halo ring. Adjacent registers hold input pixels
//!   `stride` apart (the output-stationary spacing), and data moves
//!   between them only by unit shifts along the register chains (the
//!   arrows of Fig. 12) or by explicit loads from the on-chip buffer;
//! * one **weight broadcast bus** per channel;
//! * a `P_oy × P_ox` grid of PEs per channel, each hard-wired to one fixed
//!   register tap and owning one stationary output accumulator.
//!
//! Each cycle the controller may shift the lattice (concurrent with
//! compute, no cycle cost), loads any tap whose required value the shift
//! network could not deliver (each load is an on-chip buffer read — the
//! Fig. 16 currency), then broadcasts one weight per channel and fires the
//! MACs.
//!
//! The decisive physics: a shift moves every register's content by
//! `stride` input pixels. Kernel-position steps of `±stride` (what the
//! parity-reordered feed produces within a class) are therefore one shift;
//! steps of `±1` (raster order on a strided layer) are *unrepresentable*
//! on the lattice and force a full reload. Running both orders through
//! this machine **measures** the load explosion the paper describes in
//! §III-C3 instead of assuming it.

use zfgan_sim::trace::{TraceBuffer, TraceEvent};
use zfgan_sim::{ConvKind, ConvShape};
use zfgan_tensor::{Fmaps, Kernels, Num, ShapeError, TensorResult};

use crate::zfost::Zfost;

/// Observed hardware-event counters of an RTL run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RtlCounters {
    /// Input-buffer reads (register loads the shift network couldn't cover).
    pub input_loads: u64,
    /// Lattice shift operations (free in hardware; counted for interest).
    pub shifts: u64,
    /// MAC operations fired.
    pub macs: u64,
    /// Cycles elapsed.
    pub cycles: u64,
}

/// Outcome of an RTL run: the computed output plus the observed counters
/// and, when requested, a bounded event trace.
#[derive(Debug, Clone)]
pub struct RtlOutcome<T> {
    /// The computed output feature maps.
    pub output: Fmaps<T>,
    /// Observed hardware-event counters.
    pub counters: RtlCounters,
    /// Cycle-stamped event trace (present for `rtl_s_conv_traced`).
    pub trace: Option<TraceBuffer>,
}

/// One register of the lattice: the input coordinate it holds plus the
/// value (None = invalid / not yet loaded).
type Reg<T> = Option<(isize, isize, T)>;

struct Lattice<T> {
    rows: usize,
    cols: usize,
    regs: Vec<Reg<T>>,
    counters: RtlCounters,
    trace: Option<TraceBuffer>,
}

impl<T: Num> Lattice<T> {
    fn new(rows: usize, cols: usize, trace_capacity: Option<usize>) -> Self {
        Self {
            rows,
            cols,
            regs: vec![None; rows * cols],
            counters: RtlCounters::default(),
            trace: trace_capacity.map(TraceBuffer::new),
        }
    }

    fn invalidate(&mut self) {
        for r in &mut self.regs {
            *r = None;
        }
    }

    fn at(&self, ry: usize, rx: usize) -> Reg<T> {
        self.regs[ry * self.cols + rx]
    }

    fn set(&mut self, ry: usize, rx: usize, v: Reg<T>) {
        self.regs[ry * self.cols + rx] = v;
    }

    /// Moves every register's content one lattice position; entering-edge
    /// registers become invalid (their loads are charged when used).
    fn shift(&mut self, dy: isize, dx: isize) {
        debug_assert!(
            dy.abs() <= 1 && dx.abs() <= 1,
            "register chains shift by one"
        );
        if dy == 0 && dx == 0 {
            return;
        }
        self.counters.shifts += 1;
        if let Some(t) = &mut self.trace {
            t.record(
                self.counters.cycles,
                TraceEvent::Shift {
                    dy: dy as i8,
                    dx: dx as i8,
                },
            );
        }
        let mut next = vec![None; self.regs.len()];
        for ry in 0..self.rows {
            for rx in 0..self.cols {
                let ty = ry as isize - dy;
                let tx = rx as isize - dx;
                if ty >= 0 && tx >= 0 && (ty as usize) < self.rows && (tx as usize) < self.cols {
                    next[ty as usize * self.cols + tx as usize] = self.at(ry, rx);
                }
            }
        }
        self.regs = next;
    }

    /// Makes the tap `(ry, rx)` hold input `(iy, ix)`, loading from the
    /// buffer (and counting it) if the shift network didn't deliver it.
    fn ensure(
        &mut self,
        input: &Fmaps<T>,
        ch: usize,
        ry: usize,
        rx: usize,
        iy: isize,
        ix: isize,
    ) -> T {
        if let Some((cy, cx, v)) = self.at(ry, rx) {
            if cy == iy && cx == ix {
                return v;
            }
        }
        self.counters.input_loads += 1;
        if let Some(t) = &mut self.trace {
            t.record(self.counters.cycles, TraceEvent::BufferRead { buffer: 0 });
        }
        let v = input.at_padded(ch, iy, ix);
        self.set(ry, rx, Some((iy, ix, v)));
        v
    }
}

/// Runs an `S-CONV` phase through the RTL array.
///
/// `reordered` selects the paper's parity kernel-feed order (Fig. 12a);
/// `false` feeds the kernel in raster order, reproducing the broken-reuse
/// baseline of §III-C3. Both orders compute identical results; only the
/// observed load counts differ.
///
/// # Errors
///
/// Returns an error if operands do not match `phase`.
pub fn rtl_s_conv<T: Num>(
    zf: &Zfost,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    reordered: bool,
) -> TensorResult<RtlOutcome<T>> {
    rtl_s_conv_inner(zf, phase, input, kernels, reordered, None)
}

/// [`rtl_s_conv`] with a bounded event trace of up to `trace_capacity`
/// shift/load events attached to the outcome.
///
/// # Errors
///
/// Same conditions as [`rtl_s_conv`].
pub fn rtl_s_conv_traced<T: Num>(
    zf: &Zfost,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    reordered: bool,
    trace_capacity: usize,
) -> TensorResult<RtlOutcome<T>> {
    rtl_s_conv_inner(zf, phase, input, kernels, reordered, Some(trace_capacity))
}

fn rtl_s_conv_inner<T: Num>(
    zf: &Zfost,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
    reordered: bool,
    trace_capacity: Option<usize>,
) -> TensorResult<RtlOutcome<T>> {
    if phase.kind() != ConvKind::S {
        return Err(ShapeError::new("rtl_s_conv expects an S phase"));
    }
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    let (lh, lw) = phase.large_hw();
    if input.shape() != (large, lh, lw) {
        return Err(ShapeError::new("input does not match phase's large side"));
    }
    if kernels.shape() != (small, large, geom.kh(), geom.kw()) {
        return Err(ShapeError::new("kernels do not match phase channels"));
    }
    let s = geom.stride() as isize;
    let (kh, kw) = (geom.kh(), geom.kw());
    let (pt, pl) = (geom.pad_top() as isize, geom.pad_left() as isize);
    let (p_oy, p_ox, p_of) = zf.factors();

    let order: Vec<(usize, usize)> = if reordered {
        crate::exec::kernel_parity_order(kh, kw, geom.stride())
    } else {
        (0..kh)
            .flat_map(|ky| (0..kw).map(move |kx| (ky, kx)))
            .collect()
    };

    let mut lattice: Lattice<T> = Lattice::new(p_oy, p_ox, trace_capacity);
    let mut out: Fmaps<T> = Fmaps::zeros(small, sh, sw);
    let mut acc = vec![vec![T::zero(); p_oy * p_ox]; p_of];

    for of_base in (0..small).step_by(p_of) {
        let of_end = (of_base + p_of).min(small);
        for ty in 0..sh.div_ceil(p_oy) {
            for tx in 0..sw.div_ceil(p_ox) {
                for if_ in 0..large {
                    for ch in &mut acc {
                        for a in ch.iter_mut() {
                            *a = T::zero();
                        }
                    }
                    // New (tile, map): lattice contents are stale.
                    lattice.invalidate();
                    let mut prev: Option<(usize, usize)> = None;
                    for &(ky, kx) in &order {
                        // The lattice can absorb a kernel step of exactly
                        // ±stride per axis with one shift; anything else
                        // (the raster order's ±1 on a strided layer, or a
                        // parity-class change) leaves the taps stale and
                        // they reload below.
                        if let Some((pky, pkx)) = prev {
                            let dy = ky as isize - pky as isize;
                            let dx = kx as isize - pkx as isize;
                            let sy = if dy.abs() == s { dy.signum() } else { 0 };
                            let sx = if dx.abs() == s { dx.signum() } else { 0 };
                            if (sy != 0 || sx != 0)
                                && (dy == 0 || dy.abs() == s)
                                && (dx == 0 || dx.abs() == s)
                            {
                                lattice.shift(sy, sx);
                            }
                        }
                        prev = Some((ky, kx));
                        lattice.counters.cycles += 1;
                        for (ci, of) in (of_base..of_end).enumerate() {
                            let w = *kernels.at(of, if_, ky, kx);
                            for py in 0..p_oy {
                                let oy = ty * p_oy + py;
                                if oy >= sh {
                                    continue;
                                }
                                for px in 0..p_ox {
                                    let ox = tx * p_ox + px;
                                    if ox >= sw {
                                        continue;
                                    }
                                    let iy = s * oy as isize + ky as isize - pt;
                                    let ix = s * ox as isize + kx as isize - pl;
                                    // The lattice is one physical structure
                                    // broadcast to every channel: only the
                                    // first channel touches the buffer.
                                    let v = if ci == 0 {
                                        lattice.ensure(input, if_, py, px, iy, ix)
                                    } else {
                                        lattice
                                            .at(py, px)
                                            .map(|(_, _, v)| v)
                                            .unwrap_or_else(T::zero)
                                    };
                                    lattice.counters.macs += 1;
                                    acc[ci][py * p_ox + px].mul_add_assign(v, w);
                                }
                            }
                        }
                    }
                    // Stationary outputs accumulate across input maps.
                    for (ci, of) in (of_base..of_end).enumerate() {
                        for py in 0..p_oy {
                            let oy = ty * p_oy + py;
                            if oy >= sh {
                                continue;
                            }
                            for px in 0..p_ox {
                                let ox = tx * p_ox + px;
                                if ox >= sw {
                                    continue;
                                }
                                *out.at_mut(of, oy, ox) += acc[ci][py * p_ox + px];
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(RtlOutcome {
        output: out,
        counters: lattice.counters,
        trace: lattice.trace,
    })
}

/// Runs both feed orders on the same operands and returns
/// `(reordered_loads, raster_loads)`.
///
/// # Errors
///
/// Propagates operand mismatches from [`rtl_s_conv`].
pub fn reorder_load_comparison<T: Num>(
    zf: &Zfost,
    phase: &ConvShape,
    input: &Fmaps<T>,
    kernels: &Kernels<T>,
) -> TensorResult<(u64, u64)> {
    let a = rtl_s_conv(zf, phase, input, kernels, true)?;
    let b = rtl_s_conv(zf, phase, input, kernels, false)?;
    debug_assert!(a.output.max_abs_diff(&b.output) < 1e-9);
    Ok((a.counters.input_loads, b.counters.input_loads))
}

/// RTL model of the ZFWST array (paper Fig. 13): a `P_ky × P_kx` grid of
/// stationary-operand registers feeding a binary **adder tree**, one tree
/// per channel, with a ping-pong partial-sum register at the root.
///
/// The tree is modelled structurally — a reduction over explicit levels —
/// so the cycle semantics ("all the PEs contribute to one output neuron
/// using the adder tree") is executable rather than asserted: every cycle
/// consumes one grid-full of (stationary × streamed) products per channel
/// and emits exactly one partial sum.
#[derive(Debug)]
pub struct ZfwstTree<T> {
    grid: usize,
    stationary: Vec<T>,
    counters: RtlCounters,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Num> ZfwstTree<T> {
    /// Builds a tree for a `p_ky × p_kx` grid.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty.
    pub fn new(p_ky: usize, p_kx: usize) -> Self {
        assert!(p_ky > 0 && p_kx > 0, "grid must be non-empty");
        Self {
            grid: p_ky * p_kx,
            stationary: vec![T::zero(); p_ky * p_kx],
            counters: RtlCounters::default(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Loads a chunk of stationary operands into the PE registers (each
    /// load is a buffer read). Slots beyond `values.len()` hold zero —
    /// idle PEs, visible as utilization loss.
    pub fn load_stationary(&mut self, values: &[T]) {
        assert!(values.len() <= self.grid, "chunk exceeds the grid");
        for (slot, v) in self.stationary.iter_mut().zip(values) {
            *slot = *v;
            self.counters.input_loads += 1;
        }
        for slot in self.stationary.iter_mut().skip(values.len()) {
            *slot = T::zero();
        }
    }

    /// One cycle: multiply each stationary register with its streamed
    /// operand and fold the products through the adder tree, returning the
    /// root's partial sum.
    ///
    /// # Panics
    ///
    /// Panics if `streamed` does not cover the grid.
    pub fn cycle(&mut self, streamed: &[T]) -> T {
        assert!(streamed.len() <= self.grid, "stream exceeds the grid");
        self.counters.cycles += 1;
        // Level 0: the PE multipliers.
        let mut level: Vec<T> = self
            .stationary
            .iter()
            .zip(streamed.iter().chain(std::iter::repeat(&T::zero())))
            .map(|(&a, &b)| {
                self.counters.macs += 1;
                a * b
            })
            .collect();
        // Reduction levels: pairwise adds until one value remains — the
        // structural adder tree.
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|pair| pair.iter().fold(T::zero(), |s, &v| s + v))
                .collect();
        }
        level[0]
    }

    /// The counters accumulated so far.
    pub fn counters(&self) -> RtlCounters {
        self.counters
    }
}

/// Computes one `D̄w` gradient neuron through the [`ZfwstTree`], streaming
/// the real error values in grid-sized chunks with their matching data
/// operands — the Fig. 13 dataflow for a single `(of, if, ky, kx)` output.
///
/// Returns `(value, cycles_used)`. The caller loops this over the gradient
/// tensor; the per-output cycles equal `⌈sh·sw / grid⌉`, the closed-form
/// model's inner factor.
pub fn tree_wgrad_neuron<T: Num>(
    tree: &mut ZfwstTree<T>,
    err_chunked: &[T],
    data_chunked: &[T],
    grid: usize,
) -> (T, u64) {
    assert_eq!(
        err_chunked.len(),
        data_chunked.len(),
        "operand streams must pair up"
    );
    let mut acc = T::zero();
    let mut cycles = 0u64;
    for (e_chunk, d_chunk) in err_chunked.chunks(grid).zip(data_chunked.chunks(grid)) {
        tree.load_stationary(e_chunk);
        acc += tree.cycle(d_chunk);
        cycles += 1;
    }
    (acc, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Dataflow;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use zfgan_tensor::{s_conv, ConvGeom};

    fn setup() -> (ConvShape, Fmaps<f64>, Kernels<f64>, Zfost) {
        let mut rng = SmallRng::seed_from_u64(5);
        let geom = ConvGeom::down(16, 16, 4, 4, 2, 8, 8).unwrap();
        let phase = ConvShape::new(ConvKind::S, geom, 6, 2, 16, 16);
        let x: Fmaps<f64> = Fmaps::random(2, 16, 16, 1.0, &mut rng);
        let k: Kernels<f64> = Kernels::random(6, 2, 4, 4, 1.0, &mut rng);
        (phase, x, k, Zfost::new(4, 4, 3))
    }

    #[test]
    fn rtl_computes_the_reference_result() {
        let (phase, x, k, zf) = setup();
        for reordered in [true, false] {
            let rtl = rtl_s_conv(&zf, &phase, &x, &k, reordered).unwrap();
            let reference = s_conv(&x, &k, phase.geom()).unwrap();
            assert!(
                rtl.output.max_abs_diff(&reference) < 1e-9,
                "reordered={reordered}: diff {}",
                rtl.output.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn rtl_cycles_and_macs_match_the_models() {
        let (phase, x, k, zf) = setup();
        let rtl = rtl_s_conv(&zf, &phase, &x, &k, true).unwrap();
        assert_eq!(rtl.counters.cycles, zf.schedule(&phase).cycles);
        // Every effectual MAC fires exactly once (edge PEs idle off-range).
        assert_eq!(rtl.counters.macs, phase.effectual_macs());
    }

    #[test]
    fn reorder_slashes_the_observed_loads() {
        let (phase, x, k, zf) = setup();
        let (reordered, raster) = reorder_load_comparison(&zf, &phase, &x, &k).unwrap();
        // Raster order reloads all 16 taps nearly every cycle; the parity
        // order shifts within classes and reloads only on class changes.
        assert!(
            raster as f64 / reordered as f64 > 1.5,
            "raster {raster} vs reordered {reordered}"
        );
        // Sanity floor: the reordered machine still loads each tile's
        // working set at least once.
        assert!(reordered >= phase.real_input_count() / 4);
    }

    #[test]
    fn shifts_only_happen_under_reordering() {
        let (phase, x, k, zf) = setup();
        let a = rtl_s_conv(&zf, &phase, &x, &k, true).unwrap();
        let b = rtl_s_conv(&zf, &phase, &x, &k, false).unwrap();
        assert!(
            a.counters.shifts > 0,
            "parity order should exploit the chains"
        );
        assert_eq!(
            b.counters.shifts, 0,
            "raster steps of ±1 are unrepresentable on the stride-2 lattice"
        );
    }

    #[test]
    fn traced_run_records_shift_and_load_events() {
        let (phase, x, k, zf) = setup();
        let rtl = rtl_s_conv_traced(&zf, &phase, &x, &k, true, 64).unwrap();
        let trace = rtl.trace.expect("trace requested");
        assert!(!trace.is_empty());
        let has_shift = trace
            .iter()
            .any(|(_, e)| matches!(e, zfgan_sim::trace::TraceEvent::Shift { .. }));
        let has_load = trace
            .iter()
            .any(|(_, e)| matches!(e, zfgan_sim::trace::TraceEvent::BufferRead { .. }));
        assert!(has_shift && has_load, "trace:\n{}", trace.render());
        // The capacity bound keeps memory flat while keeping truncation
        // visible.
        assert!(trace.len() <= 64);
        assert!(trace.evicted() > 0);
    }

    #[test]
    fn adder_tree_folds_a_dot_product_per_cycle() {
        let mut tree: ZfwstTree<f64> = ZfwstTree::new(4, 4);
        let a: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..16).map(|i| (i as f64) * 0.5).collect();
        tree.load_stationary(&a);
        let got = tree.cycle(&b);
        let want: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((got - want).abs() < 1e-12);
        assert_eq!(tree.counters().cycles, 1);
        assert_eq!(tree.counters().macs, 16);
    }

    #[test]
    fn tree_wgrad_matches_reference_and_cycle_model() {
        // One ∇W neuron of the D̄w phase: dot product of the error map with
        // stride-aligned data, folded 16 values per cycle.
        let mut rng = SmallRng::seed_from_u64(9);
        let geom = ConvGeom::down(16, 16, 4, 4, 2, 8, 8).unwrap();
        let data: Fmaps<f64> = Fmaps::random(1, 16, 16, 1.0, &mut rng);
        let err: Fmaps<f64> = Fmaps::random(1, 8, 8, 1.0, &mut rng);
        let (ky, kx) = (1usize, 2usize);
        let mut e_stream = Vec::new();
        let mut d_stream = Vec::new();
        for oy in 0..8 {
            for ox in 0..8 {
                e_stream.push(*err.at(0, oy, ox));
                let iy = 2 * oy as isize + ky as isize - 1;
                let ix = 2 * ox as isize + kx as isize - 1;
                d_stream.push(data.at_padded(0, iy, ix));
            }
        }
        let mut tree: ZfwstTree<f64> = ZfwstTree::new(4, 4);
        let (value, cycles) = tree_wgrad_neuron(&mut tree, &e_stream, &d_stream, 16);
        let reference = zfgan_tensor::w_conv_for_s_layer(&data, &err, &geom).unwrap();
        assert!((value - reference.at(0, 0, ky, kx).to_f64()).abs() < 1e-9);
        // ⌈64/16⌉ = 4 cycles per output neuron — the closed-form inner term.
        assert_eq!(cycles, 4);
    }

    #[test]
    fn partially_filled_tree_shows_idle_lanes() {
        let mut tree: ZfwstTree<f64> = ZfwstTree::new(4, 4);
        tree.load_stationary(&[1.0, 2.0]);
        let got = tree.cycle(&[10.0, 100.0]);
        assert_eq!(got, 210.0);
        // MACs still fire on idle lanes (zeros) — that is the utilization
        // loss the schedules report.
        assert_eq!(tree.counters().macs, 16);
    }

    #[test]
    fn unit_stride_layers_shift_in_any_order() {
        // With stride 1 the lattice spacing matches raster steps, so even
        // the naive order reuses via shifts — OST's classical behaviour on
        // traditional CNN layers (paper Fig. 7a).
        let mut rng = SmallRng::seed_from_u64(6);
        let geom = ConvGeom::symmetric(3, 3, 1, 1).unwrap();
        let phase = ConvShape::new(ConvKind::S, geom, 4, 2, 8, 8);
        let x: Fmaps<f64> = Fmaps::random(2, 8, 8, 1.0, &mut rng);
        let k: Kernels<f64> = Kernels::random(4, 2, 3, 3, 1.0, &mut rng);
        let zf = Zfost::new(4, 4, 2);
        let raster = rtl_s_conv(&zf, &phase, &x, &k, false).unwrap();
        assert!(raster.counters.shifts > 0);
        let reference = s_conv(&x, &k, &geom).unwrap();
        assert!(raster.output.max_abs_diff(&reference) < 1e-9);
    }
}
