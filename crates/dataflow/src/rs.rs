//! RS — Row-Stationary (Eyeriss-style), an *extension* beyond the paper's
//! evaluated baselines.
//!
//! The paper's related-work section argues that Eyeriss' row-stationary
//! dataflow, although excellent at data reuse, "could not handle the
//! zero-inserting in the kernel for W-CONV" — it *gates* zero computations
//! (saving energy) but cannot *skip* them (saving cycles). This module
//! models that behaviour so the claim is checkable against ZFOST/ZFWST.
//!
//! Mapping: a `P_h × P_w` grid where each PE runs a 1-D convolution
//! primitive — one kernel row stationary per PE row, input rows reused
//! diagonally, partial sums accumulated vertically — with `P_of` grid
//! copies across output channels:
//!
//! ```text
//! cycles(S/T) = N_oy · ⌈N_ox/P_w⌉ · N_kx · ⌈N_ky/P_h⌉ · N_if · ⌈N_of/P_of⌉
//! ```
//!
//! Zeros in a zero-inserted operand are **gated**: their MACs still occupy
//! a cycle slot, but their energy (and the operand fetch) is suppressed,
//! which the access counts reflect.

use zfgan_sim::{AccessCounts, ConvKind, ConvShape, PhaseStats};

use crate::arch::{ceil_div, ArchKind, Dataflow};

/// A row-stationary configuration (`P_h` kernel-row lanes × `P_w` output
/// columns × `P_of` channel copies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowStationary {
    p_h: u64,
    p_w: u64,
    p_of: u64,
}

impl RowStationary {
    /// Creates a row-stationary array.
    ///
    /// # Panics
    ///
    /// Panics if any factor is zero.
    pub fn new(p_h: usize, p_w: usize, p_of: usize) -> Self {
        assert!(
            p_h > 0 && p_w > 0 && p_of > 0,
            "unrolling factors must be non-zero"
        );
        Self {
            p_h: p_h as u64,
            p_w: p_w as u64,
            p_of: p_of as u64,
        }
    }

    /// `(P_h, P_w, P_of)`.
    pub fn factors(&self) -> (usize, usize, usize) {
        (self.p_h as usize, self.p_w as usize, self.p_of as usize)
    }
}

impl Dataflow for RowStationary {
    fn kind(&self) -> ArchKind {
        // Reported under the OST family for display purposes; RS is an
        // extension, not one of the paper's five.
        ArchKind::Ost
    }

    fn n_pes(&self) -> u64 {
        self.p_h * self.p_w * self.p_of
    }

    fn schedule(&self, phase: &ConvShape) -> PhaseStats {
        let geom = *phase.geom();
        let (kh, kw) = (geom.kh() as u64, geom.kw() as u64);
        let stride = geom.stride() as u64;
        let (sh, sw) = phase.small_hw();
        let (lh, lw) = phase.large_hw();
        let (zh, zw) = geom.zero_inserted(sh, sw);
        let (small, large) = (phase.small() as u64, phase.large() as u64);
        let pairs = small * large;
        let row_passes = ceil_div(kh, self.p_h);

        let (cycles, real_inputs) = match phase.kind() {
            ConvKind::S => {
                let groups = ceil_div(small, self.p_of);
                let c =
                    sh as u64 * ceil_div(sw as u64, self.p_w) * kw * row_passes * large * groups;
                (c, large * (lh * lw) as u64 * groups)
            }
            // Zero-inserted input: gated, not skipped — the full inserted
            // grid is walked.
            ConvKind::T => {
                let groups = ceil_div(large, self.p_of);
                let c =
                    lh as u64 * ceil_div(lw as u64, self.p_w) * kw * row_passes * small * groups;
                (c, small * (sh * sw) as u64 * groups)
            }
            // W-CONV: gradient rows stationary; the dilated error (D̄w) or
            // zero-inserted data (Ḡw) is walked in full (gated, not
            // skipped).
            ConvKind::WGradS => {
                let (dh, dw) = (stride * (sh as u64 - 1) + 1, stride * (sw as u64 - 1) + 1);
                let groups = ceil_div(pairs, self.p_of);
                let cycles = ceil_div(kh, self.p_h) * ceil_div(kw, self.p_w) * dh * dw * groups;
                (cycles, large * (lh * lw) as u64 * groups)
            }
            ConvKind::WGradT => {
                let groups = ceil_div(pairs, self.p_of);
                let cycles =
                    ceil_div(kh, self.p_h) * ceil_div(kw, self.p_w) * (zh * zw) as u64 * groups;
                (cycles, small * (sh * sw) as u64 * groups)
            }
        };

        PhaseStats {
            cycles,
            effectual_macs: phase.effectual_macs(),
            n_pes: self.n_pes(),
            access: AccessCounts {
                // One kernel row set per pass, stationary afterwards.
                weight_reads: pairs * kh * kw,
                // Diagonal reuse: each *real* input value enters once per
                // group (gating suppresses fetches of inserted zeros).
                input_reads: real_inputs,
                // Vertical psum accumulation: one spill per row pass.
                output_reads: phase.output_count() * (row_passes - 1),
                output_writes: phase.output_count() * row_passes,
            },
            dram: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zfost::Zfost;
    use crate::zfwst::Zfwst;
    use zfgan_tensor::ConvGeom;

    fn dcgan_l1(kind: ConvKind) -> ConvShape {
        let geom = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).unwrap();
        ConvShape::new(kind, geom, 64, 3, 64, 64)
    }

    fn rs() -> RowStationary {
        // 4 kernel rows × 4 columns × 75 channels = 1200 PEs.
        RowStationary::new(4, 4, 75)
    }

    #[test]
    fn s_conv_cycles_follow_closed_form() {
        let s = rs().schedule(&dcgan_l1(ConvKind::S));
        // 32 rows · ⌈32/4⌉ cols · 4 kx · 1 row-pass · 3 maps · 1 group.
        assert_eq!(s.cycles, 32 * 8 * 4 * 3);
        assert!(s.utilization() > 0.8);
    }

    #[test]
    fn gates_but_cannot_skip_inserted_zeros() {
        // The related-work claim: RS walks the zero-inserted grid, so
        // ZFOST's cycle count is ~4× better on T-CONV…
        let t = dcgan_l1(ConvKind::T);
        let rs_t = rs().schedule(&t);
        let zf_t = Zfost::new(4, 4, 75).schedule(&t);
        assert!(rs_t.cycles as f64 / zf_t.cycles as f64 > 3.0);
        // …and ZFWST is far better on Ḡw.
        let gw = dcgan_l1(ConvKind::WGradT);
        let rs_gw = RowStationary::new(4, 4, 30).schedule(&gw);
        let zf_gw = Zfwst::new(4, 4, 30).schedule(&gw);
        assert!(rs_gw.cycles as f64 / zf_gw.cycles as f64 > 3.0);
    }

    #[test]
    fn gating_keeps_input_reads_low() {
        // Unlike OST-on-S, RS keeps its diagonal reuse: input reads stay
        // near one per real input value.
        let s = rs().schedule(&dcgan_l1(ConvKind::S));
        assert_eq!(s.access.input_reads, 3 * 64 * 64);
        let t = rs().schedule(&dcgan_l1(ConvKind::T));
        assert_eq!(t.access.input_reads, 64 * 32 * 32);
    }

    #[test]
    fn psums_spill_once_per_extra_row_pass() {
        // A 5×5 kernel on a 4-row array needs 2 passes ⇒ 1 psum round trip.
        let geom = ConvGeom::down(28, 28, 5, 5, 2, 14, 14).unwrap();
        let phase = ConvShape::new(ConvKind::S, geom, 8, 1, 28, 28);
        let s = RowStationary::new(4, 4, 8).schedule(&phase);
        assert_eq!(s.access.output_writes, 2 * phase.output_count());
        assert_eq!(s.access.output_reads, phase.output_count());
    }
}
