//! NLR — No-Local-Reuse (paper Fig. 5a), improved with zero-skipping.
//!
//! NLR unrolls Loop-1: `P_if` multipliers per output channel feed an adder
//! tree, `P_of` channels run in parallel, and one input neuron is spatially
//! shared by all `P_of` channels. No operand is kept in a PE register, so
//! every multiply re-reads its weight from the on-chip buffer.
//!
//! Per the paper's evaluation methodology ("we optimize the dataflow of NLR
//! so that it can skip over zeros in its input data and kernel weights"),
//! this model charges NLR only for *effectual* multiplications on `S-CONV`
//! and `T-CONV`:
//!
//! ```text
//! cycles(S/T) = ⌈N_of/P_of⌉ · ⌈N_if/P_if⌉ · E_pair
//! ```
//!
//! where `E_pair` is the effectual multiplications per (input map, output
//! map) pair. For the four-dimensional `W-CONV`, each output neuron sums
//! contributions of a *single* input map, so the adder tree is useless and
//! only `P_of` of the `P_if × P_of` multipliers do work (paper §III-C1):
//!
//! ```text
//! cycles(W) = ⌈E_total / P_of⌉
//! ```

use zfgan_sim::{AccessCounts, ConvKind, ConvShape, PhaseStats};

use crate::arch::{ceil_div, ArchKind, Dataflow};

/// An NLR configuration (`P_if × P_of` multipliers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Nlr {
    p_if: u64,
    p_of: u64,
}

impl Nlr {
    /// Creates an NLR array with `p_if` input-map lanes and `p_of` output
    /// channels.
    ///
    /// # Panics
    ///
    /// Panics if either factor is zero.
    pub fn new(p_if: usize, p_of: usize) -> Self {
        assert!(p_if > 0 && p_of > 0, "unrolling factors must be non-zero");
        Self {
            p_if: p_if as u64,
            p_of: p_of as u64,
        }
    }

    /// The `P_if` unrolling factor.
    pub fn p_if(&self) -> usize {
        self.p_if as usize
    }

    /// The `P_of` unrolling factor.
    pub fn p_of(&self) -> usize {
        self.p_of as usize
    }
}

impl Dataflow for Nlr {
    fn kind(&self) -> ArchKind {
        ArchKind::Nlr
    }

    fn n_pes(&self) -> u64 {
        self.p_if * self.p_of
    }

    fn schedule(&self, phase: &ConvShape) -> PhaseStats {
        let e_total = phase.effectual_macs();
        let e_pair = phase.mul_counts().effectual;
        let (cycles, out_traffic) = match phase.kind() {
            ConvKind::S | ConvKind::T => {
                let (n_if, n_of) = match phase.kind() {
                    ConvKind::S => (phase.large() as u64, phase.small() as u64),
                    _ => (phase.small() as u64, phase.large() as u64),
                };
                let cycles = ceil_div(n_of, self.p_of) * ceil_div(n_if, self.p_if) * e_pair;
                // The adder tree folds P_if lanes; a partial sum is written
                // (and later re-read) once per input-map chunk.
                let chunks = ceil_div(n_if, self.p_if);
                let psum = phase.output_count() * chunks;
                (cycles, (psum.saturating_sub(phase.output_count()), psum))
            }
            ConvKind::WGradS | ConvKind::WGradT => {
                // Adder tree idle: P_of multipliers stream one MAC each per
                // cycle, accumulating straight into the ∇W buffer.
                (ceil_div(e_total, self.p_of), (e_total, e_total))
            }
        };
        let stats = PhaseStats {
            cycles,
            effectual_macs: e_total,
            n_pes: self.n_pes(),
            access: AccessCounts {
                // No local reuse: every effectual multiply re-fetches its
                // weight operand.
                weight_reads: e_total,
                // One input neuron is spatially shared across P_of channels.
                input_reads: ceil_div(e_total, self.p_of),
                output_reads: out_traffic.0,
                output_writes: out_traffic.1,
            },
            dram: Default::default(),
        };
        crate::arch::record_schedule(self.kind(), phase, &stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zfgan_tensor::ConvGeom;

    fn dcgan_l1(kind: ConvKind) -> ConvShape {
        let geom = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).unwrap();
        ConvShape::new(kind, geom, 64, 3, 64, 64)
    }

    #[test]
    fn s_conv_cycles_follow_closed_form() {
        let nlr = Nlr::new(16, 75);
        let s = nlr.schedule(&dcgan_l1(ConvKind::S));
        // ⌈64/75⌉ · ⌈3/16⌉ · 16·1024 = 16384.
        assert_eq!(s.cycles, 16384);
        assert_eq!(s.n_pes, 1200);
        assert_eq!(s.effectual_macs, 64 * 3 * 16 * 1024);
    }

    #[test]
    fn w_conv_idles_the_adder_tree() {
        let nlr = Nlr::new(16, 30);
        let s = nlr.schedule(&dcgan_l1(ConvKind::WGradS));
        // Only P_of = 30 multipliers active: utilization ≈ 1/16.
        assert!(
            (s.utilization() - 1.0 / 16.0).abs() < 1e-3,
            "util {}",
            s.utilization()
        );
    }

    #[test]
    fn interior_t_conv_matches_zero_free_ideal() {
        // When N_if and N_of divide the unrolling evenly, improved NLR
        // reaches full multiplier utilization on T-CONV (the paper's Fig. 15
        // shows NLR tying ZFOST on Ḡ).
        let geom = ConvGeom::down(8, 8, 4, 4, 2, 4, 4).unwrap();
        let phase = ConvShape::new(ConvKind::T, geom, 64, 32, 8, 8);
        let nlr = Nlr::new(16, 32);
        let s = nlr.schedule(&phase);
        assert!(s.utilization() > 0.95, "util {}", s.utilization());
    }

    #[test]
    fn weight_reads_equal_effectual_macs() {
        let nlr = Nlr::new(8, 8);
        let s = nlr.schedule(&dcgan_l1(ConvKind::S));
        assert_eq!(s.access.weight_reads, s.effectual_macs);
        assert_eq!(s.access.input_reads, s.effectual_macs / 8);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_unroll_rejected() {
        let _ = Nlr::new(0, 8);
    }
}
