//! Property-based invariants every dataflow schedule must satisfy, over
//! randomly drawn phases and unrolling configurations.

use proptest::prelude::*;
use zfgan_dataflow::{Dataflow, Nlr, Ost, RowStationary, Wst, Zfost, Zfwst};
use zfgan_sim::{ConvKind, ConvShape};
use zfgan_tensor::ConvGeom;

fn arb_phase() -> impl Strategy<Value = ConvShape> {
    (
        1usize..=2,
        2usize..=5,
        2usize..=6,
        1usize..=8,
        1usize..=8,
        0usize..4,
    )
        .prop_map(|(stride_sel, k, out, small, large, kind_sel)| {
            let stride = stride_sel + 1; // 2 or 3
                                         // A kernel smaller than the stride cannot cover the input with
                                         // padding below the kernel size; clamp to keep geometry valid.
            let k = k.max(stride);
            let in_hw = stride * out;
            let geom = ConvGeom::down(in_hw, in_hw, k, k, stride, out, out)
                .expect("constructed to be valid");
            let kind = match kind_sel {
                0 => ConvKind::S,
                1 => ConvKind::T,
                2 => ConvKind::WGradS,
                _ => ConvKind::WGradT,
            };
            ConvShape::new(kind, geom, small, large, in_hw, in_hw)
        })
}

fn arb_factors() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=5, 1usize..=5, 1usize..=16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// No schedule is super-efficient: utilization ≤ 1 everywhere, i.e.
    /// cycles × nPEs ≥ effectual MACs.
    #[test]
    fn no_architecture_exceeds_unit_utilization(
        phase in arb_phase(),
        (py, px, pof) in arb_factors(),
    ) {
        let archs: Vec<Box<dyn Dataflow>> = vec![
            Box::new(Nlr::new(py * px, pof)),
            Box::new(Wst::new(py, px, pof)),
            Box::new(Ost::new(py, px, pof)),
            Box::new(Zfost::new(py, px, pof)),
            Box::new(Zfwst::new(py, px, pof)),
            Box::new(RowStationary::new(py, px, pof)),
        ];
        for arch in archs {
            let s = arch.schedule(&phase);
            prop_assert!(s.cycles > 0, "{:?} produced zero cycles", arch.kind());
            prop_assert!(
                s.utilization() <= 1.0 + 1e-9,
                "{:?} on {:?}: util {} > 1",
                arch.kind(),
                phase.kind(),
                s.utilization()
            );
        }
    }

    /// The zero-free designs never lose to their direct baselines at equal
    /// configuration.
    #[test]
    fn zero_free_dominates_pointwise(
        phase in arb_phase(),
        (py, px, pof) in arb_factors(),
    ) {
        let ost = Ost::new(py, px, pof).schedule(&phase);
        let zfost = Zfost::new(py, px, pof).schedule(&phase);
        prop_assert!(
            zfost.cycles <= ost.cycles,
            "ZFOST {} > OST {} on {:?}",
            zfost.cycles,
            ost.cycles,
            phase.kind()
        );
        // ZFWST folds its whole grid into ONE ∇W neuron per cycle, so it
        // only dominates dense WST when each pass has a full fold of work
        // (sh·sw ≥ grid). Table V always sizes grids that way; a grid
        // larger than the dot-product length leaves the adder tree idle
        // while WST keeps every PE on a distinct neuron.
        let (sh, sw) = phase.small_hw();
        if phase.kind().is_weight_grad() && sh * sw >= py * px {
            let wst = Wst::new(py, px, pof).schedule(&phase);
            let zfwst = Zfwst::new(py, px, pof).schedule(&phase);
            prop_assert!(
                zfwst.cycles <= wst.cycles,
                "ZFWST {} > WST {} on {:?}",
                zfwst.cycles,
                wst.cycles,
                phase.kind()
            );
        }
    }

    /// Effectual MACs are an architecture-independent phase property.
    #[test]
    fn effectual_macs_do_not_depend_on_the_architecture(
        phase in arb_phase(),
        (py, px, pof) in arb_factors(),
    ) {
        let a = Ost::new(py, px, pof).schedule(&phase).effectual_macs;
        let b = Zfwst::new(py, px, pof).schedule(&phase).effectual_macs;
        let c = Nlr::new(py * px, pof).schedule(&phase).effectual_macs;
        prop_assert_eq!(a, phase.effectual_macs());
        prop_assert_eq!(b, a);
        prop_assert_eq!(c, a);
    }

    /// More channels never slow a schedule down (monotonicity in P_of).
    #[test]
    fn channel_unrolling_is_monotone(
        phase in arb_phase(),
        (py, px, pof) in arb_factors(),
    ) {
        type Maker = fn(usize, usize, usize) -> Box<dyn Dataflow>;
        let makers: [Maker; 3] = [
            |y, x, c| Box::new(Ost::new(y, x, c)),
            |y, x, c| Box::new(Zfost::new(y, x, c)),
            |y, x, c| Box::new(Zfwst::new(y, x, c)),
        ];
        for make in makers {
            let small = make(py, px, pof).schedule(&phase).cycles;
            let big = make(py, px, pof * 2).schedule(&phase).cycles;
            prop_assert!(big <= small, "doubling P_of slowed {:?}", phase.kind());
        }
    }

    /// Access totals are positive and outputs are written at least once.
    #[test]
    fn schedules_account_for_their_outputs(
        phase in arb_phase(),
        (py, px, pof) in arb_factors(),
    ) {
        for arch in [
            Box::new(Ost::new(py, px, pof)) as Box<dyn Dataflow>,
            Box::new(Zfost::new(py, px, pof)),
            Box::new(Zfwst::new(py, px, pof)),
        ] {
            let s = arch.schedule(&phase);
            prop_assert!(s.access.output_writes >= phase.output_count());
            prop_assert!(s.access.total() > 0);
        }
    }
}
