//! Corruption-detection contract: **no single bit flip and no truncation**
//! of a stored envelope can ever decode successfully — a load either
//! returns exactly the published bytes or a typed error. This is the
//! property the durability layer's fallback ladder is built on.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use zfgan_store::{decode_envelope, encode_envelope, Store, StoreConfig};

/// Deterministic filler (splitmix64) so payload bytes vary with the seed
/// without depending on the rand shim.
fn payload_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as u8
        })
        .collect()
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_store(tag: &str) -> Store {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let root =
        std::env::temp_dir().join(format!("zfgan-store-prop-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    match Store::open(root, StoreConfig::default()) {
        Ok(s) => s,
        Err(e) => panic!("open store: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any single bit anywhere in the envelope (header or
    /// payload) is detected by the CRC/shape checks.
    #[test]
    fn any_single_bit_flip_is_detected(
        (seed, len, flip) in (any::<u64>(), 0usize..160, any::<u64>())
    ) {
        let payload = payload_bytes(seed, len);
        let config_hash = seed ^ 0x5bd1_e995;
        let mut bytes = encode_envelope(config_hash, &payload);
        let bit_count = bytes.len() * 8;
        let target = (flip % bit_count as u64) as usize;
        bytes[target / 8] ^= 1 << (target % 8);
        prop_assert!(
            decode_envelope(&bytes).is_err(),
            "bit {} of {} decoded despite the flip",
            target,
            bit_count
        );
    }

    /// Any strict truncation of the envelope is detected — including cuts
    /// inside the header and cuts that leave a valid header but a short
    /// payload.
    #[test]
    fn any_truncation_is_detected(
        (seed, len, cut) in (any::<u64>(), 0usize..160, any::<u64>())
    ) {
        let payload = payload_bytes(seed, len);
        let bytes = encode_envelope(seed, &payload);
        let keep = (cut % bytes.len() as u64) as usize;
        prop_assert!(
            decode_envelope(&bytes[..keep]).is_err(),
            "truncation to {} of {} bytes decoded",
            keep,
            bytes.len()
        );
    }

    /// The intact envelope round-trips the payload and config hash
    /// exactly.
    #[test]
    fn intact_envelope_round_trips((seed, len) in (any::<u64>(), 0usize..160)) {
        let payload = payload_bytes(seed, len);
        let bytes = encode_envelope(seed, &payload);
        let env = match decode_envelope(&bytes) {
            Ok(e) => e,
            Err(e) => return Err(TestCaseError::fail(format!("decode failed: {e}"))),
        };
        prop_assert_eq!(env.config_hash, seed);
        prop_assert_eq!(env.payload, payload);
    }

    /// End to end through the store: corrupting the newest generation on
    /// disk (bit flip at an arbitrary position) never yields its bytes —
    /// the load falls back to the older intact generation.
    #[test]
    fn store_bit_flip_falls_back_never_lies(
        (seed, len, flip) in (any::<u64>(), 1usize..120, any::<u64>())
    ) {
        let mut store = temp_store("flip");
        let old = payload_bytes(seed, len);
        let new = payload_bytes(seed ^ 1, len);
        let g1 = store.publish("k", 7, &old).map_err(|e| e.to_string());
        let g2 = store.publish("k", 7, &new).map_err(|e| e.to_string());
        prop_assert_eq!(g1, Ok(1));
        prop_assert_eq!(g2, Ok(2));

        let path = store.generation_path("k", 2);
        let mut bytes = std::fs::read(&path)
            .map_err(|e| TestCaseError::fail(format!("read: {e}")))?;
        let bit_count = bytes.len() * 8;
        let target = (flip % bit_count as u64) as usize;
        bytes[target / 8] ^= 1 << (target % 8);
        std::fs::write(&path, &bytes)
            .map_err(|e| TestCaseError::fail(format!("write: {e}")))?;

        match store.load_latest("k") {
            Ok(Some(loaded)) => {
                prop_assert_eq!(loaded.generation, 1);
                prop_assert_eq!(loaded.payload, old);
                prop_assert_eq!(loaded.skipped.len(), 1);
            }
            other => {
                return Err(TestCaseError::fail(format!(
                    "expected fallback to generation 1, got {other:?}"
                )))
            }
        }
    }
}
