//! Crash-consistent on-disk artifact store.
//!
//! The store holds *generations* of a keyed artifact (a checkpoint, a sweep
//! cell, …) as individual files under `<root>/<key>/gen-<n>.zfc`. Every file
//! is a self-validating binary envelope (magic, format version, canonical
//! config hash, payload length, CRC32 of the payload, CRC32 of the header
//! itself), so a reader can always tell a complete artifact from a torn,
//! truncated or bit-rotted one — there is no state in which a load silently
//! returns wrong bytes.
//!
//! Durability protocol (per publish):
//!
//! 1. write the full envelope to `<key>/.tmp-<n>` and `fsync` the file;
//! 2. atomically `rename` the temp file onto `gen-<n>.zfc`;
//! 3. `fsync` the key directory so the rename itself is durable;
//! 4. prune generations older than the retention window.
//!
//! A crash before (2) leaves only a temp file, which readers never look at
//! and the next publish sweeps away. A crash after (2) leaves a complete
//! generation. The envelope CRCs cover the remaining failure mode — a torn
//! rename target on a non-atomic filesystem — by demoting it to "corrupt
//! generation", which loads skip, falling back to the newest valid prior
//! generation.
//!
//! Transient I/O errors (`Interrupted`, `WouldBlock`, `TimedOut`) are
//! retried a bounded number of times with deterministic exponential
//! backoff. Everything observable is counted through `zfgan-telemetry`
//! wall-clock counters (`store_*_total`), which keeps the deterministic
//! export section byte-stable across crash/resume and cache hit/miss.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Envelope magic: "ZFCK" (zero-free checkpoint).
pub const MAGIC: [u8; 4] = *b"ZFCK";
/// Current envelope format version.
pub const FORMAT_VERSION: u32 = 1;
/// Fixed envelope header length in bytes.
pub const HEADER_LEN: usize = 32;

const TMP_PREFIX: &str = ".tmp-";
const GEN_PREFIX: &str = "gen-";
const GEN_SUFFIX: &str = ".zfc";

// ---------------------------------------------------------------------------
// Hashing primitives (dependency-free)
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table,
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit hash of `bytes` — the workspace's canonical config hash.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64-bit hash with a caller-supplied salt folded in first (used
/// where two independent hashes of the same bytes are wanted).
#[must_use]
pub fn fnv64_salted(salt: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a stored envelope failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeError {
    /// The file is shorter than expected (header or payload cut off).
    Truncated {
        /// Bytes required for a complete envelope (or header).
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The magic bytes do not match [`MAGIC`].
    BadMagic,
    /// The header CRC does not match — the header itself is corrupt.
    HeaderCorrupt,
    /// The format version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The file is longer than `HEADER_LEN + payload_len`.
    TrailingGarbage {
        /// Bytes beyond the declared envelope end.
        extra: usize,
    },
    /// The payload CRC does not match the header's payload CRC.
    PayloadCorrupt,
    /// The stored config hash does not match the caller's expectation.
    ConfigHashMismatch {
        /// Hash the caller expected.
        expected: u64,
        /// Hash stored in the envelope.
        got: u64,
    },
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvelopeError::Truncated { expected, got } => {
                write!(f, "truncated envelope: need {expected} bytes, have {got}")
            }
            EnvelopeError::BadMagic => write!(f, "bad magic (not a zfgan-store envelope)"),
            EnvelopeError::HeaderCorrupt => write!(f, "header CRC mismatch"),
            EnvelopeError::UnsupportedVersion(v) => {
                write!(f, "unsupported format version {v} (max {FORMAT_VERSION})")
            }
            EnvelopeError::TrailingGarbage { extra } => {
                write!(f, "{extra} trailing bytes beyond declared payload")
            }
            EnvelopeError::PayloadCorrupt => write!(f, "payload CRC mismatch"),
            EnvelopeError::ConfigHashMismatch { expected, got } => {
                write!(
                    f,
                    "config hash {got:#018x} does not match expected {expected:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for EnvelopeError {}

/// A store operation failure.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed (after exhausting any retries).
    Io {
        /// What the store was doing ("create-dir", "write", "rename", …).
        op: &'static str,
        /// Path the operation targeted.
        path: PathBuf,
        /// Underlying error.
        source: io::Error,
    },
    /// A generation file exists but its envelope failed validation.
    Corrupt {
        /// Generation number of the offending file.
        generation: u64,
        /// Validation failure.
        source: EnvelopeError,
    },
    /// A generation decoded cleanly but the caller's semantic validator
    /// rejected its payload.
    Rejected {
        /// Generation number of the offending file.
        generation: u64,
        /// Validator's one-line reason.
        reason: String,
    },
    /// Generations exist for the key but none survived validation.
    NoValidGeneration {
        /// The key that was loaded.
        key: String,
        /// Every generation that was tried, newest first, with its failure.
        skipped: Vec<(u64, String)>,
    },
    /// The key contains characters outside `[A-Za-z0-9._-]`.
    InvalidKey(String),
    /// The store configuration is invalid (e.g. `keep == 0`).
    InvalidConfig(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "{op} failed for {}: {source}", path.display())
            }
            StoreError::Corrupt { generation, source } => {
                write!(f, "generation {generation} corrupt: {source}")
            }
            StoreError::Rejected { generation, reason } => {
                write!(f, "generation {generation} rejected: {reason}")
            }
            StoreError::NoValidGeneration { key, skipped } => {
                write!(
                    f,
                    "no valid generation for key '{key}' ({} tried)",
                    skipped.len()
                )
            }
            StoreError::InvalidKey(k) => {
                write!(f, "invalid store key '{k}' (allowed: [A-Za-z0-9._-])")
            }
            StoreError::InvalidConfig(msg) => write!(f, "invalid store config: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt { source, .. } => Some(source),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Envelope encode / decode
// ---------------------------------------------------------------------------

/// Builds a complete envelope (header + payload) around `payload`.
///
/// Header layout (little-endian):
///
/// | bytes  | field                         |
/// |--------|-------------------------------|
/// | 0..4   | magic `"ZFCK"`                |
/// | 4..8   | format version (u32)          |
/// | 8..16  | canonical config hash (u64)   |
/// | 16..24 | payload length (u64)          |
/// | 24..28 | payload CRC32 (u32)           |
/// | 28..32 | header CRC32 over bytes 0..28 |
#[must_use]
pub fn encode_envelope(config_hash: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&config_hash.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    let header_crc = crc32(&out[..28]);
    out.extend_from_slice(&header_crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// A validated envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Canonical config hash stored by the writer.
    pub config_hash: u64,
    /// The validated payload bytes.
    pub payload: Vec<u8>,
}

/// Validates and decodes an envelope produced by [`encode_envelope`].
///
/// # Errors
///
/// Returns an [`EnvelopeError`] describing exactly which invariant failed
/// (truncation, bad magic, header corruption, version skew, trailing bytes,
/// payload corruption). Any single bit flip or truncation of the stored
/// bytes is detected.
pub fn decode_envelope(bytes: &[u8]) -> Result<Envelope, EnvelopeError> {
    if bytes.len() < HEADER_LEN {
        return Err(EnvelopeError::Truncated {
            expected: HEADER_LEN,
            got: bytes.len(),
        });
    }
    let header_crc = u32::from_le_bytes([bytes[28], bytes[29], bytes[30], bytes[31]]);
    if crc32(&bytes[..28]) != header_crc {
        // A corrupted magic/version/length/CRC field all land here; check
        // magic first so a "not our file at all" case reads better.
        if bytes[..4] != MAGIC {
            return Err(EnvelopeError::BadMagic);
        }
        return Err(EnvelopeError::HeaderCorrupt);
    }
    if bytes[..4] != MAGIC {
        return Err(EnvelopeError::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != FORMAT_VERSION {
        return Err(EnvelopeError::UnsupportedVersion(version));
    }
    let u64le = |off: usize| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[off..off + 8]);
        u64::from_le_bytes(b)
    };
    let config_hash = u64le(8);
    let payload_len = u64le(16) as usize;
    let total = HEADER_LEN
        .checked_add(payload_len)
        .ok_or(EnvelopeError::HeaderCorrupt)?;
    if bytes.len() < total {
        return Err(EnvelopeError::Truncated {
            expected: total,
            got: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(EnvelopeError::TrailingGarbage {
            extra: bytes.len() - total,
        });
    }
    let payload = &bytes[HEADER_LEN..total];
    let payload_crc = u32::from_le_bytes([bytes[24], bytes[25], bytes[26], bytes[27]]);
    if crc32(payload) != payload_crc {
        return Err(EnvelopeError::PayloadCorrupt);
    }
    Ok(Envelope {
        config_hash,
        payload: payload.to_vec(),
    })
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

/// Store tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Generations retained per key (older ones are pruned). Must be >= 1.
    pub keep: usize,
    /// Retries per I/O operation on transient errors.
    pub max_retries: u32,
    /// Base backoff; attempt `n` sleeps `base << n` (deterministic ladder).
    pub backoff_base: Duration,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            keep: 4,
            max_retries: 3,
            backoff_base: Duration::from_millis(1),
        }
    }
}

/// Crash injected into the next publish, for crash-consistency testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteCrash {
    /// Write only the first `n` envelope bytes to the temp file, fsync
    /// them so the torn prefix is really on disk, then abort the process
    /// before the rename — simulating power loss mid-write.
    TruncateAt(usize),
}

/// Deterministic I/O fault hook: given the operation name, return
/// `Some(kind)` to make the next attempt of that operation fail with an
/// injected error of that kind (used to exercise the retry ladder).
pub type IoFaultHook = Box<dyn FnMut(&'static str) -> Option<io::ErrorKind> + Send>;

/// Result of a successful [`Store::load_latest`].
#[derive(Debug, Clone)]
pub struct Loaded {
    /// Generation the payload came from.
    pub generation: u64,
    /// Config hash stored alongside the payload.
    pub config_hash: u64,
    /// The validated payload.
    pub payload: Vec<u8>,
    /// Newer generations that were skipped as corrupt/rejected, newest
    /// first, with one-line reasons.
    pub skipped: Vec<(u64, String)>,
}

/// A crash-consistent, generation-retained artifact store rooted at a
/// directory.
pub struct Store {
    root: PathBuf,
    cfg: StoreConfig,
    crash: Option<WriteCrash>,
    io_fault: Option<IoFaultHook>,
    /// Sleep function — swapped out in tests so backoff is instant.
    sleep: fn(Duration),
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("root", &self.root)
            .field("cfg", &self.cfg)
            .field("crash", &self.crash)
            .field("io_fault", &self.io_fault.is_some())
            .finish()
    }
}

fn valid_key(key: &str) -> bool {
    !key.is_empty()
        && key.len() <= 128
        && key
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
        && !key.starts_with('.')
}

fn transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidConfig`] if `cfg.keep == 0`, or an I/O
    /// error if the root directory cannot be created.
    pub fn open(root: impl Into<PathBuf>, cfg: StoreConfig) -> Result<Self, StoreError> {
        if cfg.keep == 0 {
            return Err(StoreError::InvalidConfig("keep must be >= 1".into()));
        }
        let root = root.into();
        fs::create_dir_all(&root).map_err(|source| StoreError::Io {
            op: "create-dir",
            path: root.clone(),
            source,
        })?;
        Ok(Store {
            root,
            cfg,
            crash: None,
            io_fault: None,
            sleep: std::thread::sleep,
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Arms a crash to be injected into the next [`Store::publish`].
    pub fn set_crash_on_next_publish(&mut self, crash: Option<WriteCrash>) {
        self.crash = crash;
    }

    /// Installs a deterministic I/O fault hook (see [`IoFaultHook`]).
    pub fn set_io_fault(&mut self, hook: Option<IoFaultHook>) {
        self.io_fault = hook;
    }

    /// Replaces the backoff sleep function (tests use a no-op).
    pub fn set_sleep(&mut self, sleep: fn(Duration)) {
        self.sleep = sleep;
    }

    fn key_dir(&self, key: &str) -> PathBuf {
        self.root.join(key)
    }

    /// Path of generation `generation` under `key` (exists only if
    /// published and not yet pruned).
    #[must_use]
    pub fn generation_path(&self, key: &str, generation: u64) -> PathBuf {
        self.key_dir(key)
            .join(format!("{GEN_PREFIX}{generation:08}{GEN_SUFFIX}"))
    }

    /// Runs `f` with bounded retry on transient I/O errors, deterministic
    /// exponential backoff between attempts.
    fn with_retry<T>(
        &mut self,
        op: &'static str,
        path: &Path,
        mut f: impl FnMut() -> io::Result<T>,
    ) -> Result<T, StoreError> {
        let mut attempt = 0u32;
        loop {
            let injected = self
                .io_fault
                .as_mut()
                .and_then(|hook| hook(op))
                .map(|kind| io::Error::new(kind, format!("injected {op} fault")));
            let result = match injected {
                Some(err) => Err(err),
                None => f(),
            };
            match result {
                Ok(v) => return Ok(v),
                Err(source) => {
                    if attempt < self.cfg.max_retries && transient(source.kind()) {
                        zfgan_telemetry::count_wall("store_retries_total", &[("op", op)], 1);
                        (self.sleep)(self.cfg.backoff_base.saturating_mul(1 << attempt.min(16)));
                        attempt += 1;
                        continue;
                    }
                    return Err(StoreError::Io {
                        op,
                        path: path.to_path_buf(),
                        source,
                    });
                }
            }
        }
    }

    /// Generation numbers present for `key`, ascending. Missing key
    /// directory means no generations.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the key is invalid or the directory cannot
    /// be read.
    pub fn generations(&mut self, key: &str) -> Result<Vec<u64>, StoreError> {
        if !valid_key(key) {
            return Err(StoreError::InvalidKey(key.to_string()));
        }
        let dir = self.key_dir(key);
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(source) => {
                return Err(StoreError::Io {
                    op: "read-dir",
                    path: dir,
                    source,
                })
            }
        };
        let mut gens: Vec<u64> = entries
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_str()?;
                let stem = name.strip_prefix(GEN_PREFIX)?.strip_suffix(GEN_SUFFIX)?;
                stem.parse::<u64>().ok()
            })
            .collect();
        gens.sort_unstable();
        gens.dedup();
        Ok(gens)
    }

    /// Publishes `payload` as the next generation of `key`, returning the
    /// new generation number. Atomic: a crash at any point leaves either
    /// the previous latest generation or the new one, never a half-visible
    /// artifact.
    ///
    /// # Errors
    ///
    /// Returns an error on invalid keys or when an I/O operation fails
    /// after exhausting retries.
    pub fn publish(
        &mut self,
        key: &str,
        config_hash: u64,
        payload: &[u8],
    ) -> Result<u64, StoreError> {
        if !valid_key(key) {
            return Err(StoreError::InvalidKey(key.to_string()));
        }
        let dir = self.key_dir(key);
        self.with_retry("create-dir", &dir.clone(), || fs::create_dir_all(&dir))?;
        self.sweep_stale_temps(&dir);

        let generation = self.generations(key)?.last().copied().map_or(1, |g| g + 1);
        let tmp = dir.join(format!("{TMP_PREFIX}{generation:08}"));
        let dest = self.generation_path(key, generation);
        let bytes = encode_envelope(config_hash, payload);

        let crash = self.crash.take();
        self.with_retry("write", &tmp.clone(), || {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            match crash {
                Some(WriteCrash::TruncateAt(n)) => {
                    // Torn write: flush a prefix to real disk, then die
                    // before the rename. The truncated temp file is all a
                    // resumer will find of this generation.
                    f.write_all(&bytes[..n.min(bytes.len())])?;
                    f.sync_all()?;
                    zfgan_telemetry::count_wall("store_fsyncs_total", &[], 1);
                    std::process::abort();
                }
                None => {
                    f.write_all(&bytes)?;
                    f.sync_all()
                }
            }
        })?;
        zfgan_telemetry::count_wall("store_fsyncs_total", &[], 1);

        self.with_retry("rename", &dest.clone(), || fs::rename(&tmp, &dest))?;
        // Make the rename durable: fsync the containing directory.
        self.with_retry("fsync-dir", &dir.clone(), || {
            File::open(&dir).and_then(|d| d.sync_all())
        })?;
        zfgan_telemetry::count_wall("store_fsyncs_total", &[], 1);
        zfgan_telemetry::count_wall("store_publishes_total", &[], 1);

        self.prune(key)?;
        Ok(generation)
    }

    /// Removes generations beyond the retention window (best effort per
    /// file; the newest `keep` always survive).
    fn prune(&mut self, key: &str) -> Result<(), StoreError> {
        let gens = self.generations(key)?;
        if gens.len() <= self.cfg.keep {
            return Ok(());
        }
        let cutoff = gens.len() - self.cfg.keep;
        for &g in &gens[..cutoff] {
            let path = self.generation_path(key, g);
            if fs::remove_file(&path).is_ok() {
                zfgan_telemetry::count_wall("store_prunes_total", &[], 1);
            }
        }
        Ok(())
    }

    /// Deletes leftover temp files from crashed publishes.
    fn sweep_stale_temps(&self, dir: &Path) {
        if let Ok(entries) = fs::read_dir(dir) {
            for e in entries.filter_map(Result::ok) {
                if e.file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with(TMP_PREFIX))
                {
                    let _ = fs::remove_file(e.path());
                }
            }
        }
    }

    /// Loads the newest valid generation of `key`.
    ///
    /// Walks generations newest-first; corrupt envelopes are recorded in
    /// [`Loaded::skipped`] and the walk falls back to the next older
    /// generation. `Ok(None)` means the key has no generations at all.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoValidGeneration`] if generations exist but every
    /// one failed validation; I/O errors if a file cannot be read after
    /// retries.
    pub fn load_latest(&mut self, key: &str) -> Result<Option<Loaded>, StoreError> {
        self.load_latest_where(key, |_| Ok(()))
    }

    /// Like [`Store::load_latest`], but also requires the stored config
    /// hash to equal `expected_hash` (mismatches are skipped like corrupt
    /// generations — they belong to a different configuration).
    ///
    /// # Errors
    ///
    /// Same as [`Store::load_latest`].
    pub fn load_latest_for(
        &mut self,
        key: &str,
        expected_hash: u64,
    ) -> Result<Option<Loaded>, StoreError> {
        self.load_latest_where(key, |env| {
            if env.config_hash == expected_hash {
                Ok(())
            } else {
                Err(EnvelopeError::ConfigHashMismatch {
                    expected: expected_hash,
                    got: env.config_hash,
                }
                .to_string())
            }
        })
    }

    /// The general fallback-ladder load: walks generations newest-first,
    /// skipping any whose envelope fails validation **or** whose decoded
    /// payload `accept` rejects (semantic validation — e.g. a checkpoint
    /// that parses but fails shape checks falls back too).
    ///
    /// # Errors
    ///
    /// Same as [`Store::load_latest`].
    pub fn load_latest_where(
        &mut self,
        key: &str,
        mut accept: impl FnMut(&Envelope) -> Result<(), String>,
    ) -> Result<Option<Loaded>, StoreError> {
        let gens = self.generations(key)?;
        if gens.is_empty() {
            return Ok(None);
        }
        let mut skipped: Vec<(u64, String)> = Vec::new();
        for &generation in gens.iter().rev() {
            let path = self.generation_path(key, generation);
            let bytes = self.with_retry("read", &path.clone(), || {
                let mut f = File::open(&path)?;
                let mut buf = Vec::new();
                f.read_to_end(&mut buf)?;
                Ok(buf)
            })?;
            let reason = match decode_envelope(&bytes) {
                Ok(env) => match accept(&env) {
                    Ok(()) => {
                        zfgan_telemetry::count_wall("store_loads_total", &[], 1);
                        if !skipped.is_empty() {
                            zfgan_telemetry::count_wall(
                                "store_fallbacks_total",
                                &[],
                                skipped.len() as u64,
                            );
                        }
                        return Ok(Some(Loaded {
                            generation,
                            config_hash: env.config_hash,
                            payload: env.payload,
                            skipped,
                        }));
                    }
                    Err(reason) => reason,
                },
                Err(err) => err.to_string(),
            };
            zfgan_telemetry::count_wall("store_corrupt_detected_total", &[], 1);
            skipped.push((generation, reason));
        }
        zfgan_telemetry::count_wall("store_fallbacks_total", &[], skipped.len() as u64);
        Err(StoreError::NoValidGeneration {
            key: key.to_string(),
            skipped,
        })
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_root(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("zfgan-store-test-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open(tag: &str) -> Store {
        match Store::open(temp_root(tag), StoreConfig::default()) {
            Ok(mut s) => {
                s.set_sleep(|_| {});
                s
            }
            Err(e) => panic!("open store: {e}"),
        }
    }

    #[test]
    fn round_trip_single_generation() {
        let mut s = open("roundtrip");
        let payload = b"hello durable world".to_vec();
        let gen = s
            .publish("ckpt", 0xabcd, &payload)
            .map_err(|e| e.to_string());
        assert_eq!(gen, Ok(1));
        let loaded = s.load_latest("ckpt").ok().flatten();
        let loaded = match loaded {
            Some(l) => l,
            None => panic!("expected a generation"),
        };
        assert_eq!(loaded.generation, 1);
        assert_eq!(loaded.config_hash, 0xabcd);
        assert_eq!(loaded.payload, payload);
        assert!(loaded.skipped.is_empty());
    }

    #[test]
    fn generations_increment_and_prune() {
        let mut s = open("prune");
        for i in 0..7u8 {
            if let Err(e) = s.publish("k", 1, &[i]) {
                panic!("publish {i}: {e}");
            }
        }
        let gens = s.generations("k").unwrap_or_default();
        // keep = 4 (default): generations 4..=7 survive.
        assert_eq!(gens, vec![4, 5, 6, 7]);
        let l = s.load_latest("k").ok().flatten();
        assert_eq!(l.map(|l| l.payload), Some(vec![6u8]));
    }

    #[test]
    fn load_missing_key_is_none() {
        let mut s = open("missing");
        assert!(matches!(s.load_latest("nothing"), Ok(None)));
    }

    #[test]
    fn corrupt_latest_falls_back_to_prior() {
        let mut s = open("fallback");
        let _ = s.publish("k", 7, b"old-good");
        let _ = s.publish("k", 7, b"new-corrupt");
        let path = s.generation_path("k", 2);
        let mut bytes = fs::read(&path).unwrap_or_default();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).ok();
        let l = match s.load_latest("k") {
            Ok(Some(l)) => l,
            other => panic!("expected fallback load, got {other:?}"),
        };
        assert_eq!(l.generation, 1);
        assert_eq!(l.payload, b"old-good");
        assert_eq!(l.skipped.len(), 1);
        assert_eq!(l.skipped[0].0, 2);
    }

    #[test]
    fn all_corrupt_is_no_valid_generation() {
        let mut s = open("allcorrupt");
        let _ = s.publish("k", 7, b"a");
        let _ = s.publish("k", 7, b"b");
        for g in [1u64, 2] {
            let path = s.generation_path("k", g);
            fs::write(&path, b"garbage").ok();
        }
        match s.load_latest("k") {
            Err(StoreError::NoValidGeneration { skipped, .. }) => {
                assert_eq!(skipped.len(), 2)
            }
            other => panic!("expected NoValidGeneration, got {other:?}"),
        }
    }

    #[test]
    fn config_hash_mismatch_skips_generation() {
        let mut s = open("hashmatch");
        let _ = s.publish("k", 0x1111, b"old-config");
        let _ = s.publish("k", 0x2222, b"new-config");
        let l = s.load_latest_for("k", 0x1111).ok().flatten();
        let l = match l {
            Some(l) => l,
            None => panic!("expected fallback to matching hash"),
        };
        assert_eq!(l.generation, 1);
        assert_eq!(l.payload, b"old-config");
        assert_eq!(l.skipped.len(), 1);
    }

    #[test]
    fn semantic_reject_falls_back() {
        let mut s = open("semantic");
        let _ = s.publish("k", 1, b"valid-json");
        let _ = s.publish("k", 1, b"parses-but-bad");
        let l = s.load_latest_where("k", |env| {
            if env.payload == b"parses-but-bad" {
                Err("shape mismatch".into())
            } else {
                Ok(())
            }
        });
        let l = match l {
            Ok(Some(l)) => l,
            other => panic!("expected semantic fallback, got {other:?}"),
        };
        assert_eq!(l.payload, b"valid-json");
        assert_eq!(l.skipped[0].1, "shape mismatch");
    }

    #[test]
    fn transient_io_errors_are_retried() {
        let mut s = open("retry");
        let mut budget = 2u32;
        s.set_io_fault(Some(Box::new(move |op| {
            if op == "write" && budget > 0 {
                budget -= 1;
                Some(io::ErrorKind::Interrupted)
            } else {
                None
            }
        })));
        assert!(s.publish("k", 1, b"eventually").is_ok());
        let l = s.load_latest("k").ok().flatten();
        assert_eq!(l.map(|l| l.payload), Some(b"eventually".to_vec()));
    }

    #[test]
    fn persistent_io_error_exhausts_retries() {
        let mut s = open("exhaust");
        s.set_io_fault(Some(Box::new(|op| {
            (op == "write").then_some(io::ErrorKind::Interrupted)
        })));
        match s.publish("k", 1, b"never") {
            Err(StoreError::Io { op: "write", .. }) => {}
            other => panic!("expected write Io error, got {other:?}"),
        }
    }

    #[test]
    fn non_transient_error_fails_immediately() {
        let mut s = open("hard");
        let mut calls = 0u32;
        s.set_io_fault(Some(Box::new(move |op| {
            if op == "write" {
                calls += 1;
                assert_eq!(calls, 1, "non-transient errors must not retry");
                Some(io::ErrorKind::PermissionDenied)
            } else {
                None
            }
        })));
        assert!(matches!(
            s.publish("k", 1, b"x"),
            Err(StoreError::Io { op: "write", .. })
        ));
    }

    #[test]
    fn stale_temp_files_are_swept() {
        let mut s = open("sweep");
        let _ = s.publish("k", 1, b"one");
        let stale = s.key_dir("k").join(format!("{TMP_PREFIX}00000099"));
        fs::write(&stale, b"torn").ok();
        let _ = s.publish("k", 1, b"two");
        assert!(!stale.exists(), "stale temp should be swept on publish");
    }

    #[test]
    fn invalid_keys_rejected() {
        let mut s = open("keys");
        for bad in ["", "a/b", "..", ".hidden", "sp ace", "x\u{e9}"] {
            assert!(
                matches!(s.publish(bad, 0, b"x"), Err(StoreError::InvalidKey(_))),
                "key {bad:?} should be rejected"
            );
        }
        assert!(s.publish("Ok-key_1.v2", 0, b"x").is_ok());
    }

    #[test]
    fn envelope_detects_every_truncation_length() {
        let bytes = encode_envelope(42, b"some payload bytes");
        for len in 0..bytes.len() {
            assert!(
                decode_envelope(&bytes[..len]).is_err(),
                "truncation to {len} bytes must not decode"
            );
        }
        assert!(decode_envelope(&bytes).is_ok());
    }

    #[test]
    fn envelope_detects_trailing_garbage() {
        let mut bytes = encode_envelope(42, b"payload");
        bytes.push(0);
        assert_eq!(
            decode_envelope(&bytes),
            Err(EnvelopeError::TrailingGarbage { extra: 1 })
        );
    }

    #[test]
    fn envelope_reports_bad_magic_and_version() {
        let good = encode_envelope(1, b"p");
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode_envelope(&bad_magic), Err(EnvelopeError::BadMagic));

        // A re-encoded envelope with a bumped version decodes the header
        // fine but must be refused as unsupported.
        let mut v2 = good;
        v2[4..8].copy_from_slice(&2u32.to_le_bytes());
        let hdr = crc32(&v2[..28]);
        v2[28..32].copy_from_slice(&hdr.to_le_bytes());
        assert_eq!(
            decode_envelope(&v2),
            Err(EnvelopeError::UnsupportedVersion(2))
        );
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv64_known_vector() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64_salted(1, b"a"));
    }
}
