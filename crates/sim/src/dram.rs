//! Off-chip memory bandwidth model — paper Eq. 7's constraint.

use serde::{Deserialize, Serialize};
use zfgan_tensor::fault::{FaultLog, FaultPlan, FaultSite};

/// A DRAM channel characterised by sustained bandwidth.
///
/// The paper's VCU118 board offers 192 Gbit/s; with a 200 MHz PE clock and
/// 16-bit data this bounds the `W-CONV` unrolling at `W_Pof = 30` (Eq. 7).
///
/// # Example
///
/// ```
/// use zfgan_sim::DramModel;
///
/// let dram = DramModel::new(192.0, 200.0);
/// // One ∇W read+write per (Nk/Pk) cycles per channel: Eq. 7 gives 30.
/// assert_eq!(dram.eq7_w_pof(16), 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    bandwidth_gbps: f64,
    frequency_mhz: f64,
}

impl DramModel {
    /// Creates a model from sustained bandwidth (Gbit/s) and the PE clock
    /// (MHz).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive.
    pub fn new(bandwidth_gbps: f64, frequency_mhz: f64) -> Self {
        assert!(
            bandwidth_gbps > 0.0 && frequency_mhz > 0.0,
            "parameters must be positive"
        );
        Self {
            bandwidth_gbps,
            frequency_mhz,
        }
    }

    /// The paper's platform: 192 Gbit/s DDR4, 200 MHz PE clock.
    pub fn vcu118() -> Self {
        Self::new(192.0, 200.0)
    }

    /// Sustained bandwidth in Gbit/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bandwidth_gbps
    }

    /// PE clock in MHz.
    pub fn frequency_mhz(&self) -> f64 {
        self.frequency_mhz
    }

    /// Bits transferable per PE clock cycle.
    pub fn bits_per_cycle(&self) -> f64 {
        self.bandwidth_gbps * 1e9 / (self.frequency_mhz * 1e6)
    }

    /// Cycles needed to move `bytes` at full bandwidth (rounded up).
    pub fn cycles_for_bytes(&self, bytes: u64) -> u64 {
        ((bytes as f64 * 8.0) / self.bits_per_cycle()).ceil() as u64
    }

    /// Models one burst of `data` across the channel under a fault plan:
    /// corrupts each word the plan fires on at [`FaultSite::DramBurst`]
    /// (element `i` is word `base + i` of the site's index space) and
    /// returns the transfer's cycle cost at `bytes_per_elem` bytes per
    /// word. A plan targeting another site leaves the data untouched.
    pub fn burst(
        &self,
        base: u64,
        data: &mut [f32],
        bytes_per_elem: u32,
        plan: &FaultPlan,
        log: &mut FaultLog,
    ) -> u64 {
        plan.corrupt_slice(FaultSite::DramBurst, base, data, log);
        self.cycles_for_bytes(data.len() as u64 * u64::from(bytes_per_elem))
    }

    /// Paper Eq. 7: the maximum `W_Pof` the off-chip bandwidth sustains,
    /// `W_Pof = BW / (2 × f × bits_per_data)` — each ZFWST channel issues
    /// one ∇W read **and** one write per `(Nk×Nk)/(Pk×Pk)` cycles, worst
    /// case one of each per cycle.
    pub fn eq7_w_pof(&self, bits_per_data: u32) -> usize {
        (self.bandwidth_gbps * 1e9 / (2.0 * self.frequency_mhz * 1e6 * f64::from(bits_per_data)))
            .floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcu118_matches_paper_constants() {
        let d = DramModel::vcu118();
        assert_eq!(d.bandwidth_gbps(), 192.0);
        assert_eq!(d.frequency_mhz(), 200.0);
        // Paper Section V-C: "W_Pof is 30".
        assert_eq!(d.eq7_w_pof(16), 30);
    }

    #[test]
    fn bits_per_cycle_is_bandwidth_over_clock() {
        let d = DramModel::new(200.0, 100.0);
        assert_eq!(d.bits_per_cycle(), 2000.0);
        assert_eq!(d.cycles_for_bytes(1000), 4); // 8000 bits / 2000
    }

    #[test]
    fn cycles_round_up() {
        let d = DramModel::new(8.0, 1000.0); // 8 bits per cycle
        assert_eq!(d.cycles_for_bytes(1), 1);
        assert_eq!(d.cycles_for_bytes(3), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_bandwidth() {
        let _ = DramModel::new(0.0, 200.0);
    }

    #[test]
    fn burst_costs_cycles_and_injects_at_its_site_only() {
        use zfgan_tensor::fault::FaultKind;
        let d = DramModel::new(8.0, 1000.0); // 8 bits per cycle
        let plan = FaultPlan::new(
            2,
            1.0,
            FaultSite::DramBurst,
            FaultKind::StuckAtOne { bit: 31 },
        )
        .unwrap();
        let mut data = vec![1.0f32, -2.0];
        let mut log = FaultLog::default();
        let cycles = d.burst(0, &mut data, 4, &plan, &mut log);
        assert_eq!(cycles, 8); // 8 bytes at one byte per cycle
        assert_eq!(data, vec![-1.0, -2.0]);
        assert_eq!(log.fired, 2);
        assert_eq!(log.effective, 1);
        assert_eq!(log.masked, 1);
        let other = FaultPlan::new(
            2,
            1.0,
            FaultSite::BufferRead,
            FaultKind::BitFlip { bit: 31 },
        )
        .unwrap();
        let mut untouched = vec![1.0f32];
        let mut log2 = FaultLog::default();
        let _ = d.burst(0, &mut untouched, 2, &other, &mut log2);
        assert_eq!(untouched, vec![1.0f32]);
        assert_eq!(log2.fired, 0);
    }
}
