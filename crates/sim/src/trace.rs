//! Cycle-stamped event tracing for debugging schedules.
//!
//! A [`TraceBuffer`] is a bounded ring of `(cycle, event)` records a
//! simulator can stream into at negligible cost; when something looks
//! wrong in an aggregate counter, the trace shows *which* cycle diverged.
//! Bounded capacity keeps worst-case memory flat — old events are evicted,
//! and the eviction count is reported so truncation is never silent.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

/// One simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A multiply-accumulate fired on PE `(row, col)` of channel `ch`.
    Mac {
        /// Channel index.
        ch: u16,
        /// PE row.
        row: u16,
        /// PE column.
        col: u16,
    },
    /// An operand was loaded from an on-chip buffer into a register.
    BufferRead {
        /// Which named buffer (index into the plan's order).
        buffer: u8,
    },
    /// A value was written back to an on-chip buffer.
    BufferWrite {
        /// Which named buffer.
        buffer: u8,
    },
    /// The register lattice shifted.
    Shift {
        /// Row delta (−1/0/1).
        dy: i8,
        /// Column delta (−1/0/1).
        dx: i8,
    },
    /// A DRAM burst of `bytes` started.
    DramBurst {
        /// Burst length in bytes.
        bytes: u32,
    },
    /// A new phase began (label index managed by the caller).
    PhaseStart {
        /// Caller-managed phase label index.
        label: u16,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Mac { ch, row, col } => write!(f, "mac ch{ch} pe({row},{col})"),
            TraceEvent::BufferRead { buffer } => write!(f, "rd buf{buffer}"),
            TraceEvent::BufferWrite { buffer } => write!(f, "wr buf{buffer}"),
            TraceEvent::Shift { dy, dx } => write!(f, "shift ({dy},{dx})"),
            TraceEvent::DramBurst { bytes } => write!(f, "dram {bytes}B"),
            TraceEvent::PhaseStart { label } => write!(f, "phase {label}"),
        }
    }
}

/// A bounded ring buffer of cycle-stamped events.
///
/// # Example
///
/// ```
/// use zfgan_sim::trace::{TraceBuffer, TraceEvent};
///
/// let mut t = TraceBuffer::new(4);
/// for c in 0..6 {
///     t.record(c, TraceEvent::Shift { dy: 0, dx: 1 });
/// }
/// assert_eq!(t.len(), 4);      // capacity bound holds
/// assert_eq!(t.evicted(), 2);  // truncation is visible
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    capacity: usize,
    events: VecDeque<(u64, TraceEvent)>,
    evicted: u64,
}

impl TraceBuffer {
    /// Creates a buffer keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be non-zero");
        Self {
            capacity,
            events: VecDeque::with_capacity(capacity),
            evicted: 0,
        }
    }

    /// Records one event at `cycle`.
    pub fn record(&mut self, cycle: u64, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back((cycle, event));
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were evicted by the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Iterates retained events in record order.
    pub fn iter(&self) -> impl Iterator<Item = &(u64, TraceEvent)> {
        self.events.iter()
    }

    /// Events recorded in the half-open cycle range `[from, to)`.
    ///
    /// Cycles are recorded in nondecreasing order, so the range endpoints
    /// are found by `partition_point` binary search — O(log n + k) rather
    /// than a full scan of the ring.
    pub fn window(&self, from: u64, to: u64) -> Vec<(u64, TraceEvent)> {
        let start = self.events.partition_point(|(c, _)| *c < from);
        let end = self.events.partition_point(|(c, _)| *c < to);
        self.events.range(start..end).copied().collect()
    }

    /// Renders the retained events, one per line, `cycle: event`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.evicted > 0 {
            out.push_str(&format!("… {} earlier events evicted …\n", self.evicted));
        }
        for (cycle, ev) in &self.events {
            out.push_str(&format!("{cycle:>8}: {ev}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_events() {
        let mut t = TraceBuffer::new(3);
        for c in 0..5u64 {
            t.record(c, TraceEvent::PhaseStart { label: c as u16 });
        }
        let cycles: Vec<u64> = t.iter().map(|(c, _)| *c).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        assert_eq!(t.evicted(), 2);
    }

    #[test]
    fn window_filters_by_cycle() {
        let mut t = TraceBuffer::new(16);
        t.record(
            10,
            TraceEvent::Mac {
                ch: 0,
                row: 1,
                col: 2,
            },
        );
        t.record(20, TraceEvent::BufferRead { buffer: 3 });
        t.record(30, TraceEvent::DramBurst { bytes: 64 });
        let w = t.window(15, 30);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].0, 20);
    }

    /// Eviction + windowing together: after the ring wraps, the window
    /// endpoints still bisect correctly over the retained (rotated) storage,
    /// including same-cycle runs straddling a bucket edge.
    #[test]
    fn window_after_eviction_bisects_the_rotated_ring() {
        let mut t = TraceBuffer::new(8);
        // Nondecreasing cycles with duplicates: 0,0,1,1,2,2,...,7,7.
        for c in 0..8u64 {
            for buffer in 0..2u8 {
                t.record(c, TraceEvent::BufferRead { buffer });
            }
        }
        assert_eq!(t.evicted(), 8, "ring must have wrapped");
        // Retained: cycles 4..8, two events each, stored rotated in the deque.
        let cycles: Vec<u64> = t.window(5, 7).iter().map(|(c, _)| *c).collect();
        assert_eq!(cycles, vec![5, 5, 6, 6]);
        // Endpoints below / above the retained range clamp cleanly.
        assert_eq!(t.window(0, 5).len(), 2, "only cycle 4 survives eviction");
        assert_eq!(t.window(7, 100).len(), 2);
        assert_eq!(t.window(9, 10).len(), 0);
        assert_eq!(t.window(6, 6).len(), 0, "empty half-open range");
        // Whole-range window equals the full retained contents.
        assert_eq!(t.window(0, u64::MAX).len(), t.len());
    }

    #[test]
    fn render_shows_eviction_and_events() {
        let mut t = TraceBuffer::new(1);
        t.record(1, TraceEvent::Shift { dy: 1, dx: 0 });
        t.record(2, TraceEvent::BufferWrite { buffer: 0 });
        let s = t.render();
        assert!(s.contains("evicted"));
        assert!(s.contains("wr buf0"));
        assert!(!s.contains("shift"), "evicted event must not render");
    }

    #[test]
    fn display_formats_every_variant() {
        let evs = [
            TraceEvent::Mac {
                ch: 1,
                row: 2,
                col: 3,
            },
            TraceEvent::BufferRead { buffer: 0 },
            TraceEvent::BufferWrite { buffer: 1 },
            TraceEvent::Shift { dy: -1, dx: 1 },
            TraceEvent::DramBurst { bytes: 128 },
            TraceEvent::PhaseStart { label: 7 },
        ];
        for e in evs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = TraceBuffer::new(0);
    }
}
