//! Cycle-stamped event tracing for debugging schedules.
//!
//! A [`TraceBuffer`] is a bounded buffer of `(cycle, event)` records a
//! simulator can stream into at negligible cost; when something looks
//! wrong in an aggregate counter, the trace shows *which* cycle diverged.
//! Bounded capacity keeps worst-case memory flat — old events are evicted,
//! and the eviction count is reported so truncation is never silent.
//!
//! # Run-length segments
//!
//! Internally the buffer stores *segments*, not individual events: a
//! single event, an arithmetic run (`count` repeats of one event whose
//! cycle advances by a fixed `step`), or a repeated block (a template of
//! relative-cycle events replayed `reps` times with a fixed `period`).
//! Producers with structural knowledge of their event stream — the fast
//! executor engine in `zfgan-dataflow` emits one run or block per tile
//! instead of one `record` per MAC — append whole segments via
//! [`TraceBuffer::record_run`] / [`TraceBuffer::record_block`]; plain
//! [`TraceBuffer::record`] still works and transparently merges adjacent
//! compatible events into runs. All observers ([`TraceBuffer::iter`],
//! [`TraceBuffer::window`], [`TraceBuffer::render`], capacity/eviction
//! accounting) operate on the *expanded* event stream, so a batched and a
//! per-event producer of the same stream are indistinguishable.
//!
//! # Capacity contract
//!
//! `capacity` bounds the number of *expanded* events retained; recording
//! past it evicts from the front (partially consuming the front segment
//! when necessary) and counts the evictions. A capacity of **zero**
//! disables the buffer entirely: every record is discarded, `len()` and
//! `evicted()` stay 0 — the tracing-off mode the `*_traced` executors use
//! to thread one code path for traced and untraced runs.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// One simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A multiply-accumulate fired on PE `(row, col)` of channel `ch`.
    Mac {
        /// Channel index.
        ch: u16,
        /// PE row.
        row: u16,
        /// PE column.
        col: u16,
    },
    /// An operand was loaded from an on-chip buffer into a register.
    BufferRead {
        /// Which named buffer (index into the plan's order).
        buffer: u8,
    },
    /// A value was written back to an on-chip buffer.
    BufferWrite {
        /// Which named buffer.
        buffer: u8,
    },
    /// The register lattice shifted.
    Shift {
        /// Row delta (−1/0/1).
        dy: i8,
        /// Column delta (−1/0/1).
        dx: i8,
    },
    /// A DRAM burst of `bytes` started.
    DramBurst {
        /// Burst length in bytes.
        bytes: u32,
    },
    /// A new phase began (label index managed by the caller).
    PhaseStart {
        /// Caller-managed phase label index.
        label: u16,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Mac { ch, row, col } => write!(f, "mac ch{ch} pe({row},{col})"),
            TraceEvent::BufferRead { buffer } => write!(f, "rd buf{buffer}"),
            TraceEvent::BufferWrite { buffer } => write!(f, "wr buf{buffer}"),
            TraceEvent::Shift { dy, dx } => write!(f, "shift ({dy},{dx})"),
            TraceEvent::DramBurst { bytes } => write!(f, "dram {bytes}B"),
            TraceEvent::PhaseStart { label } => write!(f, "phase {label}"),
        }
    }
}

/// One run-length-encoded piece of the event stream.
#[derive(Debug, Clone)]
enum Seg {
    /// A single event.
    One { cycle: u64, event: TraceEvent },
    /// `count` copies of `event` at cycles `start, start+step, …`.
    Run {
        start: u64,
        step: u64,
        count: u64,
        event: TraceEvent,
    },
    /// A template of `(relative_cycle, event)` pairs replayed `reps`
    /// times: repetition `r` stamps `base + r·period + rel`.
    Block {
        base: u64,
        period: u64,
        reps: u64,
        events: Arc<[(u64, TraceEvent)]>,
    },
}

impl Seg {
    /// Number of expanded events this segment describes.
    fn len(&self) -> u64 {
        match self {
            Seg::One { .. } => 1,
            Seg::Run { count, .. } => *count,
            Seg::Block { reps, events, .. } => reps * events.len() as u64,
        }
    }

    /// Cycle stamp of the first expanded event.
    fn first_cycle(&self) -> u64 {
        match self {
            Seg::One { cycle, .. } => *cycle,
            Seg::Run { start, .. } => *start,
            Seg::Block { base, events, .. } => base + events[0].0,
        }
    }

    /// Cycle stamp of the last expanded event.
    fn last_cycle(&self) -> u64 {
        match self {
            Seg::One { cycle, .. } => *cycle,
            Seg::Run {
                start, step, count, ..
            } => start + step * (count - 1),
            Seg::Block {
                base,
                period,
                reps,
                events,
            } => base + period * (reps - 1) + events[events.len() - 1].0,
        }
    }

    /// The expanded event at position `pos` (must be `< self.len()`).
    fn at(&self, pos: u64) -> (u64, TraceEvent) {
        match self {
            Seg::One { cycle, event } => (*cycle, *event),
            Seg::Run {
                start, step, event, ..
            } => (start + step * pos, *event),
            Seg::Block {
                base,
                period,
                events,
                ..
            } => {
                let n = events.len() as u64;
                let (rel, ev) = events[(pos % n) as usize];
                (base + period * (pos / n) + rel, ev)
            }
        }
    }
}

/// A bounded buffer of cycle-stamped events, run-length encoded.
///
/// # Example
///
/// ```
/// use zfgan_sim::trace::{TraceBuffer, TraceEvent};
///
/// let mut t = TraceBuffer::new(4);
/// for c in 0..6 {
///     t.record(c, TraceEvent::Shift { dy: 0, dx: 1 });
/// }
/// assert_eq!(t.len(), 4);      // capacity bound holds
/// assert_eq!(t.evicted(), 2);  // truncation is visible
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    capacity: usize,
    segs: VecDeque<Seg>,
    /// Expanded events of the *front* segment already evicted (partial
    /// front eviction without re-encoding the segment).
    front_skip: u64,
    /// Expanded events currently retained (cached; kept in sync by every
    /// mutation).
    len: u64,
    evicted: u64,
}

impl TraceBuffer {
    /// Creates a buffer keeping at most `capacity` expanded events.
    ///
    /// A `capacity` of zero creates a *disabled* buffer: every record is
    /// discarded without being counted, so executors can thread a single
    /// sink through traced and untraced runs.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            segs: VecDeque::new(),
            front_skip: 0,
            len: 0,
            evicted: 0,
        }
    }

    /// [`TraceBuffer::new`] with the producer's known total event count:
    /// segment storage is pre-reserved for `expected.min(capacity)` events
    /// (an upper bound — run-length encoding needs far fewer segments than
    /// events), so a traced run sized within its capacity never regrows
    /// the deque.
    pub fn with_expected(capacity: usize, expected: u64) -> Self {
        let mut buf = Self::new(capacity);
        let reserve = expected.min(capacity as u64).min(1 << 20) as usize;
        buf.segs.reserve(reserve);
        buf
    }

    /// Whether records are retained (capacity is non-zero).
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one event at `cycle`. Adjacent records of the same event
    /// whose cycles advance arithmetically are merged into a run.
    pub fn record(&mut self, cycle: u64, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        // Merge with the back segment when the stream stays arithmetic.
        // (A partially evicted front segment is never a `One`, so the
        // One→Run rewrite below cannot disturb `front_skip`.)
        let merge = match self.segs.back() {
            Some(Seg::Run {
                start,
                step,
                count,
                event: e,
            }) if *e == event && cycle == *start + *step * *count => Some(None),
            Some(Seg::One {
                cycle: c0,
                event: e,
            }) if *e == event && cycle >= *c0 => Some(Some(*c0)),
            _ => None,
        };
        match merge {
            Some(None) => {
                if let Some(Seg::Run { count, .. }) = self.segs.back_mut() {
                    *count += 1;
                }
            }
            Some(Some(c0)) => {
                *self.segs.back_mut().expect("peeked above") = Seg::Run {
                    start: c0,
                    step: cycle - c0,
                    count: 2,
                    event,
                };
            }
            None => self.segs.push_back(Seg::One { cycle, event }),
        }
        self.len += 1;
        self.evict_to_capacity();
    }

    /// Records `count` copies of `event` at cycles `start, start+step, …`
    /// in one segment. Cycle stamps must continue the stream's
    /// nondecreasing order.
    pub fn record_run(&mut self, start: u64, step: u64, count: u64, event: TraceEvent) {
        if self.capacity == 0 || count == 0 {
            return;
        }
        debug_assert!(
            self.segs.back().is_none_or(|s| s.last_cycle() <= start),
            "trace cycle stamps must be nondecreasing"
        );
        if count == 1 {
            // Keep single events in `One` form so `record`'s merging stays
            // applicable.
            self.segs.push_back(Seg::One {
                cycle: start,
                event,
            });
        } else {
            self.segs.push_back(Seg::Run {
                start,
                step,
                count,
                event,
            });
        }
        self.len += count;
        self.evict_to_capacity();
    }

    /// Records a template of `(relative_cycle, event)` pairs replayed
    /// `reps` times, repetition `r` stamped at `base + r·period + rel` —
    /// the per-tile batched form the fast executor engine emits. The
    /// template's relative cycles must be nondecreasing and the whole
    /// expansion must continue the stream's nondecreasing order.
    pub fn record_block(
        &mut self,
        base: u64,
        period: u64,
        reps: u64,
        events: Arc<[(u64, TraceEvent)]>,
    ) {
        if self.capacity == 0 || reps == 0 || events.is_empty() {
            return;
        }
        debug_assert!(
            events.windows(2).all(|w| w[0].0 <= w[1].0),
            "block template cycles must be nondecreasing"
        );
        debug_assert!(
            reps == 1 || events[events.len() - 1].0 <= period,
            "repetitions must not interleave: max relative cycle exceeds period"
        );
        if events.len() == 1 {
            let (rel, ev) = events[0];
            self.record_run(base + rel, period, reps, ev);
            return;
        }
        debug_assert!(
            self.segs
                .back()
                .is_none_or(|s| s.last_cycle() <= base + events[0].0),
            "trace cycle stamps must be nondecreasing"
        );
        let added = reps * events.len() as u64;
        self.segs.push_back(Seg::Block {
            base,
            period,
            reps,
            events,
        });
        self.len += added;
        self.evict_to_capacity();
    }

    /// Evicts expanded events from the front until `len <= capacity`,
    /// consuming front segments partially via `front_skip`.
    fn evict_to_capacity(&mut self) {
        while self.len > self.capacity as u64 {
            let excess = self.len - self.capacity as u64;
            let front_len = self.segs.front().expect("len > 0 implies segments").len();
            let avail = front_len - self.front_skip;
            let take = avail.min(excess);
            self.front_skip += take;
            self.len -= take;
            self.evicted += take;
            if self.front_skip == front_len {
                self.segs.pop_front();
                self.front_skip = 0;
            }
        }
    }

    /// Number of retained (expanded) events.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How many events were evicted by the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Iterates retained events in record order, expanding run-length
    /// segments on the fly.
    pub fn iter(&self) -> impl Iterator<Item = (u64, TraceEvent)> + '_ {
        self.segs
            .iter()
            .flat_map(|seg| (0..seg.len()).map(move |pos| seg.at(pos)))
            .skip(self.front_skip as usize)
    }

    /// Events recorded in the half-open cycle range `[from, to)`.
    ///
    /// Cycles are recorded in nondecreasing order, so the segment range is
    /// found by `partition_point` binary search and only boundary segments
    /// are filtered — O(log n + k) in segments rather than a full scan.
    pub fn window(&self, from: u64, to: u64) -> Vec<(u64, TraceEvent)> {
        if from >= to || self.len == 0 {
            return Vec::new();
        }
        let lo = self.segs.partition_point(|s| s.last_cycle() < from);
        let hi = self.segs.partition_point(|s| s.first_cycle() < to);
        let mut out = Vec::new();
        for (i, seg) in self.segs.range(lo..hi.max(lo)).enumerate() {
            let skip = if lo + i == 0 { self.front_skip } else { 0 };
            for pos in skip..seg.len() {
                let (c, e) = seg.at(pos);
                if c >= to {
                    break;
                }
                if c >= from {
                    out.push((c, e));
                }
            }
        }
        out
    }

    /// Renders the retained events, one per line, `cycle: event`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.evicted > 0 {
            out.push_str(&format!("… {} earlier events evicted …\n", self.evicted));
        }
        for (cycle, ev) in self.iter() {
            out.push_str(&format!("{cycle:>8}: {ev}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_events() {
        let mut t = TraceBuffer::new(3);
        for c in 0..5u64 {
            t.record(c, TraceEvent::PhaseStart { label: c as u16 });
        }
        let cycles: Vec<u64> = t.iter().map(|(c, _)| c).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        assert_eq!(t.evicted(), 2);
    }

    #[test]
    fn window_filters_by_cycle() {
        let mut t = TraceBuffer::new(16);
        t.record(
            10,
            TraceEvent::Mac {
                ch: 0,
                row: 1,
                col: 2,
            },
        );
        t.record(20, TraceEvent::BufferRead { buffer: 3 });
        t.record(30, TraceEvent::DramBurst { bytes: 64 });
        let w = t.window(15, 30);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].0, 20);
    }

    /// Eviction + windowing together: after the buffer wraps, the window
    /// endpoints still bisect correctly over the retained segments,
    /// including same-cycle runs straddling a bucket edge.
    #[test]
    fn window_after_eviction_bisects_the_rotated_ring() {
        let mut t = TraceBuffer::new(8);
        // Nondecreasing cycles with duplicates: 0,0,1,1,2,2,...,7,7.
        for c in 0..8u64 {
            for buffer in 0..2u8 {
                t.record(c, TraceEvent::BufferRead { buffer });
            }
        }
        assert_eq!(t.evicted(), 8, "ring must have wrapped");
        // Retained: cycles 4..8, two events each.
        let cycles: Vec<u64> = t.window(5, 7).iter().map(|(c, _)| *c).collect();
        assert_eq!(cycles, vec![5, 5, 6, 6]);
        // Endpoints below / above the retained range clamp cleanly.
        assert_eq!(t.window(0, 5).len(), 2, "only cycle 4 survives eviction");
        assert_eq!(t.window(7, 100).len(), 2);
        assert_eq!(t.window(9, 10).len(), 0);
        assert_eq!(t.window(6, 6).len(), 0, "empty half-open range");
        // Whole-range window equals the full retained contents.
        assert_eq!(t.window(0, u64::MAX).len(), t.len());
    }

    #[test]
    fn render_shows_eviction_and_events() {
        let mut t = TraceBuffer::new(1);
        t.record(1, TraceEvent::Shift { dy: 1, dx: 0 });
        t.record(2, TraceEvent::BufferWrite { buffer: 0 });
        let s = t.render();
        assert!(s.contains("evicted"));
        assert!(s.contains("wr buf0"));
        assert!(!s.contains("shift"), "evicted event must not render");
    }

    #[test]
    fn display_formats_every_variant() {
        let evs = [
            TraceEvent::Mac {
                ch: 1,
                row: 2,
                col: 3,
            },
            TraceEvent::BufferRead { buffer: 0 },
            TraceEvent::BufferWrite { buffer: 1 },
            TraceEvent::Shift { dy: -1, dx: 1 },
            TraceEvent::DramBurst { bytes: 128 },
            TraceEvent::PhaseStart { label: 7 },
        ];
        for e in evs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn zero_capacity_discards_everything() {
        let mut t = TraceBuffer::new(0);
        assert!(!t.enabled());
        t.record(1, TraceEvent::BufferRead { buffer: 0 });
        t.record_run(2, 1, 10, TraceEvent::BufferRead { buffer: 0 });
        t.record_block(
            20,
            2,
            3,
            vec![(0, TraceEvent::BufferRead { buffer: 1 })].into(),
        );
        assert_eq!(t.len(), 0);
        assert_eq!(t.evicted(), 0, "a disabled buffer never counts evictions");
        assert!(t.iter().next().is_none());
        assert_eq!(t.window(0, u64::MAX).len(), 0);
        assert_eq!(t.render(), "");
    }

    /// The batched producers and a per-event producer of the same stream
    /// are indistinguishable through every observer.
    #[test]
    fn runs_and_blocks_expand_to_the_per_event_stream() {
        let mac = TraceEvent::Mac {
            ch: 1,
            row: 0,
            col: 0,
        };
        let wr = TraceEvent::BufferWrite { buffer: 3 };
        let mut batched = TraceBuffer::new(4096);
        let mut plain = TraceBuffer::new(4096);
        // run: 5 macs at cycles 0,2,4,6,8
        batched.record_run(0, 2, 5, mac);
        for c in [0u64, 2, 4, 6, 8] {
            plain.record(c, mac);
        }
        // block: (mac, wr) at cycle 10 and 11, repeated 3 times, period 2
        batched.record_block(10, 2, 3, vec![(0, mac), (1, wr)].into());
        for r in 0..3u64 {
            plain.record(10 + 2 * r, mac);
            plain.record(11 + 2 * r, wr);
        }
        let a: Vec<_> = batched.iter().collect();
        let b: Vec<_> = plain.iter().collect();
        assert_eq!(a, b);
        assert_eq!(batched.len(), plain.len());
        assert_eq!(batched.window(3, 12), plain.window(3, 12));
        assert_eq!(batched.render(), plain.render());
    }

    /// Capacity eviction consumes segments partially and keeps the
    /// expanded accounting identical to a per-event ring.
    #[test]
    fn eviction_cuts_into_runs_and_blocks() {
        let mac = TraceEvent::Mac {
            ch: 0,
            row: 0,
            col: 0,
        };
        let rd = TraceEvent::BufferRead { buffer: 1 };
        let mut t = TraceBuffer::new(5);
        t.record_run(0, 1, 8, mac); // evicts 3 immediately
        assert_eq!(t.len(), 5);
        assert_eq!(t.evicted(), 3);
        let cycles: Vec<u64> = t.iter().map(|(c, _)| c).collect();
        assert_eq!(cycles, vec![3, 4, 5, 6, 7]);
        t.record_block(8, 2, 2, vec![(0, rd), (1, rd)].into()); // 4 more
        assert_eq!(t.len(), 5);
        assert_eq!(t.evicted(), 7);
        let got: Vec<_> = t.iter().collect();
        assert_eq!(
            got,
            vec![(7, mac), (8, rd), (9, rd), (10, rd), (11, rd)],
            "partial front-segment eviction must preserve the tail stream"
        );
        // Window over a partially evicted front segment respects the skip.
        assert_eq!(t.window(0, 9).len(), 2);
    }

    #[test]
    fn record_merges_arithmetic_runs() {
        let rd = TraceEvent::BufferRead { buffer: 0 };
        let mut t = TraceBuffer::new(1024);
        for c in 0..100u64 {
            t.record(c, rd);
        }
        // 100 events, but a single merged segment.
        assert_eq!(t.len(), 100);
        assert_eq!(t.segs.len(), 1);
        // A different event type breaks the run.
        t.record(100, TraceEvent::BufferWrite { buffer: 0 });
        assert_eq!(t.segs.len(), 2);
        // Same-cycle duplicates also merge (step-0 runs).
        let mut s = TraceBuffer::new(64);
        s.record(5, rd);
        s.record(5, rd);
        s.record(5, rd);
        assert_eq!(s.segs.len(), 1);
        assert_eq!(s.len(), 3);
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![(5, rd), (5, rd), (5, rd)]);
    }

    #[test]
    fn with_expected_reserves_within_capacity() {
        let t = TraceBuffer::with_expected(64, 1_000_000);
        assert!(t.segs.capacity() >= 64);
        let u = TraceBuffer::with_expected(1 << 30, 16);
        assert!(u.segs.capacity() >= 16);
        assert!(u.segs.capacity() < 1024, "reservation follows the run size");
    }
}
