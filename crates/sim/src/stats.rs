//! Schedule-level accounting records.

use serde::{Deserialize, Serialize};

/// On-chip data accesses of one scheduled phase — the currency of the
/// paper's Fig. 16 ("loading kernel weights and input neurons and
/// reading/writing output neurons").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AccessCounts {
    /// Kernel weights loaded from an on-chip buffer into the PE array.
    pub weight_reads: u64,
    /// Input neurons loaded from an on-chip buffer into the PE array
    /// (register-to-register shifts between neighbouring PEs do **not**
    /// count — that locality is exactly what the stationary dataflows buy).
    pub input_reads: u64,
    /// Partial sums read back from an on-chip buffer.
    pub output_reads: u64,
    /// Output neurons / partial sums written to an on-chip buffer.
    pub output_writes: u64,
}

impl AccessCounts {
    /// Total on-chip accesses.
    pub fn total(&self) -> u64 {
        self.weight_reads + self.input_reads + self.output_reads + self.output_writes
    }

    /// Component-wise sum.
    pub fn merged(self, o: AccessCounts) -> AccessCounts {
        AccessCounts {
            weight_reads: self.weight_reads + o.weight_reads,
            input_reads: self.input_reads + o.input_reads,
            output_reads: self.output_reads + o.output_reads,
            output_writes: self.output_writes + o.output_writes,
        }
    }
}

/// Off-chip (DRAM) traffic of one scheduled phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DramTraffic {
    /// Bytes read from DRAM.
    pub read_bytes: u64,
    /// Bytes written to DRAM.
    pub write_bytes: u64,
}

impl DramTraffic {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Component-wise sum.
    pub fn merged(self, o: DramTraffic) -> DramTraffic {
        DramTraffic {
            read_bytes: self.read_bytes + o.read_bytes,
            write_bytes: self.write_bytes + o.write_bytes,
        }
    }
}

/// Everything a dataflow schedule reports about executing one convolution
/// phase on one architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Cycles the PE array is occupied.
    pub cycles: u64,
    /// Effectual multiply-accumulates performed.
    pub effectual_macs: u64,
    /// Number of PEs in the array (`nPEs` of paper Eq. 5).
    pub n_pes: u64,
    /// On-chip buffer accesses.
    pub access: AccessCounts,
    /// Off-chip traffic.
    pub dram: DramTraffic,
}

impl PhaseStats {
    /// PE utilization — paper Eq. 5's `nMACs / (nCycles × nPEs)`.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 || self.n_pes == 0 {
            0.0
        } else {
            self.effectual_macs as f64 / (self.cycles * self.n_pes) as f64
        }
    }

    /// Throughput in effectual MACs per cycle — the paper's Fig. 15
    /// "performance (processing throughput)" metric.
    pub fn macs_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.effectual_macs as f64 / self.cycles as f64
        }
    }

    /// Merges two phases executed back-to-back on the same array.
    ///
    /// # Panics
    ///
    /// Panics if the PE counts differ (merging across arrays is a caller
    /// bug; aggregate those at the accelerator level instead).
    pub fn merged(self, o: PhaseStats) -> PhaseStats {
        assert_eq!(
            self.n_pes, o.n_pes,
            "cannot merge stats across different PE arrays"
        );
        PhaseStats {
            cycles: self.cycles + o.cycles,
            effectual_macs: self.effectual_macs + o.effectual_macs,
            n_pes: self.n_pes,
            access: self.access.merged(o.access),
            dram: self.dram.merged(o.dram),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_matches_eq5() {
        let s = PhaseStats {
            cycles: 100,
            effectual_macs: 250,
            n_pes: 5,
            ..Default::default()
        };
        assert_eq!(s.utilization(), 0.5);
        assert_eq!(s.macs_per_cycle(), 2.5);
    }

    #[test]
    fn zero_cycles_is_zero_utilization() {
        let s = PhaseStats::default();
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.macs_per_cycle(), 0.0);
    }

    #[test]
    fn merging_accumulates_everything() {
        let a = PhaseStats {
            cycles: 10,
            effectual_macs: 20,
            n_pes: 4,
            access: AccessCounts {
                weight_reads: 1,
                input_reads: 2,
                output_reads: 3,
                output_writes: 4,
            },
            dram: DramTraffic {
                read_bytes: 5,
                write_bytes: 6,
            },
        };
        let m = a.merged(a);
        assert_eq!(m.cycles, 20);
        assert_eq!(m.effectual_macs, 40);
        assert_eq!(m.access.total(), 20);
        assert_eq!(m.dram.total_bytes(), 22);
    }

    #[test]
    #[should_panic(expected = "different PE arrays")]
    fn merging_across_arrays_panics() {
        let a = PhaseStats {
            n_pes: 4,
            ..Default::default()
        };
        let b = PhaseStats {
            n_pes: 8,
            ..Default::default()
        };
        let _ = a.merged(b);
    }

    #[test]
    fn access_counts_total() {
        let a = AccessCounts {
            weight_reads: 1,
            input_reads: 10,
            output_reads: 100,
            output_writes: 1000,
        };
        assert_eq!(a.total(), 1111);
        assert_eq!(a.merged(a).total(), 2222);
    }
}
