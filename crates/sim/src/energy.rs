//! Per-event energy model.
//!
//! The paper measures wall power with a WattsUp meter; here energy is
//! reconstructed from event counts with per-access costs in the spirit of
//! the standard architecture-community numbers (Horowitz, ISSCC'14, scaled
//! to a 16-bit datapath): a DRAM access costs ~2 orders of magnitude more
//! than an SRAM access, which costs ~1 order more than a MAC or register
//! access. Relative energy between designs — the quantity Figs. 16/19 care
//! about — is driven by these ratios, not the absolute scale.

use serde::{Deserialize, Serialize};

use crate::stats::PhaseStats;

/// Per-event energy costs in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One 16-bit multiply-accumulate.
    pub mac_pj: f64,
    /// One 16-bit on-chip SRAM (buffer) access.
    pub sram_pj: f64,
    /// One 16-bit DRAM access (per 2 bytes of traffic).
    pub dram_pj_per_access: f64,
    /// Static/clock overhead per PE per cycle.
    pub idle_pe_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // 16-bit ops at ~45 nm: int16 MAC ≈ 0.3 pJ, 32 kB SRAM read ≈ 5 pJ,
        // DRAM ≈ 320 pJ per 16-bit word, light per-PE static overhead.
        Self {
            mac_pj: 0.3,
            sram_pj: 5.0,
            dram_pj_per_access: 320.0,
            idle_pe_pj: 0.05,
        }
    }
}

/// Energy of one scheduled phase, split by component.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Compute (MAC) energy in picojoules.
    pub compute_pj: f64,
    /// On-chip buffer access energy in picojoules.
    pub sram_pj: f64,
    /// Off-chip DRAM energy in picojoules.
    pub dram_pj: f64,
    /// Idle/static PE energy in picojoules.
    pub static_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.sram_pj + self.dram_pj + self.static_pj
    }

    /// Component-wise sum.
    pub fn merged(self, o: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: self.compute_pj + o.compute_pj,
            sram_pj: self.sram_pj + o.sram_pj,
            dram_pj: self.dram_pj + o.dram_pj,
            static_pj: self.static_pj + o.static_pj,
        }
    }
}

impl EnergyModel {
    /// Energy of one scheduled phase.
    pub fn phase_energy(&self, stats: &PhaseStats) -> EnergyBreakdown {
        let dram_accesses = (stats.dram.total_bytes() as f64) / 2.0; // 16-bit words
        EnergyBreakdown {
            compute_pj: stats.effectual_macs as f64 * self.mac_pj,
            sram_pj: stats.access.total() as f64 * self.sram_pj,
            dram_pj: dram_accesses * self.dram_pj_per_access,
            static_pj: (stats.cycles * stats.n_pes) as f64 * self.idle_pe_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{AccessCounts, DramTraffic};

    #[test]
    fn default_ratios_are_sane() {
        let m = EnergyModel::default();
        assert!(m.dram_pj_per_access > 10.0 * m.sram_pj);
        assert!(m.sram_pj > 10.0 * m.mac_pj);
    }

    #[test]
    fn phase_energy_adds_components() {
        let m = EnergyModel {
            mac_pj: 1.0,
            sram_pj: 10.0,
            dram_pj_per_access: 100.0,
            idle_pe_pj: 0.0,
        };
        let s = PhaseStats {
            cycles: 5,
            effectual_macs: 3,
            n_pes: 2,
            access: AccessCounts {
                weight_reads: 1,
                input_reads: 1,
                output_reads: 0,
                output_writes: 0,
            },
            dram: DramTraffic {
                read_bytes: 4,
                write_bytes: 0,
            },
        };
        let e = m.phase_energy(&s);
        assert_eq!(e.compute_pj, 3.0);
        assert_eq!(e.sram_pj, 20.0);
        assert_eq!(e.dram_pj, 200.0);
        assert_eq!(e.total_pj(), 223.0);
    }

    #[test]
    fn merge_accumulates() {
        let a = EnergyBreakdown {
            compute_pj: 1.0,
            sram_pj: 2.0,
            dram_pj: 3.0,
            static_pj: 4.0,
        };
        let m = a.merged(a);
        assert_eq!(m.total_pj(), 20.0);
    }
}
