//! A convolution *phase*: which family it belongs to and its full shape.

use serde::{Deserialize, Serialize};
use zfgan_tensor::zeros::{t_conv_mul_counts, w_conv_s_mul_counts, w_conv_t_mul_counts, MulCounts};
use zfgan_tensor::ConvGeom;

/// The paper's convolution taxonomy (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConvKind {
    /// Strided convolution — `D̄` forward and `Ḡ` backward-error.
    S,
    /// Transposed convolution with zero-inserted input — `Ḡ` forward and
    /// `D̄` backward-error.
    T,
    /// Weight-gradient convolution of an `S-CONV` layer (Discriminator
    /// update): zero-inserting in the *kernel* operand (paper Fig. 6c).
    WGradS,
    /// Weight-gradient convolution of a `T-CONV` layer (Generator update):
    /// zero-inserting in the *input* operand (paper Fig. 6d).
    WGradT,
}

impl ConvKind {
    /// Whether this is one of the two four-dimensional-output `W-CONV`
    /// variants.
    pub fn is_weight_grad(self) -> bool {
        matches!(self, ConvKind::WGradS | ConvKind::WGradT)
    }

    /// Whether the phase's naive execution involves inserted zeros in
    /// either operand.
    pub fn has_inserted_zeros(self) -> bool {
        !matches!(self, ConvKind::S)
    }
}

/// One convolution phase with concrete dimensions.
///
/// The shape is always expressed in *down-direction* terms, exactly like
/// [`ConvGeom`]: `small` is the channel count on the down-sampled side of
/// the geometry, `large` the channel count on the up-sampled side, and
/// `large_h × large_w` the up-sampled spatial size. How the four convolution
/// families consume those dimensions:
///
/// | kind      | input operand                 | output                         |
/// |-----------|-------------------------------|--------------------------------|
/// | `S`       | `large` maps, `large_h×large_w` | `small` maps, `small_h×small_w` |
/// | `T`       | `small` maps, `small_h×small_w` | `large` maps, `large_h×large_w` |
/// | `WGradS`  | `large` maps (data) + `small` maps (error) | `small×large×kh×kw` |
/// | `WGradT`  | `small` maps (data) + `large` maps (error) | `small×large×kh×kw` |
///
/// # Example
///
/// ```
/// use zfgan_sim::{ConvKind, ConvShape};
/// use zfgan_tensor::ConvGeom;
///
/// // DCGAN discriminator layer 1: 3×64×64 → 64×32×32.
/// let geom = ConvGeom::down(64, 64, 4, 4, 2, 32, 32)?;
/// let phase = ConvShape::new(ConvKind::S, geom, 64, 3, 64, 64);
/// assert_eq!(phase.effectual_macs(), 64 * 3 * 16 * 32 * 32);
/// # Ok::<(), zfgan_tensor::ShapeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvShape {
    kind: ConvKind,
    geom: ConvGeom,
    /// Channels on the down-sampled (small) side.
    small: usize,
    /// Channels on the up-sampled (large) side.
    large: usize,
    /// Up-sampled spatial height.
    large_h: usize,
    /// Up-sampled spatial width.
    large_w: usize,
}

impl ConvShape {
    /// Creates a phase shape.
    ///
    /// `large_h × large_w` is the spatial size on the *up-sampled* side of
    /// the geometry (the `S-CONV` input / `T-CONV` output).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        kind: ConvKind,
        geom: ConvGeom,
        small: usize,
        large: usize,
        large_h: usize,
        large_w: usize,
    ) -> Self {
        assert!(
            small > 0 && large > 0 && large_h > 0 && large_w > 0,
            "phase dimensions must be non-zero"
        );
        Self {
            kind,
            geom,
            small,
            large,
            large_h,
            large_w,
        }
    }

    /// The convolution family.
    pub fn kind(&self) -> ConvKind {
        self.kind
    }

    /// The shared geometry.
    pub fn geom(&self) -> &ConvGeom {
        &self.geom
    }

    /// Channel count on the down-sampled side.
    pub fn small(&self) -> usize {
        self.small
    }

    /// Channel count on the up-sampled side.
    pub fn large(&self) -> usize {
        self.large
    }

    /// Spatial size on the up-sampled side.
    pub fn large_hw(&self) -> (usize, usize) {
        (self.large_h, self.large_w)
    }

    /// Spatial size on the down-sampled side.
    pub fn small_hw(&self) -> (usize, usize) {
        self.geom.down_out(self.large_h, self.large_w)
    }

    /// The same shape reinterpreted as a different convolution family —
    /// how one layer yields its forward, backward and weight-update phases.
    pub fn with_kind(&self, kind: ConvKind) -> ConvShape {
        ConvShape { kind, ..*self }
    }

    /// `(N_if, N_iy, N_ix)` of the phase's *input operand* in the naive
    /// (zero-inserted) execution the traditional architectures see.
    pub fn naive_input_dims(&self) -> (usize, usize, usize) {
        let (sh, sw) = self.small_hw();
        match self.kind {
            ConvKind::S => (self.large, self.large_h, self.large_w),
            ConvKind::T => {
                let (zh, zw) = self.geom.zero_inserted(sh, sw);
                (self.small, zh, zw)
            }
            // D-side W-CONV walks the (real) layer input; the zeros live in
            // the dilated error kernel.
            ConvKind::WGradS => (self.large, self.large_h, self.large_w),
            // G-side W-CONV walks the zero-inserted layer input.
            ConvKind::WGradT => {
                let (zh, zw) = self.geom.zero_inserted(sh, sw);
                (self.small, zh, zw)
            }
        }
    }

    /// `(N_of, N_oy, N_ox)` of the phase's output (for `W-CONV`, one output
    /// "map" per `(of, if)` pair with the kernel's spatial size).
    pub fn output_dims(&self) -> (usize, usize, usize) {
        let (sh, sw) = self.small_hw();
        match self.kind {
            ConvKind::S => (self.small, sh, sw),
            ConvKind::T => (self.large, self.large_h, self.large_w),
            ConvKind::WGradS | ConvKind::WGradT => {
                (self.small * self.large, self.geom.kh(), self.geom.kw())
            }
        }
    }

    /// Effectual multiply-accumulates — the work an ideal zero-skipping
    /// machine performs. All four phases of one layer have (asymptotically)
    /// the same count, the paper's "equivalent amount of computations".
    pub fn effectual_macs(&self) -> u64 {
        let (sh, sw) = self.small_hw();
        let pairs = (self.small * self.large) as u64;
        match self.kind {
            ConvKind::S => pairs * (self.geom.kh() * self.geom.kw()) as u64 * (sh * sw) as u64,
            ConvKind::T => pairs * t_conv_mul_counts(&self.geom, sh, sw).effectual,
            ConvKind::WGradS => {
                pairs * w_conv_s_mul_counts(&self.geom, self.large_h, self.large_w).effectual
            }
            ConvKind::WGradT => pairs * w_conv_t_mul_counts(&self.geom, sh, sw).effectual,
        }
    }

    /// Total multiplications of the naive (zero-inserted) execution —
    /// what a machine that cannot skip zeros performs.
    pub fn naive_muls(&self) -> u64 {
        let pairs = (self.small * self.large) as u64;
        let (sh, sw) = self.small_hw();
        match self.kind {
            ConvKind::S => self.effectual_macs(),
            ConvKind::T => pairs * t_conv_mul_counts(&self.geom, sh, sw).total,
            ConvKind::WGradS => {
                pairs * w_conv_s_mul_counts(&self.geom, self.large_h, self.large_w).total
            }
            ConvKind::WGradT => pairs * w_conv_t_mul_counts(&self.geom, sh, sw).total,
        }
    }

    /// The per-`(of, if)`-pair multiplication census of this phase.
    pub fn mul_counts(&self) -> MulCounts {
        let (sh, sw) = self.small_hw();
        match self.kind {
            ConvKind::S => {
                let eff = (self.geom.kh() * self.geom.kw() * sh * sw) as u64;
                MulCounts {
                    effectual: eff,
                    total: eff,
                }
            }
            ConvKind::T => t_conv_mul_counts(&self.geom, sh, sw),
            ConvKind::WGradS => w_conv_s_mul_counts(&self.geom, self.large_h, self.large_w),
            ConvKind::WGradT => w_conv_t_mul_counts(&self.geom, sh, sw),
        }
    }

    /// Fraction of the naive multiplications that are ineffectual — the
    /// paper's "~64% / ~75%" quantity.
    pub fn ineffectual_fraction(&self) -> f64 {
        self.mul_counts().ineffectual_fraction()
    }

    /// Number of weights this phase reads (`small × large × kh × kw`).
    pub fn weight_count(&self) -> u64 {
        (self.small * self.large * self.geom.kh() * self.geom.kw()) as u64
    }

    /// Number of elements in the phase output.
    pub fn output_count(&self) -> u64 {
        let (c, h, w) = self.output_dims();
        (c * h * w) as u64
    }

    /// Number of (real, non-inserted) elements in the phase input operand.
    pub fn real_input_count(&self) -> u64 {
        let (sh, sw) = self.small_hw();
        match self.kind {
            ConvKind::S | ConvKind::WGradS => (self.large * self.large_h * self.large_w) as u64,
            ConvKind::T | ConvKind::WGradT => (self.small * sh * sw) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dcgan_l1() -> ConvShape {
        let geom = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).unwrap();
        ConvShape::new(ConvKind::S, geom, 64, 3, 64, 64)
    }

    #[test]
    fn s_phase_dims() {
        let p = dcgan_l1();
        assert_eq!(p.naive_input_dims(), (3, 64, 64));
        assert_eq!(p.output_dims(), (64, 32, 32));
        assert_eq!(p.small_hw(), (32, 32));
        assert_eq!(p.effectual_macs(), 64 * 3 * 16 * 1024);
        assert_eq!(p.naive_muls(), p.effectual_macs());
        assert_eq!(p.ineffectual_fraction(), 0.0);
    }

    #[test]
    fn t_phase_dims_and_zero_fraction() {
        let p = dcgan_l1().with_kind(ConvKind::T);
        assert_eq!(p.naive_input_dims(), (64, 63, 63));
        assert_eq!(p.output_dims(), (3, 64, 64));
        let frac = p.ineffectual_fraction();
        assert!((0.70..0.80).contains(&frac), "{frac}");
        assert!(p.naive_muls() > p.effectual_macs());
    }

    #[test]
    fn wgrad_phases_have_4d_outputs() {
        let ps = dcgan_l1().with_kind(ConvKind::WGradS);
        assert_eq!(ps.output_dims(), (64 * 3, 4, 4));
        assert!(ps.kind().is_weight_grad());
        let pt = dcgan_l1().with_kind(ConvKind::WGradT);
        assert_eq!(pt.output_dims(), (64 * 3, 4, 4));
        assert!(pt.ineffectual_fraction() > 0.5);
    }

    #[test]
    fn all_phases_have_comparable_work() {
        // "All the computing phases have the equivalent amount of
        // computations" — within edge effects.
        let base = dcgan_l1().effectual_macs() as f64;
        for kind in [ConvKind::T, ConvKind::WGradS, ConvKind::WGradT] {
            let m = dcgan_l1().with_kind(kind).effectual_macs() as f64;
            let ratio = m / base;
            assert!((0.8..=1.05).contains(&ratio), "{kind:?}: ratio {ratio}");
        }
    }

    #[test]
    fn zero_insertion_flags() {
        assert!(!ConvKind::S.has_inserted_zeros());
        assert!(ConvKind::T.has_inserted_zeros());
        assert!(ConvKind::WGradS.has_inserted_zeros());
        assert!(ConvKind::WGradT.has_inserted_zeros());
        assert!(!ConvKind::T.is_weight_grad());
    }

    #[test]
    fn counts_are_consistent() {
        let p = dcgan_l1();
        assert_eq!(p.weight_count(), 64 * 3 * 16);
        assert_eq!(p.output_count(), 64 * 32 * 32);
        assert_eq!(p.real_input_count(), 3 * 64 * 64);
        let t = p.with_kind(ConvKind::T);
        assert_eq!(t.real_input_count(), 64 * 32 * 32);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_rejected() {
        let geom = ConvGeom::down(8, 8, 4, 4, 2, 4, 4).unwrap();
        let _ = ConvShape::new(ConvKind::S, geom, 0, 3, 8, 8);
    }
}
