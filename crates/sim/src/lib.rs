//! Microarchitecture substrate for the `zfgan` cycle-level simulator.
//!
//! This crate provides the shared vocabulary every architecture model in
//! `zfgan-dataflow` and `zfgan-accel` speaks:
//!
//! * [`ConvShape`] / [`ConvKind`] — a convolution *phase*: geometry, channel
//!   counts and which of the paper's convolution families it belongs to
//!   (`S-CONV`, `T-CONV`, or the two `W-CONV` variants).
//! * [`PhaseStats`] / [`AccessCounts`] — what a dataflow schedule reports:
//!   cycles, effectual MACs, PE occupancy and on-chip buffer accesses
//!   (the paper's Figs. 15–16 quantities).
//! * [`EnergyModel`] — per-event energy costs turning access counts into
//!   energy (Fig. 19's efficiency axis).
//! * [`OnChipBuffer`] / [`BufferSpec`] — capacity-checked on-chip buffer
//!   models with access counters (the In&Out / Data / Error / ∇W / Weight
//!   buffers of paper Fig. 14).
//! * [`DramModel`] — an off-chip bandwidth model (paper Eq. 7's constraint).

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod buffer;
mod conv;
mod dram;
mod energy;
mod stats;
pub mod trace;

pub use buffer::{BufferError, BufferSpec, OnChipBuffer};
pub use conv::{ConvKind, ConvShape};
pub use dram::DramModel;
pub use energy::{EnergyBreakdown, EnergyModel};
pub use stats::{AccessCounts, DramTraffic, PhaseStats};
