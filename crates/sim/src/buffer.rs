//! Capacity-checked on-chip buffer models.
//!
//! The accelerator of paper Fig. 14 builds four kinds of on-chip buffers
//! (In&Out, Data, Error, ∇W, Weight). [`OnChipBuffer`] models one of them:
//! a byte capacity, a current/peak occupancy, and read/write access
//! counters that feed the Fig. 16 access breakdown and the energy model.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use zfgan_tensor::fault::{FaultLog, FaultPlan, FaultSite};

/// A buffer's static description.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufferSpec {
    /// Human-readable name ("In&Out A", "Weight", …).
    pub name: String,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
}

impl BufferSpec {
    /// Creates a spec.
    pub fn new(name: impl Into<String>, capacity_bytes: u64) -> Self {
        Self {
            name: name.into(),
            capacity_bytes,
        }
    }
}

/// Error returned when an allocation would overflow a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferError {
    buffer: String,
    requested: u64,
    free: u64,
}

impl fmt::Display for BufferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer '{}' overflow: requested {} bytes with only {} free",
            self.buffer, self.requested, self.free
        )
    }
}

impl Error for BufferError {}

/// A modelled on-chip SRAM buffer.
///
/// # Example
///
/// ```
/// use zfgan_sim::{BufferSpec, OnChipBuffer};
///
/// let mut buf = OnChipBuffer::new(BufferSpec::new("Weight", 1024));
/// buf.alloc(512)?;
/// buf.record_reads(256);
/// assert_eq!(buf.occupancy_bytes(), 512);
/// assert_eq!(buf.reads(), 256);
/// buf.free(512);
/// # Ok::<(), zfgan_sim::BufferError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnChipBuffer {
    spec: BufferSpec,
    occupancy: u64,
    peak: u64,
    reads: u64,
    writes: u64,
}

impl OnChipBuffer {
    /// Creates an empty buffer.
    pub fn new(spec: BufferSpec) -> Self {
        Self {
            spec,
            occupancy: 0,
            peak: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// The buffer's spec.
    pub fn spec(&self) -> &BufferSpec {
        &self.spec
    }

    /// Current occupancy in bytes.
    pub fn occupancy_bytes(&self) -> u64 {
        self.occupancy
    }

    /// High-water mark of occupancy in bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Total recorded element reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total recorded element writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Reserves `bytes` of space.
    ///
    /// # Errors
    ///
    /// Returns a [`BufferError`] if the buffer would overflow. The
    /// occupancy is unchanged on error.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), BufferError> {
        let free = self.spec.capacity_bytes - self.occupancy;
        if bytes > free {
            return Err(BufferError {
                buffer: self.spec.name.clone(),
                requested: bytes,
                free,
            });
        }
        self.occupancy += bytes;
        self.peak = self.peak.max(self.occupancy);
        Ok(())
    }

    /// Releases `bytes` of space.
    ///
    /// # Panics
    ///
    /// Panics if more is freed than is occupied (a modelling bug).
    pub fn free(&mut self, bytes: u64) {
        assert!(
            bytes <= self.occupancy,
            "freeing {bytes} of {} occupied",
            self.occupancy
        );
        self.occupancy -= bytes;
    }

    /// Records `n` element reads (for access accounting).
    pub fn record_reads(&mut self, n: u64) {
        self.reads += n;
    }

    /// Records `n` element writes.
    pub fn record_writes(&mut self, n: u64) {
        self.writes += n;
    }

    /// Models reading `data` out of this buffer under a fault plan:
    /// records the element reads, then corrupts each word the plan fires
    /// on at [`FaultSite::BufferRead`]. Element `i` is word `base + i` of
    /// the site's index space, so injection is positional and
    /// replay-deterministic. A plan targeting another site only counts
    /// the reads.
    pub fn read_through(
        &mut self,
        base: u64,
        data: &mut [f32],
        plan: &FaultPlan,
        log: &mut FaultLog,
    ) {
        self.record_reads(data.len() as u64);
        plan.corrupt_slice(FaultSite::BufferRead, base, data, log);
    }

    /// Resets counters and occupancy (new experiment, same hardware).
    pub fn reset(&mut self) {
        self.occupancy = 0;
        self.peak = 0;
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_track_peak() {
        let mut b = OnChipBuffer::new(BufferSpec::new("t", 100));
        b.alloc(60).unwrap();
        b.alloc(30).unwrap();
        b.free(50);
        assert_eq!(b.occupancy_bytes(), 40);
        assert_eq!(b.peak_bytes(), 90);
    }

    #[test]
    fn overflow_is_an_error_and_leaves_state() {
        let mut b = OnChipBuffer::new(BufferSpec::new("t", 100));
        b.alloc(80).unwrap();
        let err = b.alloc(30).unwrap_err();
        assert!(err.to_string().contains("overflow"));
        assert_eq!(b.occupancy_bytes(), 80);
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn over_free_panics() {
        let mut b = OnChipBuffer::new(BufferSpec::new("t", 100));
        b.free(1);
    }

    #[test]
    fn read_through_counts_reads_and_injects_deterministically() {
        use zfgan_tensor::fault::FaultKind;
        let plan = FaultPlan::new(
            11,
            0.05,
            FaultSite::BufferRead,
            FaultKind::BitFlip { bit: 31 },
        )
        .unwrap();
        let mut b = OnChipBuffer::new(BufferSpec::new("Data", 4096));
        let mut data = vec![1.0f32; 500];
        let mut log = FaultLog::default();
        b.read_through(0, &mut data, &plan, &mut log);
        assert_eq!(b.reads(), 500);
        assert!(log.fired > 0);
        assert_eq!(
            data.iter().filter(|&&v| v == -1.0).count() as u64,
            log.effective
        );
        // Replay is bit-identical.
        let mut replay = vec![1.0f32; 500];
        let mut log2 = FaultLog::default();
        b.read_through(0, &mut replay, &plan, &mut log2);
        assert_eq!(data, replay);
        // A plan for another site leaves data alone but still counts reads.
        let other = FaultPlan::new(
            11,
            1.0,
            FaultSite::DramBurst,
            FaultKind::BitFlip { bit: 31 },
        )
        .unwrap();
        let mut clean = vec![1.0f32; 10];
        let mut log3 = FaultLog::default();
        b.read_through(0, &mut clean, &other, &mut log3);
        assert_eq!(clean, vec![1.0f32; 10]);
        assert_eq!(log3.fired, 0);
        assert_eq!(b.reads(), 1010);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let mut b = OnChipBuffer::new(BufferSpec::new("t", 100));
        b.record_reads(5);
        b.record_writes(7);
        assert_eq!((b.reads(), b.writes()), (5, 7));
        b.reset();
        assert_eq!(
            (b.reads(), b.writes(), b.occupancy_bytes(), b.peak_bytes()),
            (0, 0, 0, 0)
        );
    }
}
