//! Offline stand-in for the slice of `serde` this workspace uses.
//!
//! Real serde is format-agnostic via a visitor pipeline; this shim fixes
//! the data model to a JSON-shaped [`Value`] tree, which is the only
//! format the workspace serialises to (`serde_json`). The public names
//! (`Serialize`, `Deserialize`, `serde::{Serialize, Deserialize}` derive
//! macros behind the `derive` feature) match upstream so call sites
//! compile unchanged.
//!
//! Round-trip guarantee: `f32`/`f64` survive `to_value → to_string →
//! from_str → from_value` **bit-exactly** for finite values — floats ride
//! through `f64` (f32→f64 is exact) and are printed with Rust's shortest
//! round-trip `Display`. The checkpoint tests rely on this.

mod value;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use zfgan_serde_derive::{Deserialize, Serialize};

/// A deserialisation/serialisation error (message-only, like
/// `serde_json::Error` for the purposes of this workspace).
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Builds an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// The conventional "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns an error when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 → f64 is exact, so the round-trip back through `as f32`
        // recovers the original bits for every finite value.
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string to satisfy `'static` — upstream serde
    /// expresses this with deserializer lifetimes the shim doesn't carry.
    /// Only label-like fields (`lane: &'static str`) hit this path, and
    /// only when such a struct is actually deserialised.
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers / references
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(Deserialize::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expect = [$($idx),+].len();
                        if items.len() != expect {
                            return Err(Error::custom("tuple arity mismatch"));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::custom("expected array for tuple")),
                }
            }
        }
    )*};
}
ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
