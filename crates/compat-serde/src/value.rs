//! The JSON-shaped data model shared by `serde` (shim) and `serde_json`
//! (shim): [`Value`], [`Number`], and an insertion-ordered [`Map`].

use std::fmt;

/// A JSON value tree — the fixed data model of the compat serde stack.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Map),
}

impl Value {
    /// The object form, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array form, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string form, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON — identical to `serde_json::to_string`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes `s` as a JSON string literal (quotes, `\`-escapes, `\u00XX`
/// for control characters — serde_json's escaping rules).
pub(crate) fn write_json_string(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{8}' => f.write_str("\\b")?,
            '\u{c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

/// A JSON number: a non-negative integer, a negative integer, or a float.
///
/// Integral floats print without a fractional part (Rust `Display`), so
/// they re-parse as integers; every `as_f64` consumer sees the same value
/// either way, which keeps `f32`/`f64` round-trips bit-exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, Copy, PartialEq)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// A non-negative integer number.
    pub fn from_u64(n: u64) -> Self {
        Number(N::PosInt(n))
    }

    /// A signed integer number.
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number(N::PosInt(n as u64))
        } else {
            Number(N::NegInt(n))
        }
    }

    /// A float number (NaN/∞ have no JSON form and print as `null`).
    pub fn from_f64(f: f64) -> Self {
        Number(N::Float(f))
    }

    /// The value widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.0 {
            N::PosInt(n) => n as f64,
            N::NegInt(n) => n as f64,
            N::Float(f) => f,
        })
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::PosInt(n) => Some(n),
            N::NegInt(_) => None,
            N::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            N::Float(_) => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::PosInt(n) => i64::try_from(n).ok(),
            N::NegInt(n) => Some(n),
            N::Float(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            N::Float(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::PosInt(n) => write!(f, "{n}"),
            N::NegInt(n) => write!(f, "{n}"),
            // Rust's float Display is the shortest string that re-parses
            // to the same bits — exactly what JSON round-tripping needs.
            // Integral values keep a trailing `.0` (upstream serde_json's
            // ryu does the same), so floats never print as integers and
            // regenerated sidecars stay byte-identical to committed ones.
            N::Float(x) if x.is_finite() && x.fract() == 0.0 && x.abs() < 1e16 => {
                write!(f, "{x:.1}")
            }
            N::Float(x) if x.is_finite() => write!(f, "{x}"),
            N::Float(_) => f.write_str("null"),
        }
    }
}

/// An insertion-ordered string→[`Value`] map (the object representation).
///
/// Backed by a `Vec` of pairs: objects in this workspace are tiny (struct
/// fields), so linear lookup beats hashing and preserves field order,
/// which keeps serialised output deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts a key (replacing any existing entry with the same key,
    /// keeping its original position).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z", Value::Null);
        m.insert("a", Value::Bool(true));
        m.insert("z", Value::Bool(false)); // replace keeps position
        let keys: Vec<&String> = m.keys().collect();
        assert_eq!(keys, ["z", "a"]);
        assert_eq!(m.get("z"), Some(&Value::Bool(false)));
    }

    #[test]
    fn float_display_is_round_trip_exact() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, -2.5, 12345678.9] {
            let s = format!("{}", Number::from_f64(x));
            assert_eq!(s.parse::<f64>().unwrap(), x);
        }
    }

    #[test]
    fn string_escaping() {
        let v = Value::String("a\"b\\c\n\u{1}".to_string());
        assert_eq!(v.to_string(), r#""a\"b\\c\n\u0001""#);
    }
}
