//! Property-based gradient checks: for random layer configurations
//! (direction, activation, geometry), the analytic backward pass must
//! match finite differences and satisfy the adjoint identity.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan_nn::{Activation, ConvLayer, Direction};
use zfgan_tensor::{ConvGeom, Fmaps};

#[derive(Debug, Clone, Copy)]
struct Cfg {
    direction: Direction,
    activation: Activation,
    stride: usize,
    small_hw: usize,
    small_c: usize,
    large_c: usize,
    seed: u64,
}

fn arb_cfg() -> impl Strategy<Value = Cfg> {
    (
        0usize..2,
        0usize..4,
        1usize..=2,
        2usize..=3,
        1usize..=3,
        1usize..=3,
        any::<u64>(),
    )
        .prop_map(|(dir, act, stride, small_hw, small_c, large_c, seed)| Cfg {
            direction: if dir == 0 {
                Direction::Down
            } else {
                Direction::Up
            },
            activation: match act {
                0 => Activation::Identity,
                1 => Activation::Relu,
                2 => Activation::LeakyRelu { alpha: 0.3 },
                _ => Activation::Tanh,
            },
            stride,
            small_hw,
            small_c,
            large_c,
            seed,
        })
}

fn build(cfg: &Cfg) -> (ConvLayer, Fmaps<f32>) {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let k = 3usize;
    let large_hw = cfg.small_hw * cfg.stride;
    let geom = ConvGeom::down(
        large_hw,
        large_hw,
        k,
        k,
        cfg.stride,
        cfg.small_hw,
        cfg.small_hw,
    )
    .expect("valid by construction");
    let (in_shape, layer) = match cfg.direction {
        Direction::Down => {
            let in_shape = (cfg.large_c, large_hw, large_hw);
            (
                in_shape,
                ConvLayer::random(
                    Direction::Down,
                    geom,
                    cfg.small_c,
                    cfg.large_c,
                    cfg.activation,
                    in_shape,
                    0.5,
                    &mut rng,
                )
                .expect("consistent"),
            )
        }
        Direction::Up => {
            let in_shape = (cfg.small_c, cfg.small_hw, cfg.small_hw);
            (
                in_shape,
                ConvLayer::random(
                    Direction::Up,
                    geom,
                    cfg.small_c,
                    cfg.large_c,
                    cfg.activation,
                    in_shape,
                    0.5,
                    &mut rng,
                )
                .expect("consistent"),
            )
        }
    };
    let x = Fmaps::random(in_shape.0, in_shape.1, in_shape.2, 0.8, &mut rng);
    (layer, x)
}

/// Whether any pre-activation changes sign between the two forwards — the
/// perturbation segment then crosses a ReLU-family kink and a finite
/// difference is not a valid derivative estimate there.
fn crosses_a_kink(a: &Fmaps<f32>, b: &Fmaps<f32>) -> bool {
    a.iter()
        .zip(b.iter())
        .any(|(&x, &y)| (x > 0.0) != (y > 0.0) && (x.abs() > 1e-7 || y.abs() > 1e-7))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// d(Σ output)/d(input) from the analytic backward pass matches central
    /// finite differences at random coordinates.
    #[test]
    fn input_gradient_matches_finite_differences(cfg in arb_cfg()) {
        let (layer, x) = build(&cfg);
        let (pre, post) = layer.forward(&x).unwrap();
        let (oc, oh, ow) = layer.out_shape();
        let ones = Fmaps::from_vec(oc, oh, ow, vec![1.0; oc * oh * ow]);
        let (dx, _) = layer.backward(&ones, &pre, &x).unwrap();
        let _ = post; // forward cached only for the backward inputs
        let eps = 1e-3f32;
        let (c, h, w) = layer.in_shape();
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xF00D);
        use rand::Rng;
        for _ in 0..3 {
            let (ci, yi, xi) =
                (rng.gen_range(0..c), rng.gen_range(0..h), rng.gen_range(0..w));
            let mut plus = x.clone();
            *plus.at_mut(ci, yi, xi) += eps;
            let mut minus = x.clone();
            *minus.at_mut(ci, yi, xi) -= eps;
            let (pre_p, post_p) = layer.forward(&plus).unwrap();
            let (pre_m, post_m) = layer.forward(&minus).unwrap();
            if crosses_a_kink(&pre_p, &pre_m) {
                continue; // not differentiable on this segment
            }
            let fd = (post_p.sum_f64() - post_m.sum_f64()) / (2.0 * f64::from(eps));
            let an = f64::from(*dx.at(ci, yi, xi));
            prop_assert!(
                (fd - an).abs() < 3e-2 * (1.0 + an.abs()),
                "{:?} dx[{ci}][{yi}][{xi}]: fd={fd} analytic={an}",
                cfg
            );
        }
    }

    /// Weight gradients match finite differences at random coordinates.
    #[test]
    fn weight_gradient_matches_finite_differences(cfg in arb_cfg()) {
        let (layer, x) = build(&cfg);
        let (pre, post) = layer.forward(&x).unwrap();
        let (oc, oh, ow) = layer.out_shape();
        let ones = Fmaps::from_vec(oc, oh, ow, vec![1.0; oc * oh * ow]);
        let (_, grads) = layer.backward(&ones, &pre, &x).unwrap();
        let base = post.sum_f64();
        let eps = 1e-3f32;
        let w = layer.weights();
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xBEEF);
        use rand::Rng;
        for _ in 0..3 {
            let (of, if_, ky, kx) = (
                rng.gen_range(0..w.n_of()),
                rng.gen_range(0..w.n_if()),
                rng.gen_range(0..w.kh()),
                rng.gen_range(0..w.kw()),
            );
            let mut perturbed = layer.clone();
            let mut delta = zfgan_tensor::Kernels::zeros(w.n_of(), w.n_if(), w.kh(), w.kw());
            *delta.at_mut(of, if_, ky, kx) = -eps; // apply_update subtracts
            let zero_bias = vec![0.0; oc];
            perturbed.apply_update(&delta, &zero_bias);
            let (pre_p, post_p) = perturbed.forward(&x).unwrap();
            if crosses_a_kink(&pre_p, &pre) {
                continue; // not differentiable on this segment
            }
            let fd = (post_p.sum_f64() - base) / f64::from(eps);
            let an = f64::from(*grads.weights.at(of, if_, ky, kx));
            prop_assert!(
                (fd - an).abs() < 3e-2 * (1.0 + an.abs()),
                "{:?} dw[{of}][{if_}][{ky}][{kx}]: fd={fd} analytic={an}",
                cfg
            );
        }
    }
}
