//! Checkpoint robustness: corrupted payloads must come back as errors —
//! never panics — and rollback-restored trainers must resume training
//! bit-identically (the contract the `SupervisedTrainer` relies on).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan_nn::{Checkpoint, GanPair, GanTrainer, SyncMode, TrainerConfig};

fn tiny_checkpoint(seed: u64) -> Checkpoint {
    let mut rng = SmallRng::seed_from_u64(seed);
    Checkpoint::from_pair(&GanPair::tiny(&mut rng))
}

#[test]
fn json_round_trip_is_bit_exact_and_validates() {
    let cp = tiny_checkpoint(1);
    let json = cp.to_json();
    let restored = Checkpoint::from_json(&json).unwrap();
    let pair = restored.into_pair().unwrap();
    let orig = cp.into_pair().unwrap();
    for (a, b) in pair
        .generator()
        .layers()
        .iter()
        .zip(orig.generator().layers())
    {
        assert_eq!(a.weights().as_slice(), b.weights().as_slice());
        assert_eq!(a.bias(), b.bias());
    }
}

#[test]
fn truncated_payloads_error_at_every_length() {
    let json = tiny_checkpoint(2).to_json();
    // Every proper prefix is invalid JSON or an incomplete object; all of
    // them must error and none may panic. Step through a spread of cut
    // points rather than all of them (the payload is tens of kilobytes).
    let step = (json.len() / 97).max(1);
    for cut in (0..json.len()).step_by(step) {
        let prefix = &json[..cut];
        assert!(
            Checkpoint::from_json(prefix).is_err(),
            "prefix of length {cut} unexpectedly parsed"
        );
    }
}

#[test]
fn edited_fields_are_rejected_with_descriptive_errors() {
    let json = tiny_checkpoint(3).to_json();

    // Zero stride: parses fine, must fail validation (a zero stride would
    // otherwise divide-by-zero deep inside a convolution).
    let zero_stride = json.replacen("\"stride\":2", "\"stride\":0", 1);
    assert_ne!(zero_stride, json, "fixture lost its stride field");
    let err = Checkpoint::from_json(&zero_stride).unwrap_err();
    assert!(err.to_string().contains("stride"), "{err}");

    // NaN smuggled into a weight: serde_json can't represent NaN, so this
    // arrives as a parse error — still an error, not a panic.
    let nan_weight = json.replacen("[", "[null,", 1);
    assert!(Checkpoint::from_json(&nan_weight).is_err());

    // Non-finite via a huge exponent: parses as +inf is not valid JSON
    // either, so use a magnitude that parses but trips the finite check.
    // (1e39 overflows f32 to +inf during deserialisation.)
    let huge = json.replacen("\"bias\":[0.0", "\"bias\":[1e39", 1);
    if huge != json {
        let err = Checkpoint::from_json(&huge).unwrap_err();
        assert!(err.to_string().contains("finite"), "{err}");
    }
}

#[test]
fn shape_mismatched_pairs_error_not_panic() {
    let mut rng = SmallRng::seed_from_u64(4);
    let pair = GanPair::tiny(&mut rng);
    // Two critics: the generator role is filled by a network whose output
    // is 1×1×1, not the critic's 1×8×8 input. Each network is valid on
    // its own, so the payload parses — the *pairing* must fail.
    let dis_json = serde_json::to_string(pair.discriminator()).unwrap();
    let swapped = format!("{{\"generator\":{dis_json},\"discriminator\":{dis_json}}}");
    let bad = Checkpoint::from_json(&swapped).unwrap();
    assert!(bad.into_pair().is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Rollback contract: restoring a snapshot and replaying with the same
    /// RNG state reproduces the exact same parameters, bit for bit.
    #[test]
    fn restored_trainers_resume_bit_identically(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut trainer = GanTrainer::new(
            GanPair::tiny(&mut rng),
            TrainerConfig {
                mode: SyncMode::Deferred,
                n_critic: 1,
                ..TrainerConfig::default()
            },
        );
        let mut step_rng = SmallRng::seed_from_u64(seed ^ 0xD1CE);
        let _ = trainer.train_iteration(2, &mut step_rng);

        let snapshot = trainer.snapshot();
        let rng_snapshot = step_rng.clone();
        let (d1, g1) = trainer.train_iteration(2, &mut step_rng);
        let after_first: Vec<Vec<f32>> = trainer
            .gan()
            .discriminator()
            .layers()
            .iter()
            .map(|l| l.weights().as_slice().to_vec())
            .collect();

        // Wander off, then roll back and replay.
        let _ = trainer.train_iteration(2, &mut step_rng);
        trainer.restore(&snapshot);
        let mut replay_rng = rng_snapshot;
        let (d2, g2) = trainer.train_iteration(2, &mut replay_rng);

        prop_assert_eq!(d1, d2);
        prop_assert_eq!(g1, g2);
        for (layer, expect) in trainer
            .gan()
            .discriminator()
            .layers()
            .iter()
            .zip(&after_first)
        {
            let now = layer.weights().as_slice();
            prop_assert_eq!(now.len(), expect.len());
            for (a, b) in now.iter().zip(expect) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
