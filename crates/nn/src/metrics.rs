//! Training-quality metrics: critic separation and a lightweight
//! distribution distance for monitoring GAN convergence without labels.

use zfgan_tensor::Fmaps;

use crate::network::ConvNet;
use crate::wgan;

/// The critic's mean separation margin: `mean D(real) − mean D(fake)`.
///
/// This is the Wasserstein estimate computed on held-out batches; a
/// well-trained critic drives it up, a collapsing one lets it fall to 0.
///
/// # Panics
///
/// Panics if either batch is empty or shapes do not match the critic.
pub fn critic_separation(critic: &ConvNet, reals: &[Fmaps<f32>], fakes: &[Fmaps<f32>]) -> f64 {
    assert!(
        !reals.is_empty() && !fakes.is_empty(),
        "batches must be non-empty"
    );
    let mean_score = |batch: &[Fmaps<f32>]| -> f64 {
        batch
            .iter()
            .map(|x| wgan::score(critic.forward(x).expect("image shape").output()))
            .sum::<f64>()
            / batch.len() as f64
    };
    mean_score(reals) - mean_score(fakes)
}

/// Fraction of real samples the critic ranks above the *median* fake score
/// — a scale-free accuracy proxy in `[0, 1]`, 0.5 = chance.
///
/// # Panics
///
/// Panics if either batch is empty.
pub fn ranking_accuracy(critic: &ConvNet, reals: &[Fmaps<f32>], fakes: &[Fmaps<f32>]) -> f64 {
    assert!(
        !reals.is_empty() && !fakes.is_empty(),
        "batches must be non-empty"
    );
    let score = |x: &Fmaps<f32>| wgan::score(critic.forward(x).expect("image shape").output());
    let mut fake_scores: Vec<f64> = fakes.iter().map(score).collect();
    fake_scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    let median = fake_scores[fake_scores.len() / 2];
    reals.iter().filter(|x| score(x) > median).count() as f64 / reals.len() as f64
}

/// First/second-moment distance between two image batches: the Euclidean
/// gap between per-pixel means plus the gap between global standard
/// deviations — a cheap, label-free stand-in for FID that decreases as the
/// Generator's distribution approaches the data.
///
/// # Panics
///
/// Panics if the batches are empty or have mismatched shapes.
pub fn moment_distance(a: &[Fmaps<f32>], b: &[Fmaps<f32>]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "batches must be non-empty");
    assert_eq!(a[0].shape(), b[0].shape(), "image shapes must match");
    let stats = |batch: &[Fmaps<f32>]| -> (Vec<f64>, f64) {
        let n = batch.len() as f64;
        let len = batch[0].len();
        let mut mean = vec![0.0f64; len];
        for img in batch {
            for (m, &v) in mean.iter_mut().zip(img.as_slice()) {
                *m += f64::from(v) / n;
            }
        }
        let mut var = 0.0f64;
        for img in batch {
            for (m, &v) in mean.iter().zip(img.as_slice()) {
                var += (f64::from(v) - m).powi(2);
            }
        }
        var /= n * len as f64;
        (mean, var.sqrt())
    };
    let (ma, sa) = stats(a);
    let (mb, sb) = stats(b);
    let mean_gap = ma
        .iter()
        .zip(&mb)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt()
        / (ma.len() as f64).sqrt();
    mean_gap + (sa - sb).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::GanPair;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn separation_is_zero_against_itself() {
        let mut rng = SmallRng::seed_from_u64(1);
        let pair = GanPair::tiny(&mut rng);
        let batch = pair.sample_real_batch(4, &mut rng);
        let sep = critic_separation(pair.discriminator(), &batch, &batch);
        assert!(sep.abs() < 1e-9);
    }

    #[test]
    fn ranking_accuracy_is_chance_for_identical_batches() {
        let mut rng = SmallRng::seed_from_u64(2);
        let pair = GanPair::tiny(&mut rng);
        let batch = pair.sample_real_batch(9, &mut rng);
        let acc = ranking_accuracy(pair.discriminator(), &batch, &batch);
        // Scores above their own median: close to 1/2 by construction.
        assert!((0.3..=0.7).contains(&acc), "acc {acc}");
    }

    #[test]
    fn moment_distance_separates_distributions() {
        let mut rng = SmallRng::seed_from_u64(3);
        let pair = GanPair::tiny(&mut rng);
        let reals = pair.sample_real_batch(16, &mut rng);
        let more_reals = pair.sample_real_batch(16, &mut rng);
        // Random generator noise vs structured blobs.
        let noise: Vec<_> = (0..16)
            .map(|_| zfgan_tensor::Fmaps::random(1, 8, 8, 1.0, &mut rng))
            .collect();
        let close = moment_distance(&reals, &more_reals);
        let far = moment_distance(&reals, &noise);
        assert!(far > 1.5 * close, "close {close} far {far}");
        assert!(moment_distance(&reals, &reals) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_batch_rejected() {
        let mut rng = SmallRng::seed_from_u64(4);
        let pair = GanPair::tiny(&mut rng);
        let _ = critic_separation(pair.discriminator(), &[], &[]);
    }
}
