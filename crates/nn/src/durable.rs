//! Durable training state: everything needed to resume an interrupted
//! training run **bit-identically**, serialised through the
//! crash-consistent `zfgan-store` envelope.
//!
//! A [`DurableSnapshot`] is the closure of a training run's deterministic
//! state: the trainer configuration, both networks, both optimizers'
//! moment accumulators, the step RNG's raw state words, and the loss
//! records produced so far. [`DurableSnapshot::resume`] revalidates every
//! piece with a typed [`CheckpointError`], so a tampered or
//! cross-configuration snapshot is a one-line diagnosis, never a silently
//! different trajectory.
//!
//! [`DurableCheckpointer`] owns the store plumbing: it publishes a
//! snapshot every `every` iterations under one key, retains the last few
//! generations, and on load walks the fallback ladder past corrupt or
//! invalid generations.

use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use zfgan_store::{fnv64, Store, StoreConfig};

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::optimizer::Optimizer;
use crate::trainer::{GanTrainer, TrainerConfig, TrainerState};

/// One completed training iteration's losses — the deterministic record a
/// resumed run must reproduce exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainRecord {
    /// 1-based iteration number.
    pub iteration: u64,
    /// Critic loss of the iteration's last critic update.
    pub dis_loss: f64,
    /// Generator loss.
    pub gen_loss: f64,
    /// Wasserstein estimate of the iteration's last critic update.
    pub wasserstein: f64,
}

/// A complete, serialisable snapshot of a training run at an iteration
/// boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DurableSnapshot {
    /// Completed iterations at capture time.
    pub iteration: u64,
    /// The trainer configuration the run was started with.
    pub config: TrainerConfig,
    /// Both networks.
    pub checkpoint: Checkpoint,
    /// Generator optimizer (moment accumulators and step count).
    pub opt_g: Optimizer,
    /// Discriminator optimizer.
    pub opt_d: Optimizer,
    /// The step RNG's xoshiro256++ state words (as `(s0, s1, s2, s3)`).
    pub rng: (u64, u64, u64, u64),
    /// Loss records of every completed iteration, in order.
    pub records: Vec<TrainRecord>,
}

impl DurableSnapshot {
    /// Captures a snapshot from a known-good [`TrainerState`] plus the
    /// run's step RNG and records.
    pub fn capture(
        state: &TrainerState,
        config: &TrainerConfig,
        rng: &SmallRng,
        iteration: u64,
        records: &[TrainRecord],
    ) -> Self {
        let (opt_g, opt_d) = state.optimizers();
        let s = rng.state();
        Self {
            iteration,
            config: *config,
            checkpoint: Checkpoint::from_pair(state.gan()),
            opt_g: opt_g.clone(),
            opt_d: opt_d.clone(),
            rng: (s[0], s[1], s[2], s[3]),
            records: records.to_vec(),
        }
    }

    /// Serialises to the canonical JSON payload published to the store.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialisation is infallible")
    }

    /// Parses a snapshot payload (structural only — [`resume`] does the
    /// semantic validation).
    ///
    /// [`resume`]: DurableSnapshot::resume
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Parse`] if the JSON does not parse.
    pub fn from_json(json: &str) -> Result<Self, CheckpointError> {
        serde_json::from_str(json).map_err(|e| CheckpointError::Parse(e.to_string()))
    }

    /// Validates every piece and rebuilds the run: a trainer whose
    /// networks and optimizer moments are bit-identical to the captured
    /// state, the step RNG positioned exactly where it was, and the
    /// completed-iteration count and records.
    ///
    /// # Errors
    ///
    /// A typed [`CheckpointError`] naming the failing invariant: network
    /// validation, pair compatibility, config validity, optimizer shape,
    /// record continuity, or a degenerate RNG state.
    #[allow(clippy::type_complexity)]
    pub fn resume(self) -> Result<(GanTrainer, SmallRng, u64, Vec<TrainRecord>), CheckpointError> {
        self.config
            .validate()
            .map_err(|e| CheckpointError::InvalidState {
                what: "config",
                reason: e.to_string(),
            })?;
        if self.rng == (0, 0, 0, 0) {
            return Err(CheckpointError::InvalidState {
                what: "rng",
                reason: "all-zero xoshiro state is degenerate".into(),
            });
        }
        if self.records.len() as u64 != self.iteration {
            return Err(CheckpointError::InvalidState {
                what: "records",
                reason: format!(
                    "{} records for {} completed iterations",
                    self.records.len(),
                    self.iteration
                ),
            });
        }
        for (i, r) in self.records.iter().enumerate() {
            if r.iteration != i as u64 + 1 {
                return Err(CheckpointError::InvalidState {
                    what: "records",
                    reason: format!(
                        "record {i} is iteration {}, expected {}",
                        r.iteration,
                        i + 1
                    ),
                });
            }
        }
        let pair = self.checkpoint.into_pair()?;
        let trainer =
            GanTrainer::from_parts(pair, self.config, self.opt_g, self.opt_d).map_err(|e| {
                CheckpointError::InvalidState {
                    what: "optimizer",
                    reason: e.to_string(),
                }
            })?;
        let (s0, s1, s2, s3) = self.rng;
        let rng = SmallRng::from_state([s0, s1, s2, s3]);
        Ok((trainer, rng, self.iteration, self.records))
    }
}

/// Canonical config hash of a training run: FNV-64 over the serialised
/// trainer config plus the run's seed and batch size. Snapshots published
/// under a different hash are skipped on resume — a resumed run never
/// continues someone else's trajectory.
pub fn run_config_hash(config: &TrainerConfig, seed: u64, batch: usize) -> u64 {
    let canonical = format!(
        "{}|seed={seed}|batch={batch}",
        serde_json::to_string(config).expect("config serialisation is infallible")
    );
    fnv64(canonical.as_bytes())
}

/// Store plumbing for periodic snapshot publication and resume.
#[derive(Debug)]
pub struct DurableCheckpointer {
    store: Store,
    key: String,
    config_hash: u64,
    every: u64,
}

impl DurableCheckpointer {
    /// Wraps an open store. `every` is the publication period in
    /// iterations (1 = every iteration).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::InvalidState`] if `every == 0`.
    pub fn new(
        store: Store,
        key: impl Into<String>,
        config_hash: u64,
        every: u64,
    ) -> Result<Self, CheckpointError> {
        if every == 0 {
            return Err(CheckpointError::InvalidState {
                what: "checkpointer",
                reason: "publication period must be >= 1".into(),
            });
        }
        Ok(Self {
            store,
            key: key.into(),
            config_hash,
            every,
        })
    }

    /// Opens (creating) a store under `dir` with `keep` retained
    /// generations and wraps it.
    ///
    /// # Errors
    ///
    /// Propagates store-open failures as [`CheckpointError::Store`].
    pub fn open_dir(
        dir: impl Into<std::path::PathBuf>,
        key: impl Into<String>,
        config_hash: u64,
        every: u64,
        keep: usize,
    ) -> Result<Self, CheckpointError> {
        let store = Store::open(
            dir,
            StoreConfig {
                keep,
                ..StoreConfig::default()
            },
        )
        .map_err(|e| CheckpointError::Store(e.to_string()))?;
        Self::new(store, key, config_hash, every)
    }

    /// Whether iteration `iteration` is a publication point.
    pub fn is_due(&self, iteration: u64) -> bool {
        iteration.is_multiple_of(self.every)
    }

    /// Publishes a snapshot as the next generation, returning its number.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Store`] if the durability layer fails.
    pub fn publish(&mut self, snapshot: &DurableSnapshot) -> Result<u64, CheckpointError> {
        self.store
            .publish(&self.key, self.config_hash, snapshot.to_json().as_bytes())
            .map_err(|e| CheckpointError::Store(e.to_string()))
    }

    /// Loads the newest snapshot generation that (a) passes the envelope
    /// CRCs, (b) was published under this checkpointer's config hash and
    /// (c) parses as a snapshot — falling back past generations that
    /// fail any of those. Returns the generation, the snapshot, and
    /// one-line notes for every skipped generation (newest first).
    ///
    /// `Ok(None)` means the key has never been published.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Store`] if generations exist but none
    /// is valid, or on I/O failure.
    #[allow(clippy::type_complexity)]
    pub fn load_latest(
        &mut self,
    ) -> Result<Option<(u64, DurableSnapshot, Vec<String>)>, CheckpointError> {
        let expected = self.config_hash;
        let loaded = self
            .store
            .load_latest_where(&self.key, |env| {
                if env.config_hash != expected {
                    return Err(format!(
                        "config hash {:#018x} does not match expected {expected:#018x}",
                        env.config_hash
                    ));
                }
                let json = std::str::from_utf8(&env.payload)
                    .map_err(|e| format!("payload is not UTF-8: {e}"))?;
                DurableSnapshot::from_json(json)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            })
            .map_err(|e| CheckpointError::Store(e.to_string()))?;
        let Some(loaded) = loaded else {
            return Ok(None);
        };
        let json = std::str::from_utf8(&loaded.payload)
            .map_err(|e| CheckpointError::Parse(format!("payload is not UTF-8: {e}")))?;
        let snapshot = DurableSnapshot::from_json(json)?;
        let skipped = loaded
            .skipped
            .iter()
            .map(|(g, why)| format!("generation {g} skipped: {why}"))
            .collect();
        Ok(Some((loaded.generation, snapshot, skipped)))
    }

    /// The underlying store (crash hooks, corruption campaigns).
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::GanPair;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "zfgan-durable-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_trainer(seed: u64) -> GanTrainer {
        let mut rng = SmallRng::seed_from_u64(seed);
        GanTrainer::new(
            GanPair::tiny(&mut rng),
            TrainerConfig {
                n_critic: 1,
                ..TrainerConfig::default()
            },
        )
    }

    #[test]
    fn snapshot_resume_is_bit_identical() {
        let mut trainer = small_trainer(42);
        let mut rng = SmallRng::seed_from_u64(43);
        let mut records = Vec::new();
        for i in 1..=3u64 {
            let (d, g) = trainer.train_iteration(2, &mut rng);
            records.push(TrainRecord {
                iteration: i,
                dis_loss: d.dis_loss,
                gen_loss: g.gen_loss,
                wasserstein: d.wasserstein_estimate,
            });
        }
        let state = trainer.snapshot();
        let snap = DurableSnapshot::capture(&state, trainer.config(), &rng, 3, &records);

        // Round-trip through JSON (what the store persists).
        let snap = DurableSnapshot::from_json(&snap.to_json()).expect("round trip");
        let (mut resumed, mut resumed_rng, iter, resumed_records) = snap.resume().expect("resume");
        assert_eq!(iter, 3);
        assert_eq!(resumed_records, records);

        // Both trajectories must agree bit-for-bit from here on.
        let (d1, g1) = trainer.train_iteration(2, &mut rng);
        let (d2, g2) = resumed.train_iteration(2, &mut resumed_rng);
        assert_eq!(d1, d2);
        assert_eq!(g1, g2);
        assert_eq!(rng.state(), resumed_rng.state(), "RNG streams diverged");
    }

    #[test]
    fn tampered_snapshots_fail_with_typed_errors() {
        let trainer = small_trainer(50);
        let rng = SmallRng::seed_from_u64(51);
        let state = trainer.snapshot();
        let good = DurableSnapshot::capture(&state, trainer.config(), &rng, 0, &[]);

        let mut zero_rng = good.clone();
        zero_rng.rng = (0, 0, 0, 0);
        assert!(matches!(
            zero_rng.resume(),
            Err(CheckpointError::InvalidState { what: "rng", .. })
        ));

        let mut bad_records = good.clone();
        bad_records.iteration = 5;
        assert!(matches!(
            bad_records.resume(),
            Err(CheckpointError::InvalidState {
                what: "records",
                ..
            })
        ));

        let mut bad_config = good;
        bad_config.config.n_critic = 0;
        assert!(matches!(
            bad_config.resume(),
            Err(CheckpointError::InvalidState { what: "config", .. })
        ));
    }

    #[test]
    fn checkpointer_publishes_and_reloads() {
        let trainer = small_trainer(60);
        let rng = SmallRng::seed_from_u64(61);
        let hash = run_config_hash(trainer.config(), 60, 2);
        let mut cp =
            DurableCheckpointer::open_dir(temp_dir("pubload"), "train", hash, 2, 3).expect("open");
        assert!(cp.is_due(2) && cp.is_due(4) && !cp.is_due(3));
        assert!(cp.load_latest().expect("empty load").is_none());

        let snap = DurableSnapshot::capture(&trainer.snapshot(), trainer.config(), &rng, 0, &[]);
        let gen = cp.publish(&snap).expect("publish");
        assert_eq!(gen, 1);
        let (g, loaded, skipped) = cp.load_latest().expect("load").expect("present");
        assert_eq!(g, 1);
        assert!(skipped.is_empty());
        assert_eq!(loaded.to_json(), snap.to_json(), "payload must round-trip");
    }

    #[test]
    fn checkpointer_skips_foreign_config_hash() {
        let trainer = small_trainer(70);
        let rng = SmallRng::seed_from_u64(71);
        let snap = DurableSnapshot::capture(&trainer.snapshot(), trainer.config(), &rng, 0, &[]);
        let dir = temp_dir("foreign");
        {
            let mut other =
                DurableCheckpointer::open_dir(&dir, "train", 0xdead, 1, 3).expect("open");
            other.publish(&snap).expect("publish under foreign hash");
        }
        let mut cp = DurableCheckpointer::open_dir(&dir, "train", 0xbeef, 1, 3).expect("open");
        match cp.load_latest() {
            Err(CheckpointError::Store(msg)) => {
                assert!(msg.contains("no valid generation"), "{msg}")
            }
            other => panic!("foreign-hash generation must not load: {other:?}"),
        }
    }

    #[test]
    fn run_config_hash_separates_runs() {
        let cfg = TrainerConfig::default();
        let base = run_config_hash(&cfg, 1, 2);
        assert_ne!(base, run_config_hash(&cfg, 2, 2), "seed must change hash");
        assert_ne!(base, run_config_hash(&cfg, 1, 4), "batch must change hash");
        let mut other = cfg;
        other.n_critic += 1;
        assert_ne!(
            base,
            run_config_hash(&other, 1, 2),
            "config must change hash"
        );
        assert_eq!(base, run_config_hash(&TrainerConfig::default(), 1, 2));
    }
}
