//! Data-parallel batch processing — how the *GPU* baseline of the paper's
//! Fig. 19 exploits the synchronized algorithm.
//!
//! The synchronized trainer's per-sample forward/backward passes are
//! mutually independent (that independence is also what deferred
//! synchronization exploits, just in time rather than in space), so they
//! parallelise across threads with a deterministic ordered reduction:
//! the result is **bit-identical** to the sequential synchronized trainer
//! and therefore also to the deferred one.
//!
//! This is the paper's taxonomy made concrete: GPUs spend the batch
//! dimension on *space* (massive parallelism, 2·batch buffers alive), the
//! paper's accelerator spends it on *time* (pipelining, one buffer alive).
//!
//! Worker failures are contained: a panicking worker thread no longer
//! brings the whole training process down. [`try_parallel_dis_grads_with`]
//! reports the failure as a typed [`ParallelError`], and the convenience
//! wrappers fall back to the bit-identical sequential path, so a flaky
//! thread pool degrades throughput — never correctness.

use std::error::Error;
use std::fmt;

use zfgan_tensor::Fmaps;

use crate::layer::LayerGrads;
use crate::network::ConvNet;
use crate::wgan;

/// A failure inside the parallel batch evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParallelError {
    /// One or more worker threads panicked before finishing their chunk.
    WorkerPanicked {
        /// How many of the spawned workers died.
        failed: usize,
        /// How many workers were spawned in total.
        spawned: usize,
    },
}

impl fmt::Display for ParallelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelError::WorkerPanicked { failed, spawned } => {
                write!(f, "{failed} of {spawned} worker threads panicked")
            }
        }
    }
}

impl Error for ParallelError {}

/// Computes the summed Discriminator gradients of a real+fake batch using
/// `n_threads` worker threads, with a deterministic (sample-ordered)
/// reduction.
///
/// Returns `(grads, real_scores, fake_scores)` — exactly what the
/// sequential synchronized trainer computes before its optimizer step.
/// If a worker thread panics the batch is transparently re-evaluated on
/// the sequential path, which produces bit-identical results.
///
/// # Panics
///
/// Panics if the batches are empty or of different lengths, if
/// `n_threads` is zero, or if a sample's shape does not match the critic
/// (shape mismatches panic on the sequential fallback too, so they are
/// a caller bug, not a transient worker failure).
#[allow(clippy::type_complexity)]
pub fn parallel_dis_grads(
    critic: &ConvNet,
    reals: &[Fmaps<f32>],
    fakes: &[Fmaps<f32>],
) -> (Vec<LayerGrads>, Vec<f64>, Vec<f64>) {
    parallel_dis_grads_with(critic, reals, fakes, default_threads())
}

/// [`parallel_dis_grads`] with an explicit thread count.
///
/// # Panics
///
/// Same conditions as [`parallel_dis_grads`].
#[allow(clippy::type_complexity)]
pub fn parallel_dis_grads_with(
    critic: &ConvNet,
    reals: &[Fmaps<f32>],
    fakes: &[Fmaps<f32>],
    n_threads: usize,
) -> (Vec<LayerGrads>, Vec<f64>, Vec<f64>) {
    match try_parallel_dis_grads_with(critic, reals, fakes, n_threads) {
        Ok(out) => out,
        // Worker died (e.g. a poisoned thread pool or a stack overflow in
        // one worker): the jobs are independent, so redo them in-process.
        Err(ParallelError::WorkerPanicked { .. }) => sequential_dis_grads(critic, reals, fakes),
    }
}

/// [`parallel_dis_grads_with`] without the sequential fallback: a worker
/// panic surfaces as a typed error so callers (e.g. the training
/// supervisor) can decide to retry with fewer threads instead.
///
/// # Errors
///
/// Returns [`ParallelError::WorkerPanicked`] if any worker thread dies.
///
/// # Panics
///
/// Panics if the batches are empty or of different lengths, or if
/// `n_threads` is zero.
#[allow(clippy::type_complexity)]
pub fn try_parallel_dis_grads_with(
    critic: &ConvNet,
    reals: &[Fmaps<f32>],
    fakes: &[Fmaps<f32>],
    n_threads: usize,
) -> Result<(Vec<LayerGrads>, Vec<f64>, Vec<f64>), ParallelError> {
    assert!(!reals.is_empty(), "batch must be non-empty");
    assert_eq!(
        reals.len(),
        fakes.len(),
        "real and fake batches must pair up"
    );
    assert!(n_threads > 0, "need at least one thread");
    let m = reals.len();
    // Never spawn more workers than there are jobs: a 2-sample batch on a
    // 128-way machine gets 4 workers, not 124 idle threads.
    let n_threads = n_threads.min(2 * m);

    // Work items in the exact order the sequential trainer visits them:
    // all reals, then all fakes.
    let jobs: Vec<(&Fmaps<f32>, f32)> = reals
        .iter()
        .map(|x| (x, wgan::dis_output_error_real(m)))
        .chain(fakes.iter().map(|x| (x, wgan::dis_output_error_fake(m))))
        .collect();

    // One pool task per job chunk (same chunking as the old scoped-thread
    // split); parallel_map returns chunk results in chunk order and chunks
    // are consecutive, so flattening restores exact job order. A panicking
    // chunk surfaces as a typed pool error, which maps onto the existing
    // ParallelError contract (tasks stand in for the workers we used to
    // spawn).
    let chunk = jobs.len().div_ceil(n_threads);
    let job_chunks: Vec<&[(&Fmaps<f32>, f32)]> = jobs.chunks(chunk).collect();
    let per_chunk = zfgan_pool::parallel_map(job_chunks.len(), |t| {
        job_chunks[t]
            .iter()
            .map(|(x, delta)| {
                let trace = critic.forward(x).expect("image shape matches critic");
                let score = wgan::score(trace.output());
                let (grads, _) = critic
                    .backward(&trace, &wgan::scalar_error(*delta))
                    .expect("trace produced by this network");
                (score, grads)
            })
            .collect::<Vec<_>>()
    });
    let per_chunk = match per_chunk {
        Ok(out) => out,
        Err(zfgan_pool::PoolError::TaskPanicked { failed, total }) => {
            return Err(ParallelError::WorkerPanicked {
                failed,
                spawned: total,
            });
        }
    };

    // Ordered deterministic reduction: chunk-major flatten == job order.
    let mut acc = critic.zero_grads();
    let mut real_scores = Vec::with_capacity(m);
    let mut fake_scores = Vec::with_capacity(m);
    for (idx, (score, grads)) in per_chunk.into_iter().flatten().enumerate() {
        for (a, g) in acc.iter_mut().zip(&grads) {
            a.add_assign(g);
        }
        if idx < m {
            real_scores.push(score);
        } else {
            fake_scores.push(score);
        }
    }
    Ok((acc, real_scores, fake_scores))
}

/// Sequential reference path: exactly what the synchronized trainer does,
/// and the fallback when the thread pool is unhealthy.
#[allow(clippy::type_complexity)]
pub fn sequential_dis_grads(
    critic: &ConvNet,
    reals: &[Fmaps<f32>],
    fakes: &[Fmaps<f32>],
) -> (Vec<LayerGrads>, Vec<f64>, Vec<f64>) {
    assert!(!reals.is_empty(), "batch must be non-empty");
    assert_eq!(
        reals.len(),
        fakes.len(),
        "real and fake batches must pair up"
    );
    let m = reals.len();
    let mut acc = critic.zero_grads();
    let mut real_scores = Vec::with_capacity(m);
    let mut fake_scores = Vec::with_capacity(m);
    for (idx, (x, delta)) in reals
        .iter()
        .map(|x| (x, wgan::dis_output_error_real(m)))
        .chain(fakes.iter().map(|x| (x, wgan::dis_output_error_fake(m))))
        .enumerate()
    {
        let trace = critic.forward(x).expect("image shape matches critic");
        let score = wgan::score(trace.output());
        let (g, _) = critic
            .backward(&trace, &wgan::scalar_error(delta))
            .expect("trace produced by this network");
        for (a, gi) in acc.iter_mut().zip(&g) {
            a.add_assign(gi);
        }
        if idx < m {
            real_scores.push(score);
        } else {
            fake_scores.push(score);
        }
    }
    (acc, real_scores, fake_scores)
}

/// One job chunk per pool thread (cached once per process by
/// `zfgan_pool::pool_threads`, `ZFGAN_THREADS`-overridable): the batch
/// clamp above keeps small batches from over-subscribing, so there is no
/// fixed upper cap.
fn default_threads() -> usize {
    zfgan_pool::pool_threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::GanPair;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn batches(rng: &mut SmallRng, m: usize) -> (GanPair, Vec<Fmaps<f32>>, Vec<Fmaps<f32>>) {
        let pair = GanPair::tiny(rng);
        let reals = pair.sample_real_batch(m, rng);
        let zs = pair.sample_z_batch(m, rng);
        let fakes: Vec<Fmaps<f32>> = zs
            .iter()
            .map(|z| pair.generator().forward(z).unwrap().output().clone())
            .collect();
        (pair, reals, fakes)
    }

    /// Sequential reference: exactly what the synchronized trainer does.
    fn sequential(critic: &ConvNet, reals: &[Fmaps<f32>], fakes: &[Fmaps<f32>]) -> Vec<LayerGrads> {
        let m = reals.len();
        let mut acc = critic.zero_grads();
        for (x, delta) in reals
            .iter()
            .map(|x| (x, wgan::dis_output_error_real(m)))
            .chain(fakes.iter().map(|x| (x, wgan::dis_output_error_fake(m))))
        {
            let trace = critic.forward(x).unwrap();
            let (g, _) = critic.backward(&trace, &wgan::scalar_error(delta)).unwrap();
            for (a, gi) in acc.iter_mut().zip(&g) {
                a.add_assign(gi);
            }
        }
        acc
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let mut rng = SmallRng::seed_from_u64(3);
        let (pair, reals, fakes) = batches(&mut rng, 6);
        let seq = sequential(pair.discriminator(), &reals, &fakes);
        for threads in [1usize, 2, 4, 7] {
            let (par, real_scores, fake_scores) =
                parallel_dis_grads_with(pair.discriminator(), &reals, &fakes, threads);
            assert_eq!(real_scores.len(), 6);
            assert_eq!(fake_scores.len(), 6);
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.max_abs_diff(b), 0.0, "threads={threads}");
            }
        }
    }

    #[test]
    fn sequential_helper_matches_parallel() {
        let mut rng = SmallRng::seed_from_u64(6);
        let (pair, reals, fakes) = batches(&mut rng, 4);
        let (sg, sr, sf) = sequential_dis_grads(pair.discriminator(), &reals, &fakes);
        let (pg, pr, pf) = parallel_dis_grads_with(pair.discriminator(), &reals, &fakes, 3);
        assert_eq!(sr, pr);
        assert_eq!(sf, pf);
        for (a, b) in sg.iter().zip(&pg) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }

    #[test]
    fn worker_panic_is_reported_not_propagated() {
        let mut rng = SmallRng::seed_from_u64(7);
        let (pair, reals, fakes) = batches(&mut rng, 3);
        // A fake whose shape does not match the critic makes exactly the
        // workers that process the fake half panic.
        let mut bad_fakes = fakes.clone();
        bad_fakes[2] = pair.sample_z_batch(1, &mut rng).remove(0);
        let err = try_parallel_dis_grads_with(pair.discriminator(), &reals, &bad_fakes, 2)
            .expect_err("shape-mismatched job must kill its worker");
        let ParallelError::WorkerPanicked { failed, spawned } = err.clone();
        assert!(failed >= 1, "{err}");
        assert!(spawned >= failed, "{err}");
        assert!(err.to_string().contains("worker threads panicked"));
    }

    #[test]
    fn scores_come_back_in_batch_order() {
        let mut rng = SmallRng::seed_from_u64(4);
        let (pair, reals, fakes) = batches(&mut rng, 5);
        let (_, real_scores, _) = parallel_dis_grads(pair.discriminator(), &reals, &fakes);
        for (x, s) in reals.iter().zip(&real_scores) {
            let direct = wgan::score(pair.discriminator().forward(x).unwrap().output());
            assert_eq!(direct, *s);
        }
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_batches_rejected() {
        let mut rng = SmallRng::seed_from_u64(5);
        let (pair, reals, _) = batches(&mut rng, 3);
        let _ = parallel_dis_grads(pair.discriminator(), &reals, &reals[..2]);
    }
}
