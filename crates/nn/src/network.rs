//! A stack of convolutional layers with full backpropagation.

use rand::Rng;
use serde::{Deserialize, Serialize};
use zfgan_tensor::{ConvBackend, ConvWorkspace, Fmaps, ShapeError, TensorResult};

use crate::layer::{ConvLayer, LayerGrads};

/// Cached forward-pass tensors of one sample — the paper's "intermediate
/// data" (`d^l`) that `W-CONV` needs during the backward pass.
///
/// Its size is exactly what the paper's Section III-A memory analysis is
/// about: the synchronized algorithm must hold `2 × batch` of these, the
/// deferred algorithm only one.
#[derive(Debug, Clone)]
pub struct Trace {
    input: Fmaps<f32>,
    pre: Vec<Fmaps<f32>>,
    post: Vec<Fmaps<f32>>,
}

impl Trace {
    /// The network input that produced this trace.
    pub fn input(&self) -> &Fmaps<f32> {
        &self.input
    }

    /// The final network output.
    pub fn output(&self) -> &Fmaps<f32> {
        self.post.last().unwrap_or(&self.input)
    }

    /// Post-activation output of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn post(&self, l: usize) -> &Fmaps<f32> {
        &self.post[l]
    }

    /// Total number of buffered elements (input + all pre/post activations)
    /// — the memory-accounting currency of the Section III-A experiment.
    pub fn buffered_elems(&self) -> usize {
        self.input.len()
            + self.pre.iter().map(Fmaps::len).sum::<usize>()
            + self.post.iter().map(Fmaps::len).sum::<usize>()
    }

    /// Number of buffered elements counting only what weight updating needs:
    /// each layer's *input* activation (`d^{l-1}`), i.e. the network input
    /// plus every post-activation except the last. This matches the paper's
    /// accounting for the ~126 MB DCGAN figure.
    pub fn weight_update_elems(&self) -> usize {
        let mut total = self.input.len();
        for p in &self.post[..self.post.len().saturating_sub(1)] {
            total += p.len();
        }
        total
    }

    /// Returns every buffered tensor to a workspace, so the next forward
    /// pass reuses them instead of allocating.
    pub fn recycle(self, ws: &mut ConvWorkspace<f32>) {
        ws.give_fmaps(self.input);
        for p in self.pre {
            ws.give_fmaps(p);
        }
        for p in self.post {
            ws.give_fmaps(p);
        }
    }

    /// Consumes the trace, keeping only the final network output; every
    /// other buffered tensor returns to the workspace. (For a one-layer-or-
    /// more network the output is the last post-activation; the degenerate
    /// zero-layer case cannot occur — construction requires a layer.)
    pub fn into_output(mut self, ws: &mut ConvWorkspace<f32>) -> Fmaps<f32> {
        let out = self.post.pop().unwrap_or_else(|| self.input.clone());
        ws.give_fmaps(self.input);
        for p in self.pre {
            ws.give_fmaps(p);
        }
        for p in self.post {
            ws.give_fmaps(p);
        }
        out
    }
}

/// A feed-forward stack of [`ConvLayer`]s — one Generator or Discriminator.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use zfgan_nn::{Activation, ConvLayer, ConvNet, Direction};
/// use zfgan_tensor::{ConvGeom, Fmaps};
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let geom = ConvGeom::down(8, 8, 4, 4, 2, 4, 4)?;
/// let layer = ConvLayer::random(
///     Direction::Down, geom, 4, 1, Activation::Identity, (1, 8, 8), 0.1, &mut rng,
/// )?;
/// let net = ConvNet::new(vec![layer])?;
/// let x = Fmaps::random(1, 8, 8, 1.0, &mut rng);
/// let trace = net.forward(&x)?;
/// assert_eq!(trace.output().shape(), (4, 4, 4));
/// # Ok::<(), zfgan_tensor::ShapeError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvNet {
    layers: Vec<ConvLayer>,
}

impl ConvNet {
    /// Creates a network, validating that consecutive layer shapes chain.
    ///
    /// # Errors
    ///
    /// Returns an error if the stack is empty or a layer's input shape does
    /// not equal the previous layer's output shape.
    pub fn new(layers: Vec<ConvLayer>) -> TensorResult<Self> {
        if layers.is_empty() {
            return Err(ShapeError::new("a network needs at least one layer"));
        }
        for (i, pair) in layers.windows(2).enumerate() {
            if pair[0].out_shape() != pair[1].in_shape() {
                return Err(ShapeError::new(format!(
                    "layer {i} outputs {:?} but layer {} expects {:?}",
                    pair[0].out_shape(),
                    i + 1,
                    pair[1].in_shape()
                )));
            }
        }
        Ok(Self { layers })
    }

    /// The layers, in forward order.
    pub fn layers(&self) -> &[ConvLayer] {
        &self.layers
    }

    /// Checks every invariant a freshly **deserialized** network must
    /// satisfy: each layer's internal consistency ([`ConvLayer::validate`])
    /// plus the shape chaining [`ConvNet::new`] enforces. Checkpoint
    /// loading calls this so corrupted payloads surface as errors instead
    /// of panics mid-inference.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error naming the first offending layer.
    pub fn validate(&self) -> TensorResult<()> {
        if self.layers.is_empty() {
            return Err(ShapeError::new("a network needs at least one layer"));
        }
        for (i, layer) in self.layers.iter().enumerate() {
            layer
                .validate()
                .map_err(|e| ShapeError::new(format!("layer {i}: {e}")))?;
        }
        for (i, pair) in self.layers.windows(2).enumerate() {
            if pair[0].out_shape() != pair[1].in_shape() {
                return Err(ShapeError::new(format!(
                    "layer {i} outputs {:?} but layer {} expects {:?}",
                    pair[0].out_shape(),
                    i + 1,
                    pair[1].in_shape()
                )));
            }
        }
        Ok(())
    }

    /// Selects the convolution backend for every layer. All backends are
    /// bit-identical (see [`ConvBackend`]); this only trades speed.
    pub fn set_backend(&mut self, backend: ConvBackend) {
        for layer in &mut self.layers {
            layer.set_backend(backend);
        }
    }

    /// Mutable access to the layers (used by optimizers).
    pub fn layers_mut(&mut self) -> &mut [ConvLayer] {
        &mut self.layers
    }

    /// `(channels, height, width)` the network consumes.
    pub fn in_shape(&self) -> (usize, usize, usize) {
        self.layers[0].in_shape()
    }

    /// `(channels, height, width)` the network produces.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        self.layers.last().expect("validated non-empty").out_shape()
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(ConvLayer::param_count).sum()
    }

    /// Forward pass, caching every intermediate tensor for the backward
    /// pass.
    ///
    /// # Errors
    ///
    /// Returns an error if `input` does not match the network's input shape.
    pub fn forward(&self, input: &Fmaps<f32>) -> TensorResult<Trace> {
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut post = Vec::with_capacity(self.layers.len());
        let mut cur = input.clone();
        for layer in &self.layers {
            let (p, a) = layer.forward(&cur)?;
            cur = a.clone();
            pre.push(p);
            post.push(a);
        }
        Ok(Trace {
            input: input.clone(),
            pre,
            post,
        })
    }

    /// [`ConvNet::forward`] with all transients drawn from the workspace.
    /// Bit-identical; feeds each layer the cached post-activation directly
    /// (no per-layer clone), so a warm workspace makes the whole pass
    /// allocation-free. Recycle the returned trace via [`Trace::recycle`]
    /// or [`Trace::into_output`].
    ///
    /// # Errors
    ///
    /// Returns an error if `input` does not match the network's input shape.
    pub fn forward_ws(
        &self,
        input: &Fmaps<f32>,
        ws: &mut ConvWorkspace<f32>,
    ) -> TensorResult<Trace> {
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut post: Vec<Fmaps<f32>> = Vec::with_capacity(self.layers.len());
        for (l, layer) in self.layers.iter().enumerate() {
            let cur = if l == 0 { input } else { &post[l - 1] };
            let (p, a) = layer.forward_ws(cur, ws)?;
            pre.push(p);
            post.push(a);
        }
        let (c, h, w) = input.shape();
        let mut own_input = ws.take_fmaps(c, h, w);
        own_input.as_mut_slice().copy_from_slice(input.as_slice());
        Ok(Trace {
            input: own_input,
            pre,
            post,
        })
    }

    /// [`ConvNet::backward`] with all transients drawn from the workspace.
    /// Bit-identical; intermediate per-layer errors return to the workspace
    /// as soon as the next layer has consumed them. Recycle the returned
    /// gradients via [`crate::LayerGrads::recycle`] and the input error via
    /// [`ConvWorkspace::give_fmaps`].
    ///
    /// # Errors
    ///
    /// Returns an error if `delta_out` does not match the output shape.
    pub fn backward_ws(
        &self,
        trace: &Trace,
        delta_out: &Fmaps<f32>,
        ws: &mut ConvWorkspace<f32>,
    ) -> TensorResult<(Vec<LayerGrads>, Fmaps<f32>)> {
        if delta_out.shape() != self.out_shape() {
            return Err(ShapeError::new(format!(
                "delta shape {:?} does not match output {:?}",
                delta_out.shape(),
                self.out_shape()
            )));
        }
        let mut grads: Vec<Option<LayerGrads>> = (0..self.layers.len()).map(|_| None).collect();
        let (c, h, w) = delta_out.shape();
        let mut delta = ws.take_fmaps(c, h, w);
        delta.as_mut_slice().copy_from_slice(delta_out.as_slice());
        for (l, layer) in self.layers.iter().enumerate().rev() {
            let input = if l == 0 {
                &trace.input
            } else {
                &trace.post[l - 1]
            };
            let (dx, g) = layer.backward_ws(&delta, &trace.pre[l], input, ws)?;
            grads[l] = Some(g);
            ws.give_fmaps(delta);
            delta = dx;
        }
        Ok((
            grads
                .into_iter()
                .map(|g| g.expect("all layers visited"))
                .collect(),
            delta,
        ))
    }

    /// Backward pass: propagates `delta_out` (error on the network output)
    /// through every layer, returning per-layer gradients (forward order)
    /// and the error on the network input.
    ///
    /// # Errors
    ///
    /// Returns an error if `delta_out` does not match the output shape.
    pub fn backward(
        &self,
        trace: &Trace,
        delta_out: &Fmaps<f32>,
    ) -> TensorResult<(Vec<LayerGrads>, Fmaps<f32>)> {
        if delta_out.shape() != self.out_shape() {
            return Err(ShapeError::new(format!(
                "delta shape {:?} does not match output {:?}",
                delta_out.shape(),
                self.out_shape()
            )));
        }
        let mut grads: Vec<Option<LayerGrads>> = (0..self.layers.len()).map(|_| None).collect();
        let mut delta = delta_out.clone();
        for (l, layer) in self.layers.iter().enumerate().rev() {
            let input = if l == 0 {
                &trace.input
            } else {
                &trace.post[l - 1]
            };
            let (dx, g) = layer.backward(&delta, &trace.pre[l], input)?;
            grads[l] = Some(g);
            delta = dx;
        }
        Ok((
            grads
                .into_iter()
                .map(|g| g.expect("all layers visited"))
                .collect(),
            delta,
        ))
    }

    /// Creates zero-valued gradient accumulators matching every layer.
    pub fn zero_grads(&self) -> Vec<LayerGrads> {
        self.layers
            .iter()
            .map(|l| LayerGrads {
                weights: zfgan_tensor::Kernels::zeros(
                    l.weights().n_of(),
                    l.weights().n_if(),
                    l.weights().kh(),
                    l.weights().kw(),
                ),
                bias: vec![0.0; l.out_shape().0],
            })
            .collect()
    }

    /// [`ConvNet::zero_grads`] with the accumulator buffers drawn from the
    /// workspace (already zero-filled by [`ConvWorkspace::take`]).
    pub fn zero_grads_ws(&self, ws: &mut ConvWorkspace<f32>) -> Vec<LayerGrads> {
        self.layers
            .iter()
            .map(|l| LayerGrads {
                weights: ws.take_kernels(
                    l.weights().n_of(),
                    l.weights().n_if(),
                    l.weights().kh(),
                    l.weights().kw(),
                ),
                bias: ws.take(l.out_shape().0),
            })
            .collect()
    }

    /// Renders a torchsummary-style table of the network: one row per
    /// layer with direction, shapes and parameter count.
    pub fn summary(&self) -> String {
        let mut out = String::from(
            "layer  dir   in (CxHxW)        out (CxHxW)       params
",
        );
        for (i, l) in self.layers.iter().enumerate() {
            let (ic, ih, iw) = l.in_shape();
            let (oc, oh, ow) = l.out_shape();
            let dir = match l.direction() {
                crate::layer::Direction::Down => "down",
                crate::layer::Direction::Up => "up  ",
            };
            out.push_str(&format!(
                "{:<6} {dir}  {:<16} {:<16} {}
",
                i + 1,
                format!("{ic}x{ih}x{iw}"),
                format!("{oc}x{oh}x{ow}"),
                l.param_count()
            ));
        }
        out.push_str(&format!(
            "total parameters: {}
",
            self.param_count()
        ));
        out
    }

    /// Adds uniform noise in `[-scale, scale]` to every parameter — handy
    /// for perturbation tests.
    pub fn jitter<R: Rng>(&mut self, scale: f32, rng: &mut R) {
        for layer in &mut self.layers {
            let mut w = layer.weights().clone();
            for v in w.as_mut_slice() {
                *v += rng.gen_range(-scale..=scale);
            }
            let delta = layer.weights().clone();
            // apply_update subtracts, so feed (old − new).
            let mut d = delta;
            for (dv, nv) in d.as_mut_slice().iter_mut().zip(w.as_slice()) {
                *dv -= nv;
            }
            let zero_bias = vec![0.0; layer.out_shape().0];
            layer.apply_update(&d, &zero_bias);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::layer::Direction;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use zfgan_tensor::ConvGeom;

    fn two_layer_net(rng: &mut SmallRng) -> ConvNet {
        let g1 = ConvGeom::down(8, 8, 4, 4, 2, 4, 4).unwrap();
        let g2 = ConvGeom::down(4, 4, 4, 4, 1, 1, 1).unwrap();
        let l1 = ConvLayer::random(
            Direction::Down,
            g1,
            4,
            1,
            Activation::LeakyRelu { alpha: 0.2 },
            (1, 8, 8),
            0.3,
            rng,
        )
        .unwrap();
        let l2 = ConvLayer::random(
            Direction::Down,
            g2,
            1,
            4,
            Activation::Identity,
            (4, 4, 4),
            0.3,
            rng,
        )
        .unwrap();
        ConvNet::new(vec![l1, l2]).unwrap()
    }

    #[test]
    fn forward_chains_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let net = two_layer_net(&mut rng);
        assert_eq!(net.in_shape(), (1, 8, 8));
        assert_eq!(net.out_shape(), (1, 1, 1));
        let x = Fmaps::random(1, 8, 8, 1.0, &mut rng);
        let trace = net.forward(&x).unwrap();
        assert_eq!(trace.output().shape(), (1, 1, 1));
        assert_eq!(trace.post(0).shape(), (4, 4, 4));
        assert_eq!(trace.input().shape(), (1, 8, 8));
    }

    #[test]
    fn rejects_mismatched_stack() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g1 = ConvGeom::down(8, 8, 4, 4, 2, 4, 4).unwrap();
        let l1 = ConvLayer::random(
            Direction::Down,
            g1,
            4,
            1,
            Activation::Identity,
            (1, 8, 8),
            0.1,
            &mut rng,
        )
        .unwrap();
        let l_bad = ConvLayer::random(
            Direction::Down,
            g1,
            2,
            3, // expects 3 input maps, previous layer makes 4
            Activation::Identity,
            (3, 8, 8),
            0.1,
            &mut rng,
        )
        .unwrap();
        assert!(ConvNet::new(vec![l1, l_bad]).is_err());
        assert!(ConvNet::new(vec![]).is_err());
    }

    #[test]
    fn backward_whole_net_matches_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(7);
        let net = two_layer_net(&mut rng);
        let x = Fmaps::random(1, 8, 8, 1.0, &mut rng);
        let trace = net.forward(&x).unwrap();
        let delta = Fmaps::from_vec(1, 1, 1, vec![1.0]);
        let (grads, dx) = net.backward(&trace, &delta).unwrap();
        let base = trace.output().sum_f64();
        let eps = 1e-3f32;
        // Input gradient at a few points.
        for (y, xx) in [(0usize, 0usize), (4, 4), (7, 2)] {
            let mut xp = x.clone();
            *xp.at_mut(0, y, xx) += eps;
            let fd = (net.forward(&xp).unwrap().output().sum_f64() - base) / f64::from(eps);
            assert!(
                (fd - f64::from(*dx.at(0, y, xx))).abs() < 2e-2,
                "dx[{y}][{xx}] fd={fd} an={}",
                dx.at(0, y, xx)
            );
        }
        // First-layer weight gradient (propagates through layer 2).
        let mut netp = net.clone();
        {
            let w = netp.layers_mut()[0].weights().clone();
            let mut d = zfgan_tensor::Kernels::zeros(w.n_of(), w.n_if(), w.kh(), w.kw());
            *d.at_mut(2, 0, 1, 1) = -eps; // apply_update subtracts
            let zero_bias = vec![0.0; 4];
            netp.layers_mut()[0].apply_update(&d, &zero_bias);
        }
        let fd = (netp.forward(&x).unwrap().output().sum_f64() - base) / f64::from(eps);
        assert!(
            (fd - f64::from(*grads[0].weights.at(2, 0, 1, 1))).abs() < 2e-2,
            "fd={fd} an={}",
            grads[0].weights.at(2, 0, 1, 1)
        );
    }

    #[test]
    fn buffered_elems_counts_everything() {
        let mut rng = SmallRng::seed_from_u64(3);
        let net = two_layer_net(&mut rng);
        let x = Fmaps::random(1, 8, 8, 1.0, &mut rng);
        let trace = net.forward(&x).unwrap();
        // input 64 + (pre+post) of layer1 (2·64) + layer2 (2·1).
        assert_eq!(trace.buffered_elems(), 64 + 128 + 2);
        // weight-update accounting: input + post(0).
        assert_eq!(trace.weight_update_elems(), 64 + 64);
    }

    #[test]
    fn zero_grads_match_layer_shapes() {
        let mut rng = SmallRng::seed_from_u64(4);
        let net = two_layer_net(&mut rng);
        let zg = net.zero_grads();
        assert_eq!(zg.len(), 2);
        assert_eq!(zg[0].weights.shape(), net.layers()[0].weights().shape());
        assert!(zg[0].weights.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(zg[1].bias.len(), 1);
    }

    #[test]
    fn summary_lists_every_layer_and_totals() {
        let mut rng = SmallRng::seed_from_u64(8);
        let net = two_layer_net(&mut rng);
        let s = net.summary();
        assert!(s.contains("down"));
        assert!(s.contains("1x8x8"));
        assert!(s.contains(&format!("total parameters: {}", net.param_count())));
        assert_eq!(s.lines().count(), 1 + 2 + 1);
    }

    #[test]
    fn jitter_changes_weights() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut net = two_layer_net(&mut rng);
        let before = net.layers()[0].weights().clone();
        net.jitter(0.1, &mut rng);
        assert!(net.layers()[0].weights().max_abs_diff(&before) > 0.0);
    }
}
