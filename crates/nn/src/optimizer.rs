//! Parameter-update rules: plain SGD, RMSProp (the WGAN default) and Adam
//! (the DCGAN default).

use serde::{Deserialize, Serialize};
use zfgan_tensor::Kernels;

use crate::layer::LayerGrads;
use crate::network::ConvNet;

/// Which update rule an [`Optimizer`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// `θ ← θ − lr · g`.
    Sgd,
    /// RMSProp: `v ← ρ·v + (1−ρ)·g²`, `θ ← θ − lr · g / (√v + ε)` — the
    /// optimizer the WGAN paper prescribes.
    RmsProp {
        /// Decay rate `ρ` of the squared-gradient moving average.
        rho: f32,
        /// Numerical-stability constant `ε`.
        epsilon: f32,
    },
    /// Adam with bias correction — the optimizer the DCGAN paper uses.
    Adam {
        /// First-moment decay `β₁`.
        beta1: f32,
        /// Second-moment decay `β₂`.
        beta2: f32,
        /// Numerical-stability constant `ε`.
        epsilon: f32,
    },
}

impl OptimizerKind {
    /// The WGAN paper's recommended RMSProp configuration.
    pub fn wgan_default() -> Self {
        OptimizerKind::RmsProp {
            rho: 0.9,
            epsilon: 1e-8,
        }
    }

    /// The DCGAN paper's Adam configuration (`β₁ = 0.5`, `β₂ = 0.999`).
    pub fn dcgan_adam() -> Self {
        OptimizerKind::Adam {
            beta1: 0.5,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }
}

/// Per-network optimizer state.
///
/// Holds one squared-gradient accumulator per parameter tensor (RMSProp) and
/// applies updates to a [`ConvNet`] in place.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use zfgan_nn::{GanPair, Optimizer, OptimizerKind};
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let pair = GanPair::tiny(&mut rng);
/// let mut opt = Optimizer::new(OptimizerKind::Sgd, 5e-4, pair.discriminator());
/// # let _ = opt;
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Optimizer {
    kind: OptimizerKind,
    learning_rate: f32,
    weight_v: Vec<Kernels<f32>>,
    bias_v: Vec<Vec<f32>>,
    weight_m: Vec<Kernels<f32>>,
    bias_m: Vec<Vec<f32>>,
    steps: u32,
}

impl Optimizer {
    /// Creates optimizer state sized for `net`.
    pub fn new(kind: OptimizerKind, learning_rate: f32, net: &ConvNet) -> Self {
        let weight_v: Vec<Kernels<f32>> = net
            .layers()
            .iter()
            .map(|l| {
                let w = l.weights();
                Kernels::zeros(w.n_of(), w.n_if(), w.kh(), w.kw())
            })
            .collect();
        let bias_v: Vec<Vec<f32>> = net
            .layers()
            .iter()
            .map(|l| vec![0.0; l.out_shape().0])
            .collect();
        let weight_m = weight_v.clone();
        let bias_m = bias_v.clone();
        Self {
            kind,
            learning_rate,
            weight_v,
            bias_v,
            weight_m,
            bias_m,
            steps: 0,
        }
    }

    /// The configured update rule.
    pub fn kind(&self) -> OptimizerKind {
        self.kind
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Update steps applied so far (drives Adam's bias correction — part
    /// of the state a bit-identical resume must restore).
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// Checks that this optimizer's moment accumulators are shaped for
    /// `net` — the guard a deserialised optimizer must pass before a
    /// resumed training run may use it.
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the first mismatch (layer count,
    /// weight-moment shape, or bias-moment length).
    pub fn validate_for(&self, net: &ConvNet) -> Result<(), String> {
        let layers = net.layers();
        for (name, ks) in [("weight_v", &self.weight_v), ("weight_m", &self.weight_m)] {
            if ks.len() != layers.len() {
                return Err(format!(
                    "{name} has {} layers, network has {}",
                    ks.len(),
                    layers.len()
                ));
            }
            for (l, (k, layer)) in ks.iter().zip(layers).enumerate() {
                let w = layer.weights();
                let want = (w.n_of(), w.n_if(), w.kh(), w.kw());
                let got = (k.n_of(), k.n_if(), k.kh(), k.kw());
                if got != want {
                    return Err(format!(
                        "{name}[{l}] is {got:?}, layer weights are {want:?}"
                    ));
                }
            }
        }
        for (name, bs) in [("bias_v", &self.bias_v), ("bias_m", &self.bias_m)] {
            if bs.len() != layers.len() {
                return Err(format!(
                    "{name} has {} layers, network has {}",
                    bs.len(),
                    layers.len()
                ));
            }
            for (l, (b, layer)) in bs.iter().zip(layers).enumerate() {
                if b.len() != layer.out_shape().0 {
                    return Err(format!(
                        "{name}[{l}] has {} entries, layer has {} output channels",
                        b.len(),
                        layer.out_shape().0
                    ));
                }
            }
        }
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return Err(format!(
                "learning_rate must be positive and finite, got {}",
                self.learning_rate
            ));
        }
        Ok(())
    }

    /// Applies one step of averaged gradients to `net`.
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not have one entry per layer with matching
    /// shapes (which indicates a bug in the caller, not bad data).
    pub fn step(&mut self, net: &mut ConvNet, grads: &[LayerGrads]) {
        assert_eq!(
            grads.len(),
            net.layers().len(),
            "one gradient set per layer"
        );
        let lr = self.learning_rate;
        self.steps += 1;
        for (l, (layer, g)) in net.layers_mut().iter_mut().zip(grads).enumerate() {
            let mut wdelta = g.weights.clone();
            let mut bdelta = g.bias.clone();
            match self.kind {
                OptimizerKind::Sgd => {
                    wdelta.scale(lr);
                    for b in &mut bdelta {
                        *b *= lr;
                    }
                }
                OptimizerKind::RmsProp { rho, epsilon } => {
                    let v = &mut self.weight_v[l];
                    for (d, vv) in wdelta.as_mut_slice().iter_mut().zip(v.as_mut_slice()) {
                        *vv = rho * *vv + (1.0 - rho) * *d * *d;
                        *d = lr * *d / (vv.sqrt() + epsilon);
                    }
                    let bv = &mut self.bias_v[l];
                    for (d, vv) in bdelta.iter_mut().zip(bv.iter_mut()) {
                        *vv = rho * *vv + (1.0 - rho) * *d * *d;
                        *d = lr * *d / (vv.sqrt() + epsilon);
                    }
                }
                OptimizerKind::Adam {
                    beta1,
                    beta2,
                    epsilon,
                } => {
                    let bc1 = 1.0 - beta1.powi(self.steps as i32);
                    let bc2 = 1.0 - beta2.powi(self.steps as i32);
                    let v = &mut self.weight_v[l];
                    let m = &mut self.weight_m[l];
                    for ((d, vv), mm) in wdelta
                        .as_mut_slice()
                        .iter_mut()
                        .zip(v.as_mut_slice())
                        .zip(m.as_mut_slice())
                    {
                        *mm = beta1 * *mm + (1.0 - beta1) * *d;
                        *vv = beta2 * *vv + (1.0 - beta2) * *d * *d;
                        let m_hat = *mm / bc1;
                        let v_hat = *vv / bc2;
                        *d = lr * m_hat / (v_hat.sqrt() + epsilon);
                    }
                    let bv = &mut self.bias_v[l];
                    let bm = &mut self.bias_m[l];
                    for ((d, vv), mm) in bdelta.iter_mut().zip(bv.iter_mut()).zip(bm.iter_mut()) {
                        *mm = beta1 * *mm + (1.0 - beta1) * *d;
                        *vv = beta2 * *vv + (1.0 - beta2) * *d * *d;
                        *d = lr * (*mm / bc1) / ((*vv / bc2).sqrt() + epsilon);
                    }
                }
            }
            layer.apply_update(&wdelta, &bdelta);
        }
    }

    /// Clamps every weight of `net` into `[-c, c]` — the WGAN critic's
    /// weight-clipping step that enforces the Lipschitz constraint.
    pub fn clip_weights(net: &mut ConvNet, c: f32) {
        for layer in net.layers_mut() {
            layer.clamp_weights(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::GanPair;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net(rng: &mut SmallRng) -> ConvNet {
        GanPair::tiny(rng).discriminator().clone()
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut d = net(&mut rng);
        let before = d.layers()[0].weights().clone();
        let mut grads = d.zero_grads();
        *grads[0].weights.at_mut(0, 0, 0, 0) = 2.0;
        let mut opt = Optimizer::new(OptimizerKind::Sgd, 0.1, &d);
        opt.step(&mut d, &grads);
        let after = d.layers()[0].weights();
        let moved = *after.at(0, 0, 0, 0) - *before.at(0, 0, 0, 0);
        assert!((moved + 0.2).abs() < 1e-6, "moved {moved}");
        // Untouched weight stays put.
        assert_eq!(*after.at(0, 0, 1, 1), *before.at(0, 0, 1, 1));
    }

    #[test]
    fn rmsprop_normalises_step_size() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut d = net(&mut rng);
        let mut grads = d.zero_grads();
        *grads[0].weights.at_mut(0, 0, 0, 0) = 100.0;
        *grads[0].weights.at_mut(0, 0, 0, 1) = 0.01;
        let before = d.layers()[0].weights().clone();
        let mut opt = Optimizer::new(OptimizerKind::wgan_default(), 0.01, &d);
        opt.step(&mut d, &grads);
        let after = d.layers()[0].weights();
        let step_big = (*after.at(0, 0, 0, 0) - *before.at(0, 0, 0, 0)).abs();
        let step_small = (*after.at(0, 0, 0, 1) - *before.at(0, 0, 0, 1)).abs();
        // RMSProp's first step is ≈ lr/√(1−ρ) for any gradient magnitude.
        assert!(
            (step_big - step_small).abs() < 1e-4,
            "big={step_big} small={step_small}"
        );
    }

    #[test]
    fn clip_weights_bounds_everything() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut d = net(&mut rng);
        d.jitter(5.0, &mut rng);
        Optimizer::clip_weights(&mut d, 0.01);
        for layer in d.layers() {
            assert!(layer
                .weights()
                .as_slice()
                .iter()
                .all(|v| v.abs() <= 0.01 + 1e-7));
        }
    }

    #[test]
    fn adam_first_step_is_lr_sized_and_direction_correct() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut d = net(&mut rng);
        let mut grads = d.zero_grads();
        *grads[0].weights.at_mut(0, 0, 0, 0) = 3.0;
        *grads[0].weights.at_mut(0, 0, 0, 1) = -0.001;
        let before = d.layers()[0].weights().clone();
        let mut opt = Optimizer::new(OptimizerKind::dcgan_adam(), 0.01, &d);
        opt.step(&mut d, &grads);
        let after = d.layers()[0].weights();
        // Bias correction makes the very first step ≈ lr regardless of the
        // gradient magnitude, in the opposite direction of the gradient.
        let step_big = *after.at(0, 0, 0, 0) - *before.at(0, 0, 0, 0);
        let step_small = *after.at(0, 0, 0, 1) - *before.at(0, 0, 0, 1);
        assert!((step_big + 0.01).abs() < 1e-4, "step {step_big}");
        assert!((step_small - 0.01).abs() < 1e-4, "step {step_small}");
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        // Minimise ||w||² with gradients 2w: Adam should shrink the norm.
        let mut rng = SmallRng::seed_from_u64(5);
        let mut d = net(&mut rng);
        d.jitter(0.5, &mut rng);
        let mut opt = Optimizer::new(OptimizerKind::dcgan_adam(), 0.05, &d);
        let norm = |n: &ConvNet| -> f64 {
            n.layers()
                .iter()
                .flat_map(|l| l.weights().as_slice())
                .map(|w| f64::from(w * w))
                .sum()
        };
        let start = norm(&d);
        for _ in 0..50 {
            let grads: Vec<_> = d
                .layers()
                .iter()
                .map(|l| {
                    let mut g = l.weights().clone();
                    g.scale(2.0);
                    crate::layer::LayerGrads {
                        weights: g,
                        bias: vec![0.0; l.out_shape().0],
                    }
                })
                .collect();
            opt.step(&mut d, &grads);
        }
        assert!(norm(&d) < 0.2 * start, "norm {} vs start {start}", norm(&d));
    }

    #[test]
    fn accessors_report_config() {
        let mut rng = SmallRng::seed_from_u64(3);
        let d = net(&mut rng);
        let opt = Optimizer::new(OptimizerKind::Sgd, 0.05, &d);
        assert_eq!(opt.kind(), OptimizerKind::Sgd);
        assert_eq!(opt.learning_rate(), 0.05);
    }
}
