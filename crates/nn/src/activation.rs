//! Element-wise activation functions and their derivatives.

use serde::{Deserialize, Serialize};
use zfgan_tensor::Fmaps;

/// An element-wise activation function.
///
/// DCGAN uses LeakyReLU(0.2) inside the Discriminator, ReLU inside the
/// Generator and Tanh on the Generator output; the WGAN critic output is
/// linear ([`Activation::Identity`]).
///
/// # Example
///
/// ```
/// use zfgan_nn::Activation;
///
/// let a = Activation::LeakyRelu { alpha: 0.2 };
/// assert_eq!(a.apply_scalar(3.0), 3.0);
/// assert_eq!(a.apply_scalar(-1.0), -0.2);
/// assert_eq!(a.derivative_scalar(-1.0), 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Activation {
    /// `f(x) = x` — used on the WGAN critic output.
    #[default]
    Identity,
    /// `f(x) = max(0, x)`.
    Relu,
    /// `f(x) = x` for `x ≥ 0`, `α·x` otherwise.
    LeakyRelu {
        /// Negative-side slope (DCGAN uses `0.2`).
        alpha: f32,
    },
    /// Hyperbolic tangent — the Generator's output squashing.
    Tanh,
}

impl Activation {
    /// Applies the activation to one pre-activation value.
    pub fn apply_scalar(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu { alpha } => {
                if x >= 0.0 {
                    x
                } else {
                    alpha * x
                }
            }
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative w.r.t. the pre-activation value `x`.
    ///
    /// (The kink of ReLU-family functions at `0` takes the right-hand
    /// derivative, the universal deep-learning convention.)
    pub fn derivative_scalar(self, x: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu { alpha } => {
                if x >= 0.0 {
                    1.0
                } else {
                    alpha
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
        }
    }

    /// Applies the activation to every element of a feature-map tensor.
    pub fn apply(self, pre: &Fmaps<f32>) -> Fmaps<f32> {
        pre.map(|v| self.apply_scalar(v))
    }

    /// The `∘ σ'` step of paper Eq. (3): multiplies the incoming error by
    /// the activation derivative evaluated at the cached pre-activations.
    ///
    /// # Panics
    ///
    /// Panics if the two tensors have different shapes.
    pub fn backprop(self, delta_post: &Fmaps<f32>, pre: &Fmaps<f32>) -> Fmaps<f32> {
        delta_post.hadamard(&pre.map(|v| self.derivative_scalar(v)))
    }

    /// [`Activation::apply`] writing into a caller-provided tensor instead
    /// of allocating one. Bit-identical; overwrites every element of `out`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn apply_into(self, pre: &Fmaps<f32>, out: &mut Fmaps<f32>) {
        assert_eq!(pre.shape(), out.shape(), "activation shape mismatch");
        for (o, &p) in out.as_mut_slice().iter_mut().zip(pre.as_slice()) {
            *o = self.apply_scalar(p);
        }
    }

    /// [`Activation::backprop`] writing into a caller-provided tensor
    /// instead of allocating one. Bit-identical (same per-element
    /// `delta · σ'(pre)` product); overwrites every element of `out`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn backprop_into(self, delta_post: &Fmaps<f32>, pre: &Fmaps<f32>, out: &mut Fmaps<f32>) {
        assert_eq!(delta_post.shape(), pre.shape(), "activation shape mismatch");
        assert_eq!(pre.shape(), out.shape(), "activation shape mismatch");
        for ((o, &d), &p) in out
            .as_mut_slice()
            .iter_mut()
            .zip(delta_post.as_slice())
            .zip(pre.as_slice())
        {
            *o = d * self.derivative_scalar(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_passes_through() {
        assert_eq!(Activation::Identity.apply_scalar(-3.5), -3.5);
        assert_eq!(Activation::Identity.derivative_scalar(-3.5), 1.0);
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply_scalar(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply_scalar(2.0), 2.0);
        assert_eq!(Activation::Relu.derivative_scalar(-2.0), 0.0);
        assert_eq!(Activation::Relu.derivative_scalar(2.0), 1.0);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let a = Activation::LeakyRelu { alpha: 0.1 };
        assert_eq!(a.apply_scalar(-10.0), -1.0);
        assert_eq!(a.derivative_scalar(-10.0), 0.1);
        assert_eq!(a.apply_scalar(4.0), 4.0);
    }

    #[test]
    fn tanh_derivative_matches_finite_difference() {
        let eps = 1e-3f32;
        for x in [-2.0f32, -0.5, 0.0, 0.7, 1.9] {
            let fd = (Activation::Tanh.apply_scalar(x + eps)
                - Activation::Tanh.apply_scalar(x - eps))
                / (2.0 * eps);
            let an = Activation::Tanh.derivative_scalar(x);
            assert!((fd - an).abs() < 1e-3, "x={x}: fd={fd} an={an}");
        }
    }

    #[test]
    fn tensor_apply_and_backprop() {
        let pre = Fmaps::from_vec(1, 1, 3, vec![-1.0f32, 0.0, 2.0]);
        let a = Activation::LeakyRelu { alpha: 0.5 };
        assert_eq!(a.apply(&pre).as_slice(), &[-0.5, 0.0, 2.0]);
        let delta = Fmaps::from_vec(1, 1, 3, vec![1.0f32, 1.0, 1.0]);
        assert_eq!(a.backprop(&delta, &pre).as_slice(), &[0.5, 1.0, 1.0]);
    }

    #[test]
    fn into_variants_match_the_allocating_ones() {
        let pre = Fmaps::from_vec(1, 1, 4, vec![-2.0f32, -0.1, 0.0, 1.5]);
        let delta = Fmaps::from_vec(1, 1, 4, vec![0.5f32, -3.0, 2.0, 1.0]);
        for a in [
            Activation::Identity,
            Activation::Relu,
            Activation::LeakyRelu { alpha: 0.2 },
            Activation::Tanh,
        ] {
            let mut out = Fmaps::zeros(1, 1, 4);
            a.apply_into(&pre, &mut out);
            assert_eq!(out, a.apply(&pre), "{a:?} apply");
            a.backprop_into(&delta, &pre, &mut out);
            assert_eq!(out, a.backprop(&delta, &pre), "{a:?} backprop");
        }
    }

    #[test]
    fn default_is_identity() {
        assert_eq!(Activation::default(), Activation::Identity);
    }
}
