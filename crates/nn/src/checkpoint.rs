//! Checkpointing: serialise a trained [`GanPair`] and restore it later.
//!
//! Both networks are plain serde data structures, so any serde format
//! works; the round-trip re-validates the pair's shape contract on load.
//! [`Checkpoint::save_to`] / [`Checkpoint::load_from`] persist the JSON
//! payload through the crash-consistent `zfgan-store` envelope (CRC'd,
//! atomically renamed, generation-retained), so an on-disk checkpoint is
//! either bit-exact or a typed [`CheckpointError`] — never silently wrong
//! weights.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use zfgan_store::Store;

use crate::network::ConvNet;
use crate::trainer::GanPair;

/// Why a checkpoint could not be restored — each variant names the
/// invariant that failed, so a CLI can print a one-line diagnosis
/// (payload truncation vs bad header vs shape mismatch) instead of a
/// generic shape error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The payload did not parse as checkpoint JSON (truncation, editing,
    /// or the store returned bytes of a different artifact).
    Parse(String),
    /// One network parsed but violates its own internal invariants.
    InvalidNetwork {
        /// Which network: `"generator"` or `"discriminator"`.
        network: &'static str,
        /// The layer-level reason reported by the network validator.
        reason: String,
    },
    /// Both networks are individually valid but do not form a compatible
    /// Generator/Discriminator pair.
    PairMismatch(String),
    /// The durability layer failed: corrupt envelope, I/O error, no valid
    /// generation. The message is the store's one-line diagnosis.
    Store(String),
    /// A non-network portion of a durable snapshot is invalid (optimizer
    /// shape, RNG state, trainer config).
    InvalidState {
        /// Which portion: `"optimizer"`, `"rng"`, `"config"`, ….
        what: &'static str,
        /// Why it was rejected.
        reason: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Parse(msg) => write!(f, "checkpoint parse error: {msg}"),
            CheckpointError::InvalidNetwork { network, reason } => {
                write!(f, "checkpoint {network} invalid: {reason}")
            }
            CheckpointError::PairMismatch(msg) => {
                write!(f, "checkpoint pair mismatch: {msg}")
            }
            CheckpointError::Store(msg) => write!(f, "checkpoint store: {msg}"),
            CheckpointError::InvalidState { what, reason } => {
                write!(f, "checkpoint {what} invalid: {reason}")
            }
        }
    }
}

impl Error for CheckpointError {}

/// A serialisable snapshot of a Generator/Discriminator pair.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use zfgan_nn::{Checkpoint, GanPair};
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let pair = GanPair::tiny(&mut rng);
/// let snapshot = Checkpoint::from_pair(&pair);
/// let restored = snapshot.into_pair()?;
/// assert_eq!(restored.image_shape(), pair.image_shape());
/// # Ok::<(), zfgan_nn::CheckpointError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    generator: ConvNet,
    discriminator: ConvNet,
}

impl Checkpoint {
    /// Snapshots a pair (clones both networks).
    pub fn from_pair(pair: &GanPair) -> Self {
        Self {
            generator: pair.generator().clone(),
            discriminator: pair.discriminator().clone(),
        }
    }

    /// Restores the pair, re-validating both networks' internal invariants
    /// and their shape compatibility.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::InvalidNetwork`] if a network violates its own
    /// invariants (the error names which network and why);
    /// [`CheckpointError::PairMismatch`] if both are valid but do not
    /// compose into a GAN.
    pub fn into_pair(self) -> Result<GanPair, CheckpointError> {
        self.validate()?;
        GanPair::new(self.generator, self.discriminator)
            .map_err(|e| CheckpointError::PairMismatch(e.to_string()))
    }

    /// Checks every invariant of both snapshotted networks — the guard that
    /// turns corrupted payloads into errors instead of panics. Called by
    /// [`Checkpoint::into_pair`] and [`Checkpoint::from_json`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::InvalidNetwork`] naming the offending
    /// network and layer.
    pub fn validate(&self) -> Result<(), CheckpointError> {
        self.generator
            .validate()
            .map_err(|e| CheckpointError::InvalidNetwork {
                network: "generator",
                reason: e.to_string(),
            })?;
        self.discriminator
            .validate()
            .map_err(|e| CheckpointError::InvalidNetwork {
                network: "discriminator",
                reason: e.to_string(),
            })
    }

    /// Serialises the checkpoint to JSON (bit-exact float round-trip).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialisation is infallible")
    }

    /// Parses and fully validates a JSON checkpoint. Truncated, edited or
    /// shape-mismatched payloads return an error — never a panic.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Parse`] if the JSON does not parse;
    /// [`CheckpointError::InvalidNetwork`] if the parsed networks violate
    /// any invariant.
    pub fn from_json(json: &str) -> Result<Self, CheckpointError> {
        let cp: Self =
            serde_json::from_str(json).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        cp.validate()?;
        Ok(cp)
    }

    /// Publishes this checkpoint as the next generation of `key` in the
    /// store, tagged with `config_hash`. The write is atomic and fsynced
    /// (see `zfgan-store`), so a crash at any point leaves the previous
    /// generation intact.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Store`] if the durability layer fails.
    pub fn save_to(
        &self,
        store: &mut Store,
        key: &str,
        config_hash: u64,
    ) -> Result<u64, CheckpointError> {
        store
            .publish(key, config_hash, self.to_json().as_bytes())
            .map_err(|e| CheckpointError::Store(e.to_string()))
    }

    /// Loads the newest valid checkpoint generation of `key`, falling
    /// back past generations whose envelope fails its CRC **or** whose
    /// payload fails checkpoint validation. `Ok(None)` means the key has
    /// never been published.
    ///
    /// When `expected_hash` is given, generations written under a
    /// different config hash are skipped the same way.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Store`] if no valid generation survives
    /// the fallback ladder or the store I/O fails.
    pub fn load_from(
        store: &mut Store,
        key: &str,
        expected_hash: Option<u64>,
    ) -> Result<Option<(u64, Self)>, CheckpointError> {
        let loaded = store
            .load_latest_where(key, |env| {
                if let Some(expected) = expected_hash {
                    if env.config_hash != expected {
                        return Err(format!(
                            "config hash {:#018x} does not match expected {expected:#018x}",
                            env.config_hash
                        ));
                    }
                }
                let json = std::str::from_utf8(&env.payload)
                    .map_err(|e| format!("payload is not UTF-8: {e}"))?;
                Checkpoint::from_json(json)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            })
            .map_err(|e| CheckpointError::Store(e.to_string()))?;
        let Some(loaded) = loaded else {
            return Ok(None);
        };
        let json = std::str::from_utf8(&loaded.payload)
            .map_err(|e| CheckpointError::Parse(format!("payload is not UTF-8: {e}")))?;
        let cp = Checkpoint::from_json(json)?;
        Ok(Some((loaded.generation, cp)))
    }

    /// The snapshotted Generator.
    pub fn generator(&self) -> &ConvNet {
        &self.generator
    }

    /// The snapshotted Discriminator.
    pub fn discriminator(&self) -> &ConvNet {
        &self.discriminator
    }

    /// Builds a checkpoint from two already-validated networks (used by
    /// tests constructing adversarial payloads).
    pub fn from_networks(generator: ConvNet, discriminator: ConvNet) -> Self {
        Self {
            generator,
            discriminator,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicU64, Ordering};
    use zfgan_store::StoreConfig;
    use zfgan_tensor::Fmaps;

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_store(tag: &str) -> Store {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!(
            "zfgan-nn-ckpt-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        Store::open(root, StoreConfig::default()).expect("open temp store")
    }

    #[test]
    fn json_round_trip_preserves_behaviour() {
        let mut rng = SmallRng::seed_from_u64(7);
        let pair = GanPair::tiny(&mut rng);
        let z = Fmaps::random(8, 1, 1, 1.0, &mut rng);
        let before = pair.generator().forward(&z).unwrap().output().clone();

        let json = serde_json::to_string(&Checkpoint::from_pair(&pair)).unwrap();
        let restored: Checkpoint = serde_json::from_str(&json).unwrap();
        let restored = restored.into_pair().unwrap();
        let after = restored.generator().forward(&z).unwrap().output().clone();
        assert_eq!(before, after, "restored generator must be bit-identical");
    }

    #[test]
    fn mismatched_networks_fail_to_restore() {
        let mut rng = SmallRng::seed_from_u64(8);
        let a = GanPair::tiny(&mut rng);
        let bad = Checkpoint {
            generator: a.discriminator().clone(), // wrong role
            discriminator: a.discriminator().clone(),
        };
        match bad.into_pair() {
            Err(CheckpointError::PairMismatch(msg)) => {
                assert!(msg.contains("generator produces"), "{msg}")
            }
            other => panic!("expected PairMismatch, got {other:?}"),
        }
    }

    #[test]
    fn parse_and_network_errors_are_distinguished() {
        let mut rng = SmallRng::seed_from_u64(9);
        let json = Checkpoint::from_pair(&GanPair::tiny(&mut rng)).to_json();

        assert!(matches!(
            Checkpoint::from_json(&json[..json.len() / 2]),
            Err(CheckpointError::Parse(_))
        ));

        let zero_stride = json.replacen("\"stride\":2", "\"stride\":0", 1);
        assert_ne!(zero_stride, json);
        match Checkpoint::from_json(&zero_stride) {
            Err(CheckpointError::InvalidNetwork { reason, .. }) => {
                assert!(reason.contains("stride"), "{reason}")
            }
            other => panic!("expected InvalidNetwork, got {other:?}"),
        }
    }

    #[test]
    fn store_round_trip_is_bit_exact() {
        let mut rng = SmallRng::seed_from_u64(10);
        let cp = Checkpoint::from_pair(&GanPair::tiny(&mut rng));
        let mut store = temp_store("roundtrip");
        let gen = cp.save_to(&mut store, "ckpt", 0xfeed).unwrap();
        assert_eq!(gen, 1);
        let (g, loaded) = Checkpoint::load_from(&mut store, "ckpt", Some(0xfeed))
            .unwrap()
            .expect("generation exists");
        assert_eq!(g, 1);
        assert_eq!(loaded.to_json(), cp.to_json(), "payload must be bit-exact");
    }

    #[test]
    fn corrupt_generation_falls_back_semantically() {
        let mut rng = SmallRng::seed_from_u64(11);
        let cp = Checkpoint::from_pair(&GanPair::tiny(&mut rng));
        let mut store = temp_store("fallback");
        cp.save_to(&mut store, "ckpt", 1).unwrap();
        // A generation that is a *valid envelope* around an invalid
        // checkpoint (zero stride): the semantic validator must skip it.
        let bad_json = cp.to_json().replacen("\"stride\":2", "\"stride\":0", 1);
        store.publish("ckpt", 1, bad_json.as_bytes()).unwrap();
        let (g, _) = Checkpoint::load_from(&mut store, "ckpt", None)
            .unwrap()
            .expect("fallback generation exists");
        assert_eq!(g, 1, "must fall back past the semantically-bad generation");
    }

    #[test]
    fn missing_key_is_none_and_store_errors_are_typed() {
        let mut store = temp_store("missing");
        assert!(matches!(
            Checkpoint::load_from(&mut store, "never", None),
            Ok(None)
        ));
        store.publish("bad", 0, b"garbage").unwrap();
        // Valid envelope, non-checkpoint payload: the ladder runs dry.
        match Checkpoint::load_from(&mut store, "bad", None) {
            Err(CheckpointError::Store(msg)) => {
                assert!(msg.contains("no valid generation"), "{msg}")
            }
            other => panic!("expected Store error, got {other:?}"),
        }
    }
}
