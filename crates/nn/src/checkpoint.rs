//! Checkpointing: serialise a trained [`GanPair`] and restore it later.
//!
//! Both networks are plain serde data structures, so any serde format
//! works; the round-trip re-validates the pair's shape contract on load.

use serde::{Deserialize, Serialize};
use zfgan_tensor::{ShapeError, TensorResult};

use crate::network::ConvNet;
use crate::trainer::GanPair;

/// A serialisable snapshot of a Generator/Discriminator pair.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use zfgan_nn::{Checkpoint, GanPair};
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let pair = GanPair::tiny(&mut rng);
/// let snapshot = Checkpoint::from_pair(&pair);
/// let restored = snapshot.into_pair()?;
/// assert_eq!(restored.image_shape(), pair.image_shape());
/// # Ok::<(), zfgan_tensor::ShapeError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    generator: ConvNet,
    discriminator: ConvNet,
}

impl Checkpoint {
    /// Snapshots a pair (clones both networks).
    pub fn from_pair(pair: &GanPair) -> Self {
        Self {
            generator: pair.generator().clone(),
            discriminator: pair.discriminator().clone(),
        }
    }

    /// Restores the pair, re-validating both networks' internal invariants
    /// and their shape compatibility.
    ///
    /// # Errors
    ///
    /// Returns an error if the serialised networks are not a valid pair
    /// (e.g. the payload was edited or truncated).
    pub fn into_pair(self) -> TensorResult<GanPair> {
        self.validate()?;
        GanPair::new(self.generator, self.discriminator)
    }

    /// Checks every invariant of both snapshotted networks — the guard that
    /// turns corrupted payloads into errors instead of panics. Called by
    /// [`Checkpoint::into_pair`] and [`Checkpoint::from_json`].
    ///
    /// # Errors
    ///
    /// Returns a descriptive error naming the offending network and layer.
    pub fn validate(&self) -> TensorResult<()> {
        self.generator
            .validate()
            .map_err(|e| ShapeError::new(format!("generator: {e}")))?;
        self.discriminator
            .validate()
            .map_err(|e| ShapeError::new(format!("discriminator: {e}")))
    }

    /// Serialises the checkpoint to JSON (bit-exact float round-trip).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialisation is infallible")
    }

    /// Parses and fully validates a JSON checkpoint. Truncated, edited or
    /// shape-mismatched payloads return an error — never a panic.
    ///
    /// # Errors
    ///
    /// Returns an error if the JSON does not parse or the parsed networks
    /// violate any invariant.
    pub fn from_json(json: &str) -> TensorResult<Self> {
        let cp: Self = serde_json::from_str(json)
            .map_err(|e| ShapeError::new(format!("checkpoint parse error: {e}")))?;
        cp.validate()?;
        Ok(cp)
    }

    /// The snapshotted Generator.
    pub fn generator(&self) -> &ConvNet {
        &self.generator
    }

    /// The snapshotted Discriminator.
    pub fn discriminator(&self) -> &ConvNet {
        &self.discriminator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use zfgan_tensor::Fmaps;

    #[test]
    fn json_round_trip_preserves_behaviour() {
        let mut rng = SmallRng::seed_from_u64(7);
        let pair = GanPair::tiny(&mut rng);
        let z = Fmaps::random(8, 1, 1, 1.0, &mut rng);
        let before = pair.generator().forward(&z).unwrap().output().clone();

        let json = serde_json::to_string(&Checkpoint::from_pair(&pair)).unwrap();
        let restored: Checkpoint = serde_json::from_str(&json).unwrap();
        let restored = restored.into_pair().unwrap();
        let after = restored.generator().forward(&z).unwrap().output().clone();
        assert_eq!(before, after, "restored generator must be bit-identical");
    }

    #[test]
    fn mismatched_networks_fail_to_restore() {
        let mut rng = SmallRng::seed_from_u64(8);
        let a = GanPair::tiny(&mut rng);
        let bad = Checkpoint {
            generator: a.discriminator().clone(), // wrong role
            discriminator: a.discriminator().clone(),
        };
        assert!(bad.into_pair().is_err());
    }
}
