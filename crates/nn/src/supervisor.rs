//! Supervised training: a watchdog wrapper around [`GanTrainer`] that
//! turns transient faults into bounded retries instead of ruined runs.
//!
//! The paper's accelerator trains for hours on end; a single flipped bit
//! in a parameter word, a diverging critic, or a panicking worker thread
//! would otherwise waste the whole run. [`SupervisedTrainer`] wraps each
//! [`GanTrainer::train_iteration`] in a recovery loop:
//!
//! 1. **Checkpoint** — before an iteration, the last known-good
//!    [`TrainerState`] (networks *and* optimizer moments) and the RNG
//!    state are held, so a rollback re-executes the step bit-identically.
//! 2. **Execute** — the iteration runs under `catch_unwind`, so a worker
//!    panic is contained. Optionally a [`FaultPlan`] at
//!    [`FaultSite::TrainerStep`] corrupts one critic parameter per step,
//!    which is how campaigns measure end-to-end resilience.
//! 3. **Check** — losses must be finite and bounded, the Wasserstein
//!    estimate must not collapse, every parameter must be finite and
//!    bounded.
//! 4. **Recover** — on any anomaly: roll back, restore the RNG, retry
//!    (bounded by [`SupervisorConfig::max_retries`]). A panic
//!    additionally *degrades* the convolution backend —
//!    `Parallel(n) → Parallel(n/2) → LoweredZeroFree` — on the theory
//!    that the thread pool, not the math, is what failed. All backends
//!    are bit-identical, so degradation changes throughput only.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::Rng;
use serde::{Deserialize, Serialize};
use zfgan_tensor::fault::{FaultPlan, FaultSite};
use zfgan_tensor::ConvBackend;

use crate::checkpoint::CheckpointError;
use crate::durable::{DurableCheckpointer, DurableSnapshot, TrainRecord};
use crate::trainer::{ConfigError, DisStepReport, GanTrainer, GenStepReport, TrainerState};

/// Configuration of a [`SupervisedTrainer`]'s watchdogs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// How many times one iteration may be rolled back and re-executed
    /// before the supervisor gives up.
    pub max_retries: usize,
    /// `|loss|` above this is flagged as [`Anomaly::Divergence`].
    pub divergence_threshold: f64,
    /// `|parameter|` above this (or any non-finite parameter) is flagged
    /// as [`Anomaly::CorruptWeights`].
    pub weight_limit: f32,
    /// A Wasserstein estimate below `-collapse_threshold` is flagged as
    /// [`Anomaly::CriticCollapse`].
    pub collapse_threshold: f64,
    /// Optional fault population injected into the critic's parameters,
    /// one word per step, at [`FaultSite::TrainerStep`].
    pub fault: Option<FaultPlan>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            divergence_threshold: 1e6,
            weight_limit: 1e6,
            collapse_threshold: 1e6,
            fault: None,
        }
    }
}

impl SupervisorConfig {
    /// Checks the thresholds for validity.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.divergence_threshold.is_finite() || self.divergence_threshold <= 0.0 {
            return Err(ConfigError::new(format!(
                "divergence_threshold must be positive and finite, got {}",
                self.divergence_threshold
            )));
        }
        if !self.weight_limit.is_finite() || self.weight_limit <= 0.0 {
            return Err(ConfigError::new(format!(
                "weight_limit must be positive and finite, got {}",
                self.weight_limit
            )));
        }
        if !self.collapse_threshold.is_finite() || self.collapse_threshold <= 0.0 {
            return Err(ConfigError::new(format!(
                "collapse_threshold must be positive and finite, got {}",
                self.collapse_threshold
            )));
        }
        Ok(())
    }
}

/// A condition the supervisor's health checks flag after an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Anomaly {
    /// A loss or the Wasserstein estimate came back NaN or infinite.
    NonFiniteLoss,
    /// A loss magnitude exceeded the divergence threshold.
    Divergence,
    /// A parameter is non-finite or exceeds the weight limit.
    CorruptWeights,
    /// The Wasserstein estimate collapsed below `-collapse_threshold`.
    CriticCollapse,
    /// The iteration itself panicked (e.g. a dead worker thread).
    WorkerPanic,
}

impl Anomaly {
    /// Short stable name for logs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Anomaly::NonFiniteLoss => "non-finite-loss",
            Anomaly::Divergence => "divergence",
            Anomaly::CorruptWeights => "corrupt-weights",
            Anomaly::CriticCollapse => "critic-collapse",
            Anomaly::WorkerPanic => "worker-panic",
        }
    }
}

/// Counters describing everything a [`SupervisedTrainer`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisorStats {
    /// Iterations that completed healthily.
    pub iterations: u64,
    /// Faults the configured plan actually fired into parameters.
    pub faults_injected: u64,
    /// Health-check failures and panics observed (before retries).
    pub anomalies: u64,
    /// Rollbacks to the last known-good state.
    pub rollbacks: u64,
    /// Re-executions after a rollback.
    pub retries: u64,
    /// Backend degradations after panics.
    pub degradations: u64,
}

/// Why supervised training stopped.
#[derive(Debug, Clone, PartialEq)]
pub enum SupervisorError {
    /// The supervisor configuration is invalid.
    Config(ConfigError),
    /// One iteration stayed anomalous through every allowed retry.
    RetriesExhausted {
        /// Attempts spent on the failing iteration (`1 + max_retries`).
        attempts: usize,
        /// The anomaly observed on the final attempt.
        last_anomaly: Anomaly,
    },
}

impl fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupervisorError::Config(e) => write!(f, "{e}"),
            SupervisorError::RetriesExhausted {
                attempts,
                last_anomaly,
            } => write!(
                f,
                "iteration still anomalous ({}) after {attempts} attempts",
                last_anomaly.name()
            ),
        }
    }
}

impl Error for SupervisorError {}

/// Runs a closure with panic containment, mapping a panic to
/// [`Anomaly::WorkerPanic`] — the primitive behind the supervisor's
/// step execution, usable standalone for guarding auxiliary work
/// (metric computation, checkpoint serialisation, …).
///
/// # Errors
///
/// Returns [`Anomaly::WorkerPanic`] if the closure panics.
pub fn run_guarded<T>(f: impl FnOnce() -> T) -> Result<T, Anomaly> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|_| Anomaly::WorkerPanic)
}

/// A [`GanTrainer`] wrapped in checkpoint/rollback/retry supervision.
#[derive(Debug)]
pub struct SupervisedTrainer {
    trainer: GanTrainer,
    config: SupervisorConfig,
    last_good: TrainerState,
    backend: ConvBackend,
    /// Global step-attempt counter: the fault plan's index space, so
    /// injection is deterministic across retries and runs.
    attempts: u64,
    stats: SupervisorStats,
    checkpointer: Option<DurableCheckpointer>,
}

impl SupervisedTrainer {
    /// Wraps a trainer, snapshotting its current state as the first
    /// known-good checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`SupervisorError::Config`] if the thresholds are invalid.
    pub fn new(trainer: GanTrainer, config: SupervisorConfig) -> Result<Self, SupervisorError> {
        config.validate().map_err(SupervisorError::Config)?;
        let last_good = trainer.snapshot();
        Ok(Self {
            trainer,
            config,
            last_good,
            backend: ConvBackend::default(),
            attempts: 0,
            stats: SupervisorStats::default(),
            checkpointer: None,
        })
    }

    /// The wrapped trainer.
    pub fn trainer(&self) -> &GanTrainer {
        &self.trainer
    }

    /// Attaches a durable checkpointer: [`maybe_publish`] will persist the
    /// last-good state to its store at the checkpointer's cadence.
    ///
    /// [`maybe_publish`]: SupervisedTrainer::maybe_publish
    pub fn set_checkpointer(&mut self, checkpointer: DurableCheckpointer) {
        self.checkpointer = Some(checkpointer);
    }

    /// The attached checkpointer, if any (crash hooks, corruption
    /// campaigns, direct store access).
    pub fn checkpointer_mut(&mut self) -> Option<&mut DurableCheckpointer> {
        self.checkpointer.as_mut()
    }

    /// Publishes the **last-good** state as a durable snapshot if a
    /// checkpointer is attached and `iteration` is one of its publication
    /// points. Returns the published generation, or `None` when not due
    /// (or no checkpointer is attached).
    ///
    /// The snapshot captures the supervisor's rollback checkpoint — the
    /// state every retry path converges to — plus the step RNG and the
    /// run's loss records, so a resume replays the exact trajectory.
    ///
    /// # Errors
    ///
    /// Propagates durability-layer failures as [`CheckpointError`].
    pub fn maybe_publish(
        &mut self,
        iteration: u64,
        rng: &rand::rngs::SmallRng,
        records: &[TrainRecord],
    ) -> Result<Option<u64>, CheckpointError> {
        let Some(cp) = self.checkpointer.as_mut() else {
            return Ok(None);
        };
        if !cp.is_due(iteration) {
            return Ok(None);
        }
        let snapshot = DurableSnapshot::capture(
            &self.last_good,
            self.trainer.config(),
            rng,
            iteration,
            records,
        );
        cp.publish(&snapshot).map(Some)
    }

    /// The supervision counters so far.
    pub fn stats(&self) -> &SupervisorStats {
        &self.stats
    }

    /// The currently active convolution backend (possibly degraded).
    pub fn backend(&self) -> ConvBackend {
        self.backend
    }

    /// Selects the convolution backend. The supervisor remembers it so a
    /// rollback (which restores snapshotted layers, carrying *their*
    /// backend) re-applies the active — possibly degraded — choice.
    pub fn set_backend(&mut self, backend: ConvBackend) {
        self.backend = backend;
        self.trainer.gan_mut().set_backend(backend);
    }

    /// Unwraps the supervised trainer.
    pub fn into_inner(self) -> GanTrainer {
        self.trainer
    }

    /// One supervised WGAN iteration: execute under panic containment,
    /// inject the configured fault, health-check, and roll back + retry
    /// on any anomaly. The RNG is restored together with the trainer
    /// state, so a clean retry replays the exact step.
    ///
    /// # Errors
    ///
    /// Returns [`SupervisorError::RetriesExhausted`] if the iteration is
    /// still anomalous after `max_retries` rollbacks.
    pub fn train_iteration<R: Rng + Clone>(
        &mut self,
        batch: usize,
        rng: &mut R,
    ) -> Result<(DisStepReport, GenStepReport), SupervisorError> {
        let mut attempts_this_step = 0usize;
        loop {
            let rng_checkpoint = rng.clone();
            let step_index = self.attempts;
            self.attempts += 1;
            attempts_this_step += 1;

            let trainer = &mut self.trainer;
            let outcome = catch_unwind(AssertUnwindSafe(|| trainer.train_iteration(batch, rng)));

            let anomaly = match outcome {
                Err(_) => {
                    // The trainer may be mid-update; only the rollback
                    // below makes its state trustworthy again.
                    self.degrade_backend();
                    Some(Anomaly::WorkerPanic)
                }
                Ok(reports) => {
                    self.inject_fault(step_index);
                    match self.health_check(&reports.0, &reports.1) {
                        None => {
                            self.last_good = self.trainer.snapshot();
                            self.stats.iterations += 1;
                            zfgan_telemetry::count("supervisor_iterations_total", &[], 1);
                            return Ok(reports);
                        }
                        Some(a) => Some(a),
                    }
                }
            };

            if let Some(a) = anomaly {
                self.stats.anomalies += 1;
                self.stats.rollbacks += 1;
                zfgan_telemetry::count("supervisor_anomalies_total", &[("kind", a.name())], 1);
                zfgan_telemetry::count("supervisor_rollbacks_total", &[], 1);
                self.trainer.restore(&self.last_good);
                self.trainer.gan_mut().set_backend(self.backend);
                *rng = rng_checkpoint;
                if attempts_this_step > self.config.max_retries {
                    return Err(SupervisorError::RetriesExhausted {
                        attempts: attempts_this_step,
                        last_anomaly: a,
                    });
                }
                self.stats.retries += 1;
                zfgan_telemetry::count("supervisor_retries_total", &[], 1);
            }
        }
    }

    /// Halves the parallel backend's thread count (floor: sequential
    /// zero-free) after a panic: if a worker died, fewer workers is the
    /// bit-identical way to keep going.
    fn degrade_backend(&mut self) {
        if let ConvBackend::Parallel(n) = self.backend {
            self.backend = if n > 2 {
                ConvBackend::Parallel(n / 2)
            } else {
                ConvBackend::LoweredZeroFree
            };
            self.stats.degradations += 1;
            zfgan_telemetry::count("supervisor_degradations_total", &[], 1);
        }
    }

    /// Fires the configured [`FaultSite::TrainerStep`] plan for this step
    /// index, corrupting one deterministic critic parameter.
    fn inject_fault(&mut self, step_index: u64) {
        let Some(plan) = self.config.fault else {
            return;
        };
        if !plan.fires(FaultSite::TrainerStep, step_index) {
            return;
        }
        let critic = self.trainer.gan_mut().discriminator_mut();
        let n_layers = critic.layers().len();
        let layer_idx = plan.pick(step_index, 0x6c61_7965_7200_0000, n_layers);
        let Some(layer) = critic.layers_mut().get_mut(layer_idx) else {
            return;
        };
        let words = layer.weights_mut().as_mut_slice();
        if words.is_empty() {
            return;
        }
        let word_idx = plan.pick(step_index, 0x776f_7264_0000_0000, words.len());
        words[word_idx] = plan.apply(words[word_idx]);
        self.stats.faults_injected += 1;
        zfgan_telemetry::count("supervisor_faults_injected_total", &[], 1);
    }

    /// Post-iteration health checks, cheapest first.
    fn health_check(&self, dis: &DisStepReport, gen: &GenStepReport) -> Option<Anomaly> {
        let losses = [dis.dis_loss, dis.wasserstein_estimate, gen.gen_loss];
        if losses.iter().any(|l| !l.is_finite()) {
            return Some(Anomaly::NonFiniteLoss);
        }
        if dis.dis_loss.abs() > self.config.divergence_threshold
            || gen.gen_loss.abs() > self.config.divergence_threshold
        {
            return Some(Anomaly::Divergence);
        }
        if dis.wasserstein_estimate < -self.config.collapse_threshold {
            return Some(Anomaly::CriticCollapse);
        }
        let nets = [
            self.trainer.gan().generator(),
            self.trainer.gan().discriminator(),
        ];
        for net in nets {
            for layer in net.layers() {
                for &w in layer.weights().as_slice().iter().chain(layer.bias().iter()) {
                    if !w.is_finite() || w.abs() > self.config.weight_limit {
                        return Some(Anomaly::CorruptWeights);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::trainer::{GanPair, TrainerConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use zfgan_tensor::fault::FaultKind;

    fn supervised(seed: u64, fault: Option<FaultPlan>) -> SupervisedTrainer {
        let mut rng = SmallRng::seed_from_u64(seed);
        let trainer = GanTrainer::new(
            GanPair::tiny(&mut rng),
            TrainerConfig {
                n_critic: 1,
                ..TrainerConfig::default()
            },
        );
        SupervisedTrainer::new(
            trainer,
            SupervisorConfig {
                fault,
                ..SupervisorConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn clean_training_matches_unsupervised() {
        let mut rng_a = SmallRng::seed_from_u64(30);
        let mut sup = supervised(31, None);
        let mut plain = GanTrainer::new(
            GanPair::tiny(&mut SmallRng::seed_from_u64(31)),
            TrainerConfig {
                n_critic: 1,
                ..TrainerConfig::default()
            },
        );
        let mut rng_b = rng_a.clone();
        for _ in 0..3 {
            let (d_sup, g_sup) = sup.train_iteration(2, &mut rng_a).unwrap();
            let (d, g) = plain.train_iteration(2, &mut rng_b);
            assert_eq!(d_sup, d);
            assert_eq!(g_sup, g);
        }
        assert_eq!(sup.stats().iterations, 3);
        assert_eq!(sup.stats().anomalies, 0);
    }

    #[test]
    fn injected_faults_trigger_rollback_and_training_completes() {
        // Bit 30 on a clipped weight (|w| ≤ 0.01) always produces a huge
        // magnitude, so every effective injection must be caught.
        let plan = FaultPlan::new(
            77,
            0.7,
            FaultSite::TrainerStep,
            FaultKind::BitFlip { bit: 30 },
        )
        .unwrap();
        let mut sup = supervised(32, Some(plan));
        let mut rng = SmallRng::seed_from_u64(33);
        let mut completed = 0;
        for _ in 0..6 {
            match sup.train_iteration(2, &mut rng) {
                Ok((d, g)) => {
                    assert!(d.dis_loss.is_finite());
                    assert!(g.gen_loss.is_finite());
                    completed += 1;
                }
                Err(SupervisorError::RetriesExhausted { .. }) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let stats = *sup.stats();
        assert!(stats.faults_injected > 0, "{stats:?}");
        assert!(stats.rollbacks > 0, "{stats:?}");
        assert_eq!(stats.rollbacks, stats.anomalies, "{stats:?}");
        assert!(completed > 0, "{stats:?}");
        // After supervision every surviving parameter is healthy.
        for net in [
            sup.trainer().gan().generator(),
            sup.trainer().gan().discriminator(),
        ] {
            for layer in net.layers() {
                assert!(layer.weights().as_slice().iter().all(|w| w.is_finite()));
            }
        }
    }

    #[test]
    fn nan_weights_roll_back_to_last_good_state() {
        let mut sup = supervised(34, None);
        let mut rng = SmallRng::seed_from_u64(35);
        sup.train_iteration(2, &mut rng).unwrap();
        let good = sup.trainer().gan().discriminator().layers()[0]
            .weights()
            .clone();
        // Corrupt a parameter behind the supervisor's back; the next
        // iteration's health check must roll it back.
        sup.trainer.gan_mut().discriminator_mut().layers_mut()[0]
            .weights_mut()
            .as_mut_slice()[0] = f32::NAN;
        let out = sup.train_iteration(2, &mut rng);
        assert!(out.is_ok(), "{out:?}");
        assert!(sup.stats().rollbacks >= 1);
        // The corrupted word never survived into the resumed trajectory.
        let now = &sup.trainer().gan().discriminator().layers()[0];
        assert!(now.weights().as_slice()[0].is_finite());
        let _ = good;
    }

    #[test]
    fn retries_exhausted_is_reported_with_the_anomaly() {
        // Rate 1.0: the fault fires on every attempt, so no retry can
        // ever pass the health check.
        let plan = FaultPlan::new(
            1,
            1.0,
            FaultSite::TrainerStep,
            FaultKind::BitFlip { bit: 30 },
        )
        .unwrap();
        let mut sup = supervised(36, Some(plan));
        let mut rng = SmallRng::seed_from_u64(37);
        let err = sup.train_iteration(2, &mut rng).unwrap_err();
        match err {
            SupervisorError::RetriesExhausted {
                attempts,
                last_anomaly,
            } => {
                assert_eq!(attempts, 1 + SupervisorConfig::default().max_retries);
                assert_eq!(last_anomaly, Anomaly::CorruptWeights);
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn panic_degrades_parallel_backend() {
        let mut sup = supervised(38, None);
        sup.set_backend(ConvBackend::Parallel(8));
        sup.degrade_backend();
        assert_eq!(sup.backend(), ConvBackend::Parallel(4));
        sup.degrade_backend();
        assert_eq!(sup.backend(), ConvBackend::Parallel(2));
        sup.degrade_backend();
        assert_eq!(sup.backend(), ConvBackend::LoweredZeroFree);
        sup.degrade_backend();
        assert_eq!(sup.backend(), ConvBackend::LoweredZeroFree);
        assert_eq!(sup.stats().degradations, 3);
    }

    #[test]
    fn run_guarded_contains_panics() {
        assert_eq!(run_guarded(|| 2 + 2), Ok(4));
        let mut calls = 0;
        let result = run_guarded(|| {
            calls += 1;
            panic!("boom");
        });
        assert_eq!(result, Err(Anomaly::WorkerPanic));
        assert_eq!(calls, 1);
    }

    #[test]
    fn bad_thresholds_are_rejected() {
        let mut rng = SmallRng::seed_from_u64(39);
        let trainer = GanTrainer::new(GanPair::tiny(&mut rng), TrainerConfig::default());
        let err = SupervisedTrainer::new(
            trainer,
            SupervisorConfig {
                weight_limit: 0.0,
                ..SupervisorConfig::default()
            },
        )
        .map(|_| ())
        .unwrap_err();
        assert!(err.to_string().contains("weight_limit"), "{err}");
    }
}
