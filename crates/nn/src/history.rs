//! A structured multi-iteration training driver with metric history.

use rand::Rng;
use serde::{Deserialize, Serialize};
use zfgan_tensor::Fmaps;

use crate::metrics;
use crate::trainer::GanTrainer;

/// Per-iteration metric snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration index.
    pub iteration: usize,
    /// Critic loss of the last critic step.
    pub dis_loss: f64,
    /// Generator loss of the generator step.
    pub gen_loss: f64,
    /// Held-out critic separation margin (Wasserstein estimate).
    pub separation: f64,
    /// Held-out ranking accuracy.
    pub ranking_accuracy: f64,
    /// Moment distance between generated and real held-out batches.
    pub moment_distance: f64,
}

/// The metric history of one training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingHistory {
    records: Vec<IterationRecord>,
}

impl TrainingHistory {
    /// The per-iteration records, oldest first.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Whether the critic's held-out separation improved from the first to
    /// the last recorded iteration.
    pub fn separation_improved(&self) -> bool {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => b.separation > a.separation,
            _ => false,
        }
    }

    /// The final record, if any iterations ran.
    pub fn last(&self) -> Option<&IterationRecord> {
        self.records.last()
    }
}

/// Runs `iterations` full WGAN iterations (each `n_critic` critic steps +
/// one generator step), evaluating held-out metrics after each, with real
/// batches drawn from `sample_reals`.
///
/// # Panics
///
/// Panics if `iterations`, `batch` or `eval_batch` is zero.
pub fn fit<R: Rng>(
    trainer: &mut GanTrainer,
    iterations: usize,
    batch: usize,
    eval_batch: usize,
    mut sample_reals: impl FnMut(usize, &mut R) -> Vec<Fmaps<f32>>,
    rng: &mut R,
) -> TrainingHistory {
    assert!(
        iterations > 0 && batch > 0 && eval_batch > 0,
        "sizes must be non-zero"
    );
    let mut history = TrainingHistory::default();
    for iteration in 0..iterations {
        let mut dis_loss = 0.0;
        for _ in 0..trainer.config().n_critic.max(1) {
            let reals = sample_reals(batch, rng);
            dis_loss = trainer.step_discriminator(&reals, rng).dis_loss;
        }
        let gen_loss = trainer.step_generator(batch, rng).gen_loss;

        // Held-out evaluation.
        let reals = sample_reals(eval_batch, rng);
        let fakes = trainer.gan().generate_batch(eval_batch, rng);
        history.records.push(IterationRecord {
            iteration,
            dis_loss,
            gen_loss,
            separation: metrics::critic_separation(trainer.gan().discriminator(), &reals, &fakes),
            ranking_accuracy: metrics::ranking_accuracy(
                trainer.gan().discriminator(),
                &reals,
                &fakes,
            ),
            moment_distance: metrics::moment_distance(&fakes, &reals),
        });
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{GanPair, LossKind, SyncMode, TrainerConfig};
    use crate::OptimizerKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fit_produces_a_history_and_the_critic_learns() {
        let mut rng = SmallRng::seed_from_u64(77);
        let pair = GanPair::tiny(&mut rng);
        let mut trainer = GanTrainer::new(
            pair,
            TrainerConfig {
                mode: SyncMode::Deferred,
                loss: LossKind::Wasserstein,
                optimizer: OptimizerKind::wgan_default(),
                learning_rate: 2e-3,
                weight_clip: Some(0.05),
                n_critic: 2,
            },
        );
        let history = fit(
            &mut trainer,
            12,
            6,
            8,
            |n, rng| {
                // Re-borrow the spec's sampler through a fresh pair shape.
                GanPair::tiny(&mut SmallRng::seed_from_u64(1)).sample_real_batch(n, rng)
            },
            &mut rng,
        );
        assert_eq!(history.records().len(), 12);
        assert!(
            history.separation_improved(),
            "history: {:?}",
            history.records().last()
        );
        let last = history.last().expect("non-empty");
        assert!(
            last.ranking_accuracy >= 0.5,
            "accuracy {}",
            last.ranking_accuracy
        );
        assert!(last.dis_loss.is_finite() && last.gen_loss.is_finite());
    }

    #[test]
    fn empty_history_reports_no_improvement() {
        let h = TrainingHistory::default();
        assert!(!h.separation_improved());
        assert!(h.last().is_none());
    }
}
