//! From-scratch GAN training for the `zfgan` reproduction.
//!
//! This crate implements everything the paper's *algorithm* side needs:
//!
//! * [`Activation`] — LeakyReLU / ReLU / Tanh / identity with derivatives,
//! * [`ConvLayer`] / [`ConvNet`] — strided (`S-CONV`) and transposed
//!   (`T-CONV`) convolutional layers with full backpropagation (paper
//!   Eqs. 3–4),
//! * [`wgan`] — the Wasserstein losses of paper Eqs. 1–2 and their output
//!   errors (Eq. 6),
//! * [`Optimizer`] — SGD and RMSProp (the WGAN default),
//! * [`GanTrainer`] — one-stop Discriminator/Generator updates in either
//!   [`SyncMode::Synchronized`] (the original algorithm: every sample's
//!   forward pass completes — and is buffered — before any backward pass)
//!   or [`SyncMode::Deferred`] (the paper's Section IV-A transformation:
//!   per-sample backward passes with `∇wᵢ` accumulation).
//!
//! The two modes are *exactly* equivalent because the WGAN loss is linear in
//! the critic outputs; [`GanTrainer`] exposes the buffered-intermediate
//! high-water mark of each mode so the paper's 2·batch → 1 memory claim is a
//! measurable fact rather than an assertion (see this crate's tests and the
//! `memory` bench binary).
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use zfgan_nn::{GanPair, GanTrainer, SyncMode, TrainerConfig};
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
//! // A tiny two-layer GAN over 8×8 single-channel images.
//! let pair = GanPair::tiny(&mut rng);
//! let mut trainer = GanTrainer::new(pair, TrainerConfig {
//!     mode: SyncMode::Deferred,
//!     ..TrainerConfig::default()
//! });
//! let reals = trainer.gan().sample_real_batch(4, &mut rng);
//! let report = trainer.step_discriminator(&reals, &mut rng);
//! assert!(report.wasserstein_estimate.is_finite());
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod activation;
pub mod batchnorm;
mod checkpoint;
pub mod durable;
pub mod history;
mod layer;
pub mod metrics;
mod network;
mod optimizer;
pub mod parallel;
pub mod supervisor;
mod trainer;
pub mod wgan;

pub use activation::Activation;
pub use batchnorm::{BatchNorm, BnCache};
pub use checkpoint::{Checkpoint, CheckpointError};
pub use durable::{DurableCheckpointer, DurableSnapshot, TrainRecord};
pub use history::{fit, IterationRecord, TrainingHistory};
pub use layer::{ConvLayer, Direction, LayerGrads};
pub use network::{ConvNet, Trace};
pub use optimizer::{Optimizer, OptimizerKind};
pub use parallel::ParallelError;
pub use supervisor::{
    Anomaly, SupervisedTrainer, SupervisorConfig, SupervisorError, SupervisorStats,
};
pub use trainer::{
    ConfigError, DisStepReport, GanPair, GanTrainer, GenStepReport, LossKind, SyncMode,
    TrainerConfig, TrainerState,
};
