//! The Wasserstein GAN losses (paper Eqs. 1–2) and their output-layer
//! errors (Eq. 6).
//!
//! The crucial property the paper exploits is that both losses are *linear
//! averages* of critic outputs, so the error each sample injects at the
//! critic's output layer is a constant (`∓1/m`) that does **not** depend on
//! the other samples in the batch — the mathematical licence for deferred
//! synchronization. [`dis_output_error_real`] and friends return exactly
//! those constants.

use zfgan_tensor::Fmaps;

/// Discriminator (critic) loss of paper Eq. 1:
/// `−(1/m) Σ [D(xᵢ) − D(x̃ᵢ)]` — the negated Wasserstein estimate.
///
/// # Panics
///
/// Panics if the two slices have different lengths or are empty.
pub fn dis_loss(real_scores: &[f64], fake_scores: &[f64]) -> f64 {
    assert_eq!(
        real_scores.len(),
        fake_scores.len(),
        "batch sizes must match"
    );
    assert!(!real_scores.is_empty(), "batch must be non-empty");
    let m = real_scores.len() as f64;
    -(real_scores.iter().sum::<f64>() - fake_scores.iter().sum::<f64>()) / m
}

/// Generator loss of paper Eq. 2: `−(1/m) Σ D(x̃ᵢ)`.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn gen_loss(fake_scores: &[f64]) -> f64 {
    assert!(!fake_scores.is_empty(), "batch must be non-empty");
    -fake_scores.iter().sum::<f64>() / fake_scores.len() as f64
}

/// The Wasserstein-distance estimate `（1/m)Σ[D(xᵢ) − D(x̃ᵢ)]` (the negated
/// discriminator loss) — the quantity WGAN training monitors.
pub fn wasserstein_estimate(real_scores: &[f64], fake_scores: &[f64]) -> f64 {
    -dis_loss(real_scores, fake_scores)
}

/// Paper Eq. 6: the error a *real* sample injects at the critic output
/// during a Discriminator update — `∂loss_dis/∂D(xᵢ) = −1/m`, independent
/// of every other sample.
pub fn dis_output_error_real(batch: usize) -> f32 {
    -1.0 / batch as f32
}

/// The error a *fake* sample injects at the critic output during a
/// Discriminator update — `∂loss_dis/∂D(x̃ᵢ) = +1/m`.
pub fn dis_output_error_fake(batch: usize) -> f32 {
    1.0 / batch as f32
}

/// The error a fake sample injects at the critic output during a
/// *Generator* update — `∂loss_gen/∂D(x̃ᵢ) = −1/m`.
pub fn gen_output_error(batch: usize) -> f32 {
    -1.0 / batch as f32
}

/// Original-GAN Discriminator loss over critic logits:
/// `−(1/m) Σ [log σ(zᵢ_real) + log(1 − σ(zᵢ_fake))]`.
///
/// # Panics
///
/// Panics if the batches are empty or of different lengths.
pub fn vanilla_dis_loss(real_logits: &[f64], fake_logits: &[f64]) -> f64 {
    assert_eq!(
        real_logits.len(),
        fake_logits.len(),
        "batch sizes must match"
    );
    assert!(!real_logits.is_empty(), "batch must be non-empty");
    let m = real_logits.len() as f64;
    -(real_logits
        .iter()
        .map(|&z| sigmoid(z).max(1e-12).ln())
        .sum::<f64>()
        + fake_logits
            .iter()
            .map(|&z| (1.0 - sigmoid(z)).max(1e-12).ln())
            .sum::<f64>())
        / m
}

/// Non-saturating original-GAN Generator loss: `−(1/m) Σ log σ(zᵢ)`.
///
/// # Panics
///
/// Panics if the batch is empty.
pub fn vanilla_gen_loss(fake_logits: &[f64]) -> f64 {
    assert!(!fake_logits.is_empty(), "batch must be non-empty");
    -fake_logits
        .iter()
        .map(|&z| sigmoid(z).max(1e-12).ln())
        .sum::<f64>()
        / fake_logits.len() as f64
}

/// Logistic sigmoid, numerically stable on both tails.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Output error of a *real* sample under the **original** (minimax) GAN
/// loss of Goodfellow et al. — `loss = −(1/m) Σ log σ(zᵢ)` over critic
/// logits `zᵢ`, so `∂loss/∂zᵢ = (σ(zᵢ) − 1)/m`.
///
/// Crucially for the paper's Section IV-A: although non-linear in the
/// *score*, the per-sample error still depends only on that sample's own
/// logit, so the deferred-synchronization transformation remains exact for
/// the original GAN formulation too (any loss of the form `(1/m) Σ f(zᵢ)`
/// qualifies).
pub fn vanilla_output_error_real(logit: f64, batch: usize) -> f32 {
    ((sigmoid(logit) - 1.0) / batch as f64) as f32
}

/// Output error of a *fake* sample during a Discriminator update under the
/// original GAN loss: `−(1/m) Σ log(1 − σ(zᵢ))` ⇒ `∂/∂zᵢ = σ(zᵢ)/m`.
pub fn vanilla_output_error_fake(logit: f64, batch: usize) -> f32 {
    (sigmoid(logit) / batch as f64) as f32
}

/// Output error of a fake sample during a *Generator* update under the
/// non-saturating objective `−(1/m) Σ log σ(zᵢ)` ⇒ `(σ(zᵢ) − 1)/m`.
pub fn vanilla_gen_output_error(logit: f64, batch: usize) -> f32 {
    vanilla_output_error_real(logit, batch)
}

/// Output-layer errors of a **batch-coupled** loss — the counterexample
/// that shows where deferred synchronization is *invalid*.
///
/// `loss = log Σ exp(D(x̃ᵢ))` (a log-sum-exp "soft-max-margin" objective
/// used by some energy-based GAN variants) has
/// `∂loss/∂D(x̃ᵢ) = softmax(scores)ᵢ`, which depends on **every** sample in
/// the batch. No per-sample constant like Eq. 6's `∓1/m` exists, so the
/// backward pass genuinely must wait for the whole batch — deferring it
/// would compute a different (wrong) gradient. The crate's tests
/// demonstrate this failure mode; the linear WGAN losses above are exactly
/// the structure that avoids it.
pub fn lse_output_errors(scores: &[f64]) -> Vec<f64> {
    assert!(!scores.is_empty(), "batch must be non-empty");
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / total).collect()
}

/// Whether a loss's per-sample output error can be computed from that
/// sample alone (the condition under which the paper's deferred
/// synchronization is exact).
///
/// Checks the definition directly: perturbing any *other* sample's score
/// must leave sample `i`'s error unchanged.
pub fn is_deferral_safe(errors_of: impl Fn(&[f64]) -> Vec<f64>, probe: &[f64]) -> bool {
    assert!(
        probe.len() >= 2,
        "need at least two samples to probe coupling"
    );
    let base = errors_of(probe);
    for j in 1..probe.len() {
        let mut perturbed = probe.to_vec();
        perturbed[j] += 1.0;
        let new = errors_of(&perturbed);
        if (new[0] - base[0]).abs() > 1e-12 {
            return false;
        }
    }
    true
}

/// Wraps a per-sample scalar error into the `1×1×1` feature-map shape that
/// the critic's backward pass consumes.
pub fn scalar_error(value: f32) -> Fmaps<f32> {
    Fmaps::from_vec(1, 1, 1, vec![value])
}

/// Extracts the critic's scalar score from its `1×1×1` output.
///
/// # Panics
///
/// Panics if the output is not `1×1×1` — i.e. the network is not a critic.
pub fn score(output: &Fmaps<f32>) -> f64 {
    assert_eq!(
        output.shape(),
        (1, 1, 1),
        "critic output must be a 1×1×1 scalar"
    );
    f64::from(*output.at(0, 0, 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dis_loss_is_negated_wasserstein() {
        let real = [1.0, 2.0, 3.0];
        let fake = [0.0, 1.0, 2.0];
        assert_eq!(dis_loss(&real, &fake), -1.0);
        assert_eq!(wasserstein_estimate(&real, &fake), 1.0);
    }

    #[test]
    fn gen_loss_averages() {
        assert_eq!(gen_loss(&[2.0, 4.0]), -3.0);
    }

    #[test]
    fn output_errors_are_per_sample_constants() {
        // Eq. 6: the per-sample error is ∓1/m regardless of the outputs —
        // this constancy is what allows deferring the synchronization.
        assert_eq!(dis_output_error_real(4), -0.25);
        assert_eq!(dis_output_error_fake(4), 0.25);
        assert_eq!(gen_output_error(4), -0.25);
    }

    #[test]
    fn errors_sum_to_full_batch_gradient() {
        // The summed per-sample errors reproduce the gradient of the
        // batch-mean loss: d(dis_loss)/d(real_i) summed over i = −1.
        let m = 8;
        let total: f32 = (0..m).map(|_| dis_output_error_real(m)).sum();
        assert!((total + 1.0).abs() < 1e-6);
    }

    #[test]
    fn scalar_error_round_trip() {
        let e = scalar_error(-0.125);
        assert_eq!(score(&e), -0.125);
    }

    #[test]
    #[should_panic(expected = "1×1×1")]
    fn score_rejects_non_scalar() {
        let m = Fmaps::<f32>::zeros(1, 2, 2);
        let _ = score(&m);
    }

    #[test]
    #[should_panic(expected = "batch sizes")]
    fn dis_loss_rejects_mismatch() {
        let _ = dis_loss(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn lse_errors_are_a_softmax() {
        let e = lse_output_errors(&[0.0, 0.0, 0.0]);
        for v in &e {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
        assert!((e.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Numerically stable for large scores.
        let e = lse_output_errors(&[1000.0, 999.0]);
        assert!(e[0] > e[1] && e.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sigmoid_is_stable_and_correct() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0 && sigmoid(1000.0) > 0.999);
        assert!(sigmoid(-1000.0) >= 0.0 && sigmoid(-1000.0) < 1e-3);
        // Derivative check for the vanilla errors: d(−log σ)/dz = σ − 1.
        let eps = 1e-6;
        for z in [-2.0f64, 0.3, 1.7] {
            let fd = (-(sigmoid(z + eps)).ln() + (sigmoid(z)).ln()) / eps;
            let an = f64::from(vanilla_output_error_real(z, 1));
            assert!((fd - an).abs() < 1e-4, "z={z}: fd={fd} an={an}");
        }
    }

    #[test]
    fn vanilla_errors_are_per_sample_separable() {
        // The original GAN loss is non-linear in the score but still a sum
        // of per-sample terms: each sample's error depends only on its own
        // logit — deferral-safe.
        let probe = [0.5, -1.0, 2.0];
        let errors = |scores: &[f64]| -> Vec<f64> {
            scores
                .iter()
                .map(|&z| f64::from(vanilla_output_error_fake(z, scores.len())))
                .collect()
        };
        assert!(is_deferral_safe(errors, &probe));
    }

    /// The heart of paper Section IV-A, stated as a decidable property:
    /// the WGAN losses are deferral-safe, a batch-coupled loss is not.
    #[test]
    fn wgan_is_deferral_safe_lse_is_not() {
        let probe = [0.3, -1.2, 2.5, 0.0];
        // WGAN generator loss: constant −1/m per sample.
        let wgan_errors = |scores: &[f64]| vec![-1.0 / scores.len() as f64; scores.len()];
        assert!(is_deferral_safe(wgan_errors, &probe));
        // Log-sum-exp: softmax couples every sample.
        assert!(!is_deferral_safe(lse_output_errors, &probe));
    }
}
