//! One convolutional GAN layer — strided (`Down`) or transposed (`Up`) —
//! with forward and backward passes.

use rand::Rng;
use serde::{Deserialize, Serialize};
use zfgan_tensor::{
    ConvBackend, ConvGeom, ConvWorkspace, Fmaps, Kernels, ShapeError, TensorResult,
};

use crate::activation::Activation;

/// Which direction of the shared geometry this layer computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// `S-CONV`: strided down-sampling (Discriminator layers).
    Down,
    /// `T-CONV`: zero-inserting up-sampling (Generator layers).
    Up,
}

/// Gradients produced by one layer's backward pass.
#[derive(Debug, Clone)]
pub struct LayerGrads {
    /// Loss gradient w.r.t. the layer's weights (the `W-CONV` output).
    pub weights: Kernels<f32>,
    /// Loss gradient w.r.t. the per-output-channel bias.
    pub bias: Vec<f32>,
}

impl LayerGrads {
    /// Accumulates another sample's gradients into this one — the deferred
    /// trainer's `∇W += ∇wᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, rhs: &LayerGrads) {
        self.weights.add_assign(&rhs.weights);
        assert_eq!(self.bias.len(), rhs.bias.len(), "bias length mismatch");
        for (a, b) in self.bias.iter_mut().zip(&rhs.bias) {
            *a += b;
        }
    }

    /// Scales all gradients by `factor` (batch averaging).
    pub fn scale(&mut self, factor: f32) {
        self.weights.scale(factor);
        for b in &mut self.bias {
            *b *= factor;
        }
    }

    /// Returns this gradient's buffers to a workspace so the next backward
    /// pass reuses them instead of allocating.
    pub fn recycle(self, ws: &mut ConvWorkspace<f32>) {
        ws.give_kernels(self.weights);
        ws.give(self.bias);
    }

    /// Largest absolute difference to `rhs` across weights and bias.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, rhs: &LayerGrads) -> f64 {
        let w = self.weights.max_abs_diff(&rhs.weights);
        let b = self
            .bias
            .iter()
            .zip(&rhs.bias)
            .map(|(a, b)| f64::from((a - b).abs()))
            .fold(0.0, f64::max);
        w.max(b)
    }
}

/// A convolutional layer: shared geometry + weights, applied in the `Down`
/// (`S-CONV`) or `Up` (`T-CONV`) direction, followed by a bias add and an
/// element-wise activation.
///
/// Weights always use the *down-direction* layout (`n_of` = small side), so
/// mirrored Generator/Discriminator layers are literally the same tensor
/// shape — the paper's "inverse architecture" made concrete.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvLayer {
    direction: Direction,
    geom: ConvGeom,
    weights: Kernels<f32>,
    bias: Vec<f32>,
    activation: Activation,
    in_shape: (usize, usize, usize),
    backend: ConvBackend,
}

impl ConvLayer {
    /// Creates a layer with the given weights.
    ///
    /// `in_shape` is `(channels, height, width)` of the layer's input.
    ///
    /// # Errors
    ///
    /// Returns an error if the weight tensor's channel layout does not match
    /// the direction and input shape.
    pub fn new(
        direction: Direction,
        geom: ConvGeom,
        weights: Kernels<f32>,
        activation: Activation,
        in_shape: (usize, usize, usize),
    ) -> TensorResult<Self> {
        let in_c = in_shape.0;
        let (expected_in, out_c) = match direction {
            Direction::Down => (weights.n_if(), weights.n_of()),
            Direction::Up => (weights.n_of(), weights.n_if()),
        };
        if expected_in != in_c {
            return Err(ShapeError::new(format!(
                "weights expect {expected_in} input maps, layer input has {in_c}"
            )));
        }
        let bias = vec![0.0; out_c];
        Ok(Self {
            direction,
            geom,
            weights,
            bias,
            activation,
            in_shape,
            backend: ConvBackend::default(),
        })
    }

    /// Creates a layer with uniformly random weights in `[-scale, scale]`.
    ///
    /// `small_c`/`large_c` are the channel counts on the down-sampled and
    /// up-sampled sides of the geometry respectively.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConvLayer::new`].
    #[allow(clippy::too_many_arguments)]
    pub fn random<R: Rng>(
        direction: Direction,
        geom: ConvGeom,
        small_c: usize,
        large_c: usize,
        activation: Activation,
        in_shape: (usize, usize, usize),
        scale: f32,
        rng: &mut R,
    ) -> TensorResult<Self> {
        let weights = Kernels::random(small_c, large_c, geom.kh(), geom.kw(), scale, rng);
        Self::new(direction, geom, weights, activation, in_shape)
    }

    /// The layer's direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The layer's convolution geometry.
    pub fn geom(&self) -> &ConvGeom {
        &self.geom
    }

    /// The layer's weights (down-direction layout).
    pub fn weights(&self) -> &Kernels<f32> {
        &self.weights
    }

    /// Mutable access to the weights — used by fault-injection campaigns
    /// to corrupt parameters in place. Shape invariants must be preserved
    /// (the slice length is fixed); values are unconstrained.
    pub fn weights_mut(&mut self) -> &mut Kernels<f32> {
        &mut self.weights
    }

    /// The layer's per-output-channel bias.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// How this layer computes its convolutions. Every backend is
    /// bit-identical (see [`ConvBackend`]); the default is the zero-free
    /// lowered fast path.
    pub fn backend(&self) -> ConvBackend {
        self.backend
    }

    /// Selects the convolution backend for this layer.
    pub fn set_backend(&mut self, backend: ConvBackend) {
        self.backend = backend;
    }

    /// `(channels, height, width)` of the layer input.
    pub fn in_shape(&self) -> (usize, usize, usize) {
        self.in_shape
    }

    /// `(channels, height, width)` of the layer output.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        let (_, h, w) = self.in_shape;
        match self.direction {
            Direction::Down => {
                let (oh, ow) = self.geom.down_out(h, w);
                (self.weights.n_of(), oh, ow)
            }
            Direction::Up => {
                let (oh, ow) = self.geom.up_out(h, w);
                (self.weights.n_if(), oh, ow)
            }
        }
    }

    /// Forward pass: returns `(pre_activation, post_activation)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `input` does not match the layer's input shape.
    pub fn forward(&self, input: &Fmaps<f32>) -> TensorResult<(Fmaps<f32>, Fmaps<f32>)> {
        if input.shape() != self.in_shape {
            return Err(ShapeError::new(format!(
                "layer expects input {:?}, got {:?}",
                self.in_shape,
                input.shape()
            )));
        }
        let mut pre = match self.direction {
            Direction::Down => self.backend.s_conv(input, &self.weights, &self.geom)?,
            Direction::Up => self.backend.t_conv(input, &self.weights, &self.geom)?,
        };
        let (c, h, w) = pre.shape();
        for ch in 0..c {
            let b = self.bias[ch];
            if b != 0.0 {
                for y in 0..h {
                    for x in 0..w {
                        *pre.at_mut(ch, y, x) += b;
                    }
                }
            }
        }
        let post = self.activation.apply(&pre);
        Ok((pre, post))
    }

    /// Backward pass (paper Eqs. 3–4): given the error on the layer output
    /// (post-activation) plus the cached forward tensors, returns the error
    /// on the layer input and this layer's gradients.
    ///
    /// # Errors
    ///
    /// Returns an error if the cached tensors are inconsistent with the
    /// layer shapes.
    pub fn backward(
        &self,
        delta_post: &Fmaps<f32>,
        pre: &Fmaps<f32>,
        input: &Fmaps<f32>,
    ) -> TensorResult<(Fmaps<f32>, LayerGrads)> {
        let delta_pre = self.activation.backprop(delta_post, pre);
        let (c, h, w) = delta_pre.shape();
        let mut bias_grad = vec![0.0f32; c];
        for (ch, bg) in bias_grad.iter_mut().enumerate() {
            let mut acc = 0.0;
            for y in 0..h {
                for x in 0..w {
                    acc += *delta_pre.at(ch, y, x);
                }
            }
            *bg = acc;
        }
        let (delta_in, weight_grad) = match self.direction {
            Direction::Down => {
                let (_, ih, iw) = self.in_shape;
                let dx = self.backend.s_conv_input_grad(
                    &delta_pre,
                    &self.weights,
                    &self.geom,
                    ih,
                    iw,
                )?;
                let dw = self
                    .backend
                    .w_conv_for_s_layer(input, &delta_pre, &self.geom)?;
                (dx, dw)
            }
            Direction::Up => {
                let dx = self
                    .backend
                    .t_conv_input_grad(&delta_pre, &self.weights, &self.geom)?;
                let dw = self
                    .backend
                    .w_conv_for_t_layer(input, &delta_pre, &self.geom)?;
                (dx, dw)
            }
        };
        Ok((
            delta_in,
            LayerGrads {
                weights: weight_grad,
                bias: bias_grad,
            },
        ))
    }

    /// [`ConvLayer::forward`] with all transients (conv scratch, the
    /// pre/post tensors themselves) drawn from the workspace. Bit-identical;
    /// the returned tensors belong to the caller (recycle them via
    /// [`ConvWorkspace::give_fmaps`] / [`crate::Trace::recycle`]).
    ///
    /// # Errors
    ///
    /// Returns an error if `input` does not match the layer's input shape.
    pub fn forward_ws(
        &self,
        input: &Fmaps<f32>,
        ws: &mut ConvWorkspace<f32>,
    ) -> TensorResult<(Fmaps<f32>, Fmaps<f32>)> {
        if input.shape() != self.in_shape {
            return Err(ShapeError::new(format!(
                "layer expects input {:?}, got {:?}",
                self.in_shape,
                input.shape()
            )));
        }
        let mut pre = match self.direction {
            Direction::Down => self
                .backend
                .s_conv_ws(input, &self.weights, &self.geom, ws)?,
            Direction::Up => self
                .backend
                .t_conv_ws(input, &self.weights, &self.geom, ws)?,
        };
        let (c, h, w) = pre.shape();
        for ch in 0..c {
            let b = self.bias[ch];
            if b != 0.0 {
                for y in 0..h {
                    for x in 0..w {
                        *pre.at_mut(ch, y, x) += b;
                    }
                }
            }
        }
        let mut post = ws.take_fmaps(c, h, w);
        self.activation.apply_into(&pre, &mut post);
        Ok((pre, post))
    }

    /// [`ConvLayer::backward`] with all transients drawn from the
    /// workspace. Bit-identical; the returned error and gradients belong to
    /// the caller (recycle via [`ConvWorkspace::give_fmaps`] /
    /// [`LayerGrads::recycle`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the cached tensors are inconsistent with the
    /// layer shapes.
    pub fn backward_ws(
        &self,
        delta_post: &Fmaps<f32>,
        pre: &Fmaps<f32>,
        input: &Fmaps<f32>,
        ws: &mut ConvWorkspace<f32>,
    ) -> TensorResult<(Fmaps<f32>, LayerGrads)> {
        let (c, h, w) = pre.shape();
        let mut delta_pre = ws.take_fmaps(c, h, w);
        self.activation
            .backprop_into(delta_post, pre, &mut delta_pre);
        let mut bias_grad = ws.take(c);
        for (ch, bg) in bias_grad.iter_mut().enumerate() {
            let mut acc = 0.0;
            for y in 0..h {
                for x in 0..w {
                    acc += *delta_pre.at(ch, y, x);
                }
            }
            *bg = acc;
        }
        let (delta_in, weight_grad) = match self.direction {
            Direction::Down => {
                let (_, ih, iw) = self.in_shape;
                let dx = self.backend.s_conv_input_grad_ws(
                    &delta_pre,
                    &self.weights,
                    &self.geom,
                    ih,
                    iw,
                    ws,
                )?;
                let dw = self
                    .backend
                    .w_conv_for_s_layer_ws(input, &delta_pre, &self.geom, ws)?;
                (dx, dw)
            }
            Direction::Up => {
                let dx =
                    self.backend
                        .t_conv_input_grad_ws(&delta_pre, &self.weights, &self.geom, ws)?;
                let dw = self
                    .backend
                    .w_conv_for_t_layer_ws(input, &delta_pre, &self.geom, ws)?;
                (dx, dw)
            }
        };
        ws.give_fmaps(delta_pre);
        Ok((
            delta_in,
            LayerGrads {
                weights: weight_grad,
                bias: bias_grad,
            },
        ))
    }

    /// Applies a parameter update `θ ← θ − delta` produced by an optimizer.
    ///
    /// # Panics
    ///
    /// Panics if the update's shapes do not match the layer.
    pub fn apply_update(&mut self, weight_delta: &Kernels<f32>, bias_delta: &[f32]) {
        assert_eq!(
            weight_delta.shape(),
            self.weights.shape(),
            "weight update shape mismatch"
        );
        assert_eq!(
            bias_delta.len(),
            self.bias.len(),
            "bias update length mismatch"
        );
        for (w, d) in self
            .weights
            .as_mut_slice()
            .iter_mut()
            .zip(weight_delta.as_slice())
        {
            *w -= d;
        }
        for (b, d) in self.bias.iter_mut().zip(bias_delta) {
            *b -= d;
        }
    }

    /// Clamps every weight into `[-c, c]` in place (WGAN weight clipping).
    ///
    /// # Panics
    ///
    /// Panics if `c` is not positive.
    pub fn clamp_weights(&mut self, c: f32) {
        assert!(c > 0.0, "clip bound must be positive");
        for v in self.weights.as_mut_slice() {
            *v = v.clamp(-c, c);
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Checks every invariant a freshly **deserialized** layer must satisfy.
    ///
    /// The constructors enforce these, but serde's derived `Deserialize`
    /// fills fields directly, so a truncated or edited checkpoint can
    /// produce a layer whose buffers disagree with its declared shapes, a
    /// zero-stride geometry, or non-finite parameters — all of which would
    /// otherwise only surface as a panic (or silent corruption) mid-run.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error for any violated invariant.
    pub fn validate(&self) -> TensorResult<()> {
        self.geom.validate()?;
        let (n_of, n_if, kh, kw) = self.weights.shape();
        if n_of == 0 || n_if == 0 || kh == 0 || kw == 0 {
            return Err(ShapeError::new(format!(
                "weight tensor has a zero dimension: {n_of}×{n_if}×{kh}×{kw}"
            )));
        }
        if self.weights.len() != n_of * n_if * kh * kw {
            return Err(ShapeError::new(format!(
                "weight buffer holds {} values, shape {n_of}×{n_if}×{kh}×{kw} needs {}",
                self.weights.len(),
                n_of * n_if * kh * kw
            )));
        }
        if (kh, kw) != (self.geom.kh(), self.geom.kw()) {
            return Err(ShapeError::new(format!(
                "weight kernel is {kh}×{kw} but the geometry declares {}×{}",
                self.geom.kh(),
                self.geom.kw()
            )));
        }
        let (in_c, in_h, in_w) = self.in_shape;
        if in_c == 0 || in_h == 0 || in_w == 0 {
            return Err(ShapeError::new(format!(
                "input shape has a zero dimension: {in_c}×{in_h}×{in_w}"
            )));
        }
        let (expected_in, out_c) = match self.direction {
            Direction::Down => (n_if, n_of),
            Direction::Up => (n_of, n_if),
        };
        if expected_in != in_c {
            return Err(ShapeError::new(format!(
                "weights expect {expected_in} input maps, layer input has {in_c}"
            )));
        }
        if self.bias.len() != out_c {
            return Err(ShapeError::new(format!(
                "bias holds {} values for {out_c} output channels",
                self.bias.len()
            )));
        }
        match self.direction {
            Direction::Down => {
                // The padded input must cover at least one kernel window.
                if in_h + self.geom.pad_top() + self.geom.pad_bottom() < kh
                    || in_w + self.geom.pad_left() + self.geom.pad_right() < kw
                {
                    return Err(ShapeError::new(format!(
                        "padded input {in_h}×{in_w} is smaller than the kernel {kh}×{kw}"
                    )));
                }
            }
            Direction::Up => {
                // up_out computes stride·(in−1) + k − pads; it must not
                // underflow (the transposed pads can exceed k on tiny maps).
                let (pt, pb, pl, pr) = (
                    self.geom.pad_top(),
                    self.geom.pad_bottom(),
                    self.geom.pad_left(),
                    self.geom.pad_right(),
                );
                if self.geom.stride() * (in_h - 1) + kh < pt + pb + 1
                    || self.geom.stride() * (in_w - 1) + kw < pl + pr + 1
                {
                    return Err(ShapeError::new(format!(
                        "up-sampled output of {in_h}×{in_w} would be empty under this geometry"
                    )));
                }
            }
        }
        if let Some(i) = self
            .weights
            .as_slice()
            .iter()
            .chain(&self.bias)
            .position(|v| !v.is_finite())
        {
            return Err(ShapeError::new(format!(
                "parameter {i} is not finite (corrupted payload?)"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_geom() -> ConvGeom {
        ConvGeom::down(8, 8, 4, 4, 2, 4, 4).unwrap()
    }

    #[test]
    fn down_layer_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let layer = ConvLayer::random(
            Direction::Down,
            small_geom(),
            6,
            3,
            Activation::LeakyRelu { alpha: 0.2 },
            (3, 8, 8),
            0.1,
            &mut rng,
        )
        .unwrap();
        assert_eq!(layer.out_shape(), (6, 4, 4));
        let x = Fmaps::random(3, 8, 8, 1.0, &mut rng);
        let (pre, post) = layer.forward(&x).unwrap();
        assert_eq!(pre.shape(), (6, 4, 4));
        assert_eq!(post.shape(), (6, 4, 4));
    }

    #[test]
    fn up_layer_shapes() {
        let mut rng = SmallRng::seed_from_u64(2);
        let layer = ConvLayer::random(
            Direction::Up,
            small_geom(),
            6,
            3,
            Activation::Relu,
            (6, 4, 4),
            0.1,
            &mut rng,
        )
        .unwrap();
        assert_eq!(layer.out_shape(), (3, 8, 8));
        let z = Fmaps::random(6, 4, 4, 1.0, &mut rng);
        let (_, post) = layer.forward(&z).unwrap();
        assert_eq!(post.shape(), (3, 8, 8));
    }

    #[test]
    fn rejects_wrong_input_shape() {
        let mut rng = SmallRng::seed_from_u64(3);
        let layer = ConvLayer::random(
            Direction::Down,
            small_geom(),
            2,
            1,
            Activation::Identity,
            (1, 8, 8),
            0.1,
            &mut rng,
        )
        .unwrap();
        let wrong = Fmaps::zeros(1, 4, 4);
        assert!(layer.forward(&wrong).is_err());
    }

    #[test]
    fn rejects_channel_mismatch_at_construction() {
        let w: Kernels<f32> = Kernels::zeros(4, 2, 4, 4);
        assert!(ConvLayer::new(
            Direction::Down,
            small_geom(),
            w.clone(),
            Activation::Identity,
            (3, 8, 8)
        )
        .is_err());
        assert!(ConvLayer::new(
            Direction::Up,
            small_geom(),
            w,
            Activation::Identity,
            (3, 4, 4)
        )
        .is_err());
    }

    /// End-to-end finite-difference check through bias + activation.
    #[test]
    fn layer_gradients_match_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut layer = ConvLayer::random(
            Direction::Down,
            small_geom(),
            2,
            1,
            Activation::LeakyRelu { alpha: 0.3 },
            (1, 8, 8),
            0.5,
            &mut rng,
        )
        .unwrap();
        layer.bias = vec![0.1, -0.2];
        let x = Fmaps::random(1, 8, 8, 1.0, &mut rng);
        let (pre, post) = layer.forward(&x).unwrap();
        // Loss = Σ post ⇒ delta_post = ones.
        let ones = Fmaps::from_vec(2, 4, 4, vec![1.0; 32]);
        let (dx, grads) = layer.backward(&ones, &pre, &x).unwrap();
        let loss = |l: &ConvLayer, x: &Fmaps<f32>| l.forward(x).unwrap().1.sum_f64();
        let base = post.sum_f64();
        let eps = 1e-3f32;
        // Input gradient.
        for (y, xx) in [(0usize, 0usize), (3, 5), (7, 7)] {
            let mut xp = x.clone();
            *xp.at_mut(0, y, xx) += eps;
            let fd = (loss(&layer, &xp) - base) / f64::from(eps);
            assert!(
                (fd - f64::from(*dx.at(0, y, xx))).abs() < 1e-2,
                "dx[{y}][{xx}] fd={fd} an={}",
                dx.at(0, y, xx)
            );
        }
        // Weight gradient.
        let mut lp = layer.clone();
        *lp.weights.at_mut(1, 0, 2, 2) += eps;
        let fd = (loss(&lp, &x) - base) / f64::from(eps);
        assert!((fd - f64::from(*grads.weights.at(1, 0, 2, 2))).abs() < 1e-2);
        // Bias gradient.
        let mut lb = layer.clone();
        lb.bias[0] += eps;
        let fd = (loss(&lb, &x) - base) / f64::from(eps);
        assert!((fd - f64::from(grads.bias[0])).abs() < 1e-2);
    }

    #[test]
    fn validate_accepts_constructed_layers_and_rejects_tampering() {
        let mut rng = SmallRng::seed_from_u64(17);
        let layer = ConvLayer::random(
            Direction::Down,
            small_geom(),
            4,
            2,
            Activation::Relu,
            (2, 8, 8),
            0.1,
            &mut rng,
        )
        .unwrap();
        assert!(layer.validate().is_ok());
        // Tamper as a corrupted deserialization would: fields directly.
        let mut bad_bias = layer.clone();
        bad_bias.bias = vec![0.0; 3];
        assert!(bad_bias
            .validate()
            .unwrap_err()
            .to_string()
            .contains("bias"));
        let mut bad_weight = layer.clone();
        *bad_weight.weights.at_mut(0, 0, 0, 0) = f32::NAN;
        assert!(bad_weight
            .validate()
            .unwrap_err()
            .to_string()
            .contains("finite"));
        let mut bad_shape = layer.clone();
        bad_shape.in_shape = (3, 8, 8);
        assert!(bad_shape.validate().is_err());
        let mut zero_dim = layer;
        zero_dim.in_shape = (2, 0, 8);
        assert!(zero_dim.validate().is_err());
    }

    #[test]
    fn grads_accumulate_and_scale() {
        let mut a = LayerGrads {
            weights: Kernels::from_vec(1, 1, 1, 2, vec![1.0, 2.0]),
            bias: vec![4.0],
        };
        let b = LayerGrads {
            weights: Kernels::from_vec(1, 1, 1, 2, vec![1.0, -2.0]),
            bias: vec![-2.0],
        };
        a.add_assign(&b);
        a.scale(0.5);
        assert_eq!(a.weights.as_slice(), &[1.0, 0.0]);
        assert_eq!(a.bias, vec![1.0]);
        assert!(a.max_abs_diff(&b) > 0.0);
    }

    #[test]
    fn apply_update_subtracts() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut layer = ConvLayer::random(
            Direction::Down,
            small_geom(),
            1,
            1,
            Activation::Identity,
            (1, 8, 8),
            0.0,
            &mut rng,
        )
        .unwrap();
        let delta = Kernels::from_vec(1, 1, 4, 4, vec![1.0; 16]);
        layer.apply_update(&delta, &[2.0]);
        assert!(layer.weights().as_slice().iter().all(|&w| w == -1.0));
        assert_eq!(layer.bias[0], -2.0);
        assert_eq!(layer.param_count(), 17);
    }
}
