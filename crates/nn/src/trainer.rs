//! GAN training loops: the original batch-synchronized algorithm and the
//! paper's deferred-synchronization transformation (Section IV-A).
//!
//! Both trainers compute mathematically identical weight updates — the WGAN
//! loss is a linear average, so each sample's output-layer error is the
//! constant `∓1/m` of Eq. 6 — but they differ in *when* backward passes run:
//!
//! * [`SyncMode::Synchronized`] finishes **all** `2·m` forward passes first
//!   (the loss-synchronization barrier of paper Fig. 2 steps ③/⑦), holding
//!   every sample's intermediate trace alive until the barrier clears.
//! * [`SyncMode::Deferred`] backpropagates each sample immediately after its
//!   own forward pass and accumulates `∇wᵢ` into `∇W`, so at most one trace
//!   is ever alive.
//!
//! The [`DisStepReport::peak_buffered_elems`] /
//! [`GenStepReport::peak_buffered_elems`] fields measure the resulting
//! memory high-water marks, reproducing the paper's `2 × batch → 1`
//! reduction.

use std::error::Error;
use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};
use zfgan_tensor::{ConvBackend, ConvWorkspace, Fmaps, ShapeError, TensorResult};

use crate::layer::LayerGrads;
use crate::network::{ConvNet, Trace};
use crate::optimizer::{Optimizer, OptimizerKind};
use crate::wgan;

/// When backward passes are allowed to start relative to the loss
/// synchronization point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncMode {
    /// Original algorithm: all forward passes complete (and stay buffered)
    /// before any backward pass.
    Synchronized,
    /// Paper Section IV-A: per-sample backward immediately after the
    /// sample's forward; gradients accumulate across the batch.
    Deferred,
}

/// Which adversarial objective the trainer optimises.
///
/// Both are sums of per-sample terms, so both admit the paper's deferred
/// synchronization exactly; the Wasserstein form is what the paper (and
/// its Eq. 1–2) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LossKind {
    /// WGAN critic loss (paper Eqs. 1–2): linear in the scores, constant
    /// per-sample errors (Eq. 6).
    Wasserstein,
    /// The original minimax GAN with the non-saturating generator
    /// objective: per-sample errors depend on the sample's own logit only.
    MinimaxNonSaturating,
}

/// Configuration of a [`GanTrainer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Synchronization strategy (the paper's co-design lever).
    pub mode: SyncMode,
    /// The adversarial objective.
    pub loss: LossKind,
    /// Update rule for both networks.
    pub optimizer: OptimizerKind,
    /// Learning rate for both networks.
    pub learning_rate: f32,
    /// WGAN weight-clipping bound for the critic (`None` disables).
    pub weight_clip: Option<f32>,
    /// Critic updates per Generator update (WGAN's `n_critic`).
    pub n_critic: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            mode: SyncMode::Deferred,
            loss: LossKind::Wasserstein,
            optimizer: OptimizerKind::wgan_default(),
            learning_rate: 5e-5,
            weight_clip: Some(0.01),
            n_critic: 5,
        }
    }
}

/// An invalid [`TrainerConfig`], with a field-specific explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trainer config: {}", self.message)
    }
}

impl Error for ConfigError {}

impl TrainerConfig {
    /// Checks every field for validity, so bad configuration surfaces as a
    /// descriptive error at construction instead of a panic deep inside
    /// training (`clamp_weights` asserts a positive clip bound, optimizer
    /// updates assume a positive finite learning rate).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return Err(ConfigError::new(format!(
                "learning_rate must be positive and finite, got {}",
                self.learning_rate
            )));
        }
        if let Some(c) = self.weight_clip {
            if !c.is_finite() || c <= 0.0 {
                return Err(ConfigError::new(format!(
                    "weight_clip must be positive and finite, got {c}"
                )));
            }
        }
        if self.n_critic == 0 {
            return Err(ConfigError::new("n_critic must be at least 1"));
        }
        Ok(())
    }
}

/// A Generator/Discriminator pair with compatible shapes.
#[derive(Debug, Clone)]
pub struct GanPair {
    generator: ConvNet,
    discriminator: ConvNet,
}

impl GanPair {
    /// Pairs a Generator and a Discriminator (critic).
    ///
    /// # Errors
    ///
    /// Returns an error if the Generator's output shape is not the
    /// Discriminator's input shape, or the Discriminator does not end in a
    /// `1×1×1` scalar critic output.
    pub fn new(generator: ConvNet, discriminator: ConvNet) -> TensorResult<Self> {
        if generator.out_shape() != discriminator.in_shape() {
            return Err(ShapeError::new(format!(
                "generator produces {:?}, discriminator expects {:?}",
                generator.out_shape(),
                discriminator.in_shape()
            )));
        }
        if discriminator.out_shape() != (1, 1, 1) {
            return Err(ShapeError::new(format!(
                "critic must output a 1×1×1 scalar, got {:?}",
                discriminator.out_shape()
            )));
        }
        Ok(Self {
            generator,
            discriminator,
        })
    }

    /// A tiny 8×8 single-channel GAN for tests and the quickstart example:
    /// a two-layer Generator mirrored by a two-layer critic.
    pub fn tiny<R: Rng>(rng: &mut R) -> Self {
        use crate::activation::Activation;
        use crate::layer::{ConvLayer, Direction};
        use zfgan_tensor::ConvGeom;

        let head = ConvGeom::down(4, 4, 4, 4, 1, 1, 1).expect("static geometry");
        let body = ConvGeom::down(8, 8, 4, 4, 2, 4, 4).expect("static geometry");
        let scale = 0.25;
        let g = ConvNet::new(vec![
            ConvLayer::random(
                Direction::Up,
                head,
                8,
                4,
                Activation::Relu,
                (8, 1, 1),
                scale,
                rng,
            )
            .expect("static shapes"),
            ConvLayer::random(
                Direction::Up,
                body,
                4,
                1,
                Activation::Tanh,
                (4, 4, 4),
                scale,
                rng,
            )
            .expect("static shapes"),
        ])
        .expect("static stack");
        let d = ConvNet::new(vec![
            ConvLayer::random(
                Direction::Down,
                body,
                4,
                1,
                Activation::LeakyRelu { alpha: 0.2 },
                (1, 8, 8),
                scale,
                rng,
            )
            .expect("static shapes"),
            ConvLayer::random(
                Direction::Down,
                head,
                1,
                4,
                Activation::Identity,
                (4, 4, 4),
                scale,
                rng,
            )
            .expect("static shapes"),
        ])
        .expect("static stack");
        Self::new(g, d).expect("tiny pair is consistent")
    }

    /// The Generator network.
    pub fn generator(&self) -> &ConvNet {
        &self.generator
    }

    /// The Discriminator (critic) network.
    pub fn discriminator(&self) -> &ConvNet {
        &self.discriminator
    }

    /// Mutable access to the Generator (fault injection, custom updates).
    pub fn generator_mut(&mut self) -> &mut ConvNet {
        &mut self.generator
    }

    /// Mutable access to the Discriminator.
    pub fn discriminator_mut(&mut self) -> &mut ConvNet {
        &mut self.discriminator
    }

    /// Selects the convolution backend for both networks. All backends
    /// are bit-identical, so the training trajectory does not change.
    pub fn set_backend(&mut self, backend: ConvBackend) {
        self.generator.set_backend(backend);
        self.discriminator.set_backend(backend);
    }

    /// `(channels, height, width)` of the latent input `z`.
    pub fn z_shape(&self) -> (usize, usize, usize) {
        self.generator.in_shape()
    }

    /// `(channels, height, width)` of generated / real images.
    pub fn image_shape(&self) -> (usize, usize, usize) {
        self.generator.out_shape()
    }

    /// Generates one image from a latent vector (a plain Generator forward
    /// pass, trace discarded).
    ///
    /// # Panics
    ///
    /// Panics if `z` does not match the Generator's input shape.
    pub fn generate(&self, z: &Fmaps<f32>) -> Fmaps<f32> {
        self.generator
            .forward(z)
            .expect("z shape matches generator")
            .output()
            .clone()
    }

    /// Generates a batch of images from fresh latent vectors.
    pub fn generate_batch<R: Rng>(&self, batch: usize, rng: &mut R) -> Vec<Fmaps<f32>> {
        self.sample_z_batch(batch, rng)
            .iter()
            .map(|z| self.generate(z))
            .collect()
    }

    /// Draws a batch of latent vectors `z ~ U[-1, 1]`.
    pub fn sample_z_batch<R: Rng>(&self, batch: usize, rng: &mut R) -> Vec<Fmaps<f32>> {
        let (c, h, w) = self.z_shape();
        (0..batch)
            .map(|_| Fmaps::random(c, h, w, 1.0, rng))
            .collect()
    }

    /// Draws a batch from a synthetic "real" distribution: smooth Gaussian
    /// bumps with random centres, mapped into `[-1, 1]` — structured enough
    /// for the critic to separate from noise, cheap enough for tests.
    pub fn sample_real_batch<R: Rng>(&self, batch: usize, rng: &mut R) -> Vec<Fmaps<f32>> {
        let (c, h, w) = self.image_shape();
        (0..batch)
            .map(|_| {
                let cy = rng.gen_range(0.25..0.75) * h as f32;
                let cx = rng.gen_range(0.25..0.75) * w as f32;
                let sigma = 0.35 * h.min(w) as f32;
                let mut img = Fmaps::zeros(c, h, w);
                for ch in 0..c {
                    for y in 0..h {
                        for x in 0..w {
                            let d2 = (y as f32 - cy).powi(2) + (x as f32 - cx).powi(2);
                            *img.at_mut(ch, y, x) = 2.0 * (-d2 / (2.0 * sigma * sigma)).exp() - 1.0;
                        }
                    }
                }
                img
            })
            .collect()
    }
}

/// Result of one Discriminator update.
#[derive(Debug, Clone, PartialEq)]
pub struct DisStepReport {
    /// Critic loss (paper Eq. 1).
    pub dis_loss: f64,
    /// The Wasserstein estimate `(1/m)Σ[D(x) − D(x̃)]`.
    pub wasserstein_estimate: f64,
    /// High-water mark of simultaneously buffered intermediate elements.
    pub peak_buffered_elems: usize,
    /// Number of traces alive at the memory peak (`2·m` synchronized, `1`
    /// deferred).
    pub peak_live_traces: usize,
}

/// Result of one Generator update.
#[derive(Debug, Clone, PartialEq)]
pub struct GenStepReport {
    /// Generator loss (paper Eq. 2).
    pub gen_loss: f64,
    /// High-water mark of simultaneously buffered intermediate elements.
    pub peak_buffered_elems: usize,
    /// Number of traces alive at the memory peak.
    pub peak_live_traces: usize,
}

/// A complete snapshot of a [`GanTrainer`]'s mutable state — both networks
/// **and** both optimizers' moment estimates. Restoring it resumes
/// training bit-identically, which is what the supervisor's rollback
/// relies on ([`GanTrainer::snapshot`] / [`GanTrainer::restore`]).
#[derive(Debug, Clone)]
pub struct TrainerState {
    gan: GanPair,
    opt_g: Optimizer,
    opt_d: Optimizer,
}

impl TrainerState {
    /// The snapshotted GAN pair.
    pub fn gan(&self) -> &GanPair {
        &self.gan
    }

    /// The snapshotted `(generator, discriminator)` optimizers.
    pub fn optimizers(&self) -> (&Optimizer, &Optimizer) {
        (&self.opt_g, &self.opt_d)
    }
}

/// Drives WGAN training of a [`GanPair`] under a chosen [`SyncMode`].
///
/// The trainer owns a [`ConvWorkspace`] through which every step's conv
/// transients are drawn, so a steady-state step performs no heap
/// allocation in the conv hot path (see `tests/zero_alloc.rs`). The
/// workspace is scratch, not state: it is deliberately **not** part of
/// [`TrainerState`], and its contents never affect results (all workspace
/// paths are bit-identical to the allocating ones).
#[derive(Debug)]
pub struct GanTrainer {
    gan: GanPair,
    config: TrainerConfig,
    opt_g: Optimizer,
    opt_d: Optimizer,
    workspace: ConvWorkspace<f32>,
}

impl GanTrainer {
    /// Creates a trainer, allocating optimizer state for both networks.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid — use
    /// [`GanTrainer::try_new`] to handle that as an error.
    pub fn new(gan: GanPair, config: TrainerConfig) -> Self {
        match Self::try_new(gan, config) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a trainer after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field (bad learning
    /// rate, non-positive `weight_clip`, zero `n_critic`).
    pub fn try_new(gan: GanPair, config: TrainerConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let opt_g = Optimizer::new(config.optimizer, config.learning_rate, gan.generator());
        let opt_d = Optimizer::new(config.optimizer, config.learning_rate, gan.discriminator());
        Ok(Self {
            gan,
            config,
            opt_g,
            opt_d,
            workspace: ConvWorkspace::new(),
        })
    }

    /// Rebuilds a trainer from restored state — networks **and** optimizer
    /// moments — so training resumed from a durable snapshot continues the
    /// exact trajectory (same updates, bit for bit) the interrupted run
    /// would have taken.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is invalid or either
    /// optimizer's accumulators are not shaped for its network (a durable
    /// snapshot assembled from mismatched generations).
    pub fn from_parts(
        gan: GanPair,
        config: TrainerConfig,
        opt_g: Optimizer,
        opt_d: Optimizer,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        opt_g
            .validate_for(gan.generator())
            .map_err(|e| ConfigError::new(format!("generator optimizer: {e}")))?;
        opt_d
            .validate_for(gan.discriminator())
            .map_err(|e| ConfigError::new(format!("discriminator optimizer: {e}")))?;
        Ok(Self {
            gan,
            config,
            opt_g,
            opt_d,
            workspace: ConvWorkspace::new(),
        })
    }

    /// Toggles the training workspace's buffer reuse. `true` (the default)
    /// recycles conv scratch across steps; `false` allocates freshly per
    /// take — the honest allocating baseline the `trainstep` bench
    /// measures. Results are bit-identical either way.
    pub fn set_workspace_reuse(&mut self, reuse: bool) {
        self.workspace.set_reuse(reuse);
    }

    /// The trainer's conv scratch workspace.
    pub fn workspace(&self) -> &ConvWorkspace<f32> {
        &self.workspace
    }

    /// The GAN being trained.
    pub fn gan(&self) -> &GanPair {
        &self.gan
    }

    /// Mutable access to the GAN (fault injection, backend changes).
    pub fn gan_mut(&mut self) -> &mut GanPair {
        &mut self.gan
    }

    /// The trainer configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Snapshots networks and optimizer state for later [`restore`].
    ///
    /// [`restore`]: GanTrainer::restore
    pub fn snapshot(&self) -> TrainerState {
        zfgan_telemetry::count("trainer_snapshots_total", &[], 1);
        TrainerState {
            gan: self.gan.clone(),
            opt_g: self.opt_g.clone(),
            opt_d: self.opt_d.clone(),
        }
    }

    /// Rolls networks and optimizer state back to a snapshot. Training
    /// resumed from here (with the same RNG state and data) is
    /// bit-identical to training resumed from the moment the snapshot was
    /// taken.
    pub fn restore(&mut self, state: &TrainerState) {
        zfgan_telemetry::count("trainer_restores_total", &[], 1);
        self.gan = state.gan.clone();
        self.opt_g = state.opt_g.clone();
        self.opt_d = state.opt_d.clone();
    }

    /// One Discriminator (critic) update over `reals` plus an equal number
    /// of freshly generated fakes — paper Fig. 2 steps ①–④ (or the
    /// per-sample loops of Fig. 8a when deferred).
    ///
    /// # Panics
    ///
    /// Panics if `reals` is empty or contains a wrongly-shaped image.
    pub fn step_discriminator<R: Rng>(
        &mut self,
        reals: &[Fmaps<f32>],
        rng: &mut R,
    ) -> DisStepReport {
        assert!(!reals.is_empty(), "batch must be non-empty");
        let m = reals.len();
        let ws = &mut self.workspace;
        // Step ①: Generator produces the fake batch (forward only; its
        // trace is not needed for a Discriminator update). Same RNG
        // consumption and arithmetic as `GanPair::generate_batch`, with
        // the forward transients drawn from the workspace.
        let zs = self.gan.sample_z_batch(m, rng);
        let mut fakes = Vec::with_capacity(m);
        for z in &zs {
            let gt = self.gan.generator.forward_ws(z, ws).expect("z shape");
            fakes.push(gt.into_output(ws));
        }
        drop(zs);

        let mut grads = self.gan.discriminator.zero_grads_ws(ws);
        let mut real_scores = Vec::with_capacity(m);
        let mut fake_scores = Vec::with_capacity(m);
        let mut peak_elems = 0usize;
        let mut peak_traces = 0usize;

        match self.config.mode {
            SyncMode::Synchronized => {
                // All 2·m forward passes complete and stay buffered before
                // the loss synchronization point allows any backward pass.
                let real_traces: Vec<Trace> = reals
                    .iter()
                    .map(|x| {
                        self.gan
                            .discriminator
                            .forward_ws(x, ws)
                            .expect("image shape")
                    })
                    .collect();
                let fake_traces: Vec<Trace> = fakes
                    .iter()
                    .map(|x| {
                        self.gan
                            .discriminator
                            .forward_ws(x, ws)
                            .expect("image shape")
                    })
                    .collect();
                peak_elems = real_traces
                    .iter()
                    .chain(&fake_traces)
                    .map(Trace::buffered_elems)
                    .sum();
                peak_traces = 2 * m;
                for t in &real_traces {
                    real_scores.push(wgan::score(t.output()));
                }
                for t in &fake_traces {
                    fake_scores.push(wgan::score(t.output()));
                }
                // Synchronization cleared: backward passes may now run.
                for (t, score) in real_traces.iter().zip(&real_scores) {
                    let delta = wgan::scalar_error(real_delta(self.config.loss, *score, m));
                    accumulate_ws(&mut grads, &self.gan.discriminator, t, &delta, ws);
                }
                for (t, score) in fake_traces.iter().zip(&fake_scores) {
                    let delta = wgan::scalar_error(fake_delta(self.config.loss, *score, m));
                    accumulate_ws(&mut grads, &self.gan.discriminator, t, &delta, ws);
                }
                for t in real_traces.into_iter().chain(fake_traces) {
                    t.recycle(ws);
                }
            }
            SyncMode::Deferred => {
                // Eq. 6: each sample's output error is a constant ∓1/m, so
                // its backward pass runs as soon as its forward pass ends.
                for x in reals {
                    let t = self
                        .gan
                        .discriminator
                        .forward_ws(x, ws)
                        .expect("image shape");
                    peak_elems = peak_elems.max(t.buffered_elems());
                    peak_traces = peak_traces.max(1);
                    let score = wgan::score(t.output());
                    real_scores.push(score);
                    let delta = wgan::scalar_error(real_delta(self.config.loss, score, m));
                    accumulate_ws(&mut grads, &self.gan.discriminator, &t, &delta, ws);
                    t.recycle(ws);
                }
                for x in &fakes {
                    let t = self
                        .gan
                        .discriminator
                        .forward_ws(x, ws)
                        .expect("image shape");
                    peak_elems = peak_elems.max(t.buffered_elems());
                    let score = wgan::score(t.output());
                    fake_scores.push(score);
                    let delta = wgan::scalar_error(fake_delta(self.config.loss, score, m));
                    accumulate_ws(&mut grads, &self.gan.discriminator, &t, &delta, ws);
                    t.recycle(ws);
                }
            }
        }
        for f in fakes {
            ws.give_fmaps(f);
        }

        self.opt_d.step(&mut self.gan.discriminator, &grads);
        for g in grads {
            g.recycle(&mut self.workspace);
        }
        if let Some(c) = self.config.weight_clip {
            Optimizer::clip_weights(&mut self.gan.discriminator, c);
        }
        let dis_loss = match self.config.loss {
            LossKind::Wasserstein => wgan::dis_loss(&real_scores, &fake_scores),
            LossKind::MinimaxNonSaturating => wgan::vanilla_dis_loss(&real_scores, &fake_scores),
        };
        DisStepReport {
            dis_loss,
            wasserstein_estimate: wgan::wasserstein_estimate(&real_scores, &fake_scores),
            peak_buffered_elems: peak_elems,
            peak_live_traces: peak_traces,
        }
    }

    /// One Generator update over `batch` fresh latent vectors — paper
    /// Fig. 2 steps ⑤–⑨ (or Fig. 8b when deferred).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn step_generator<R: Rng>(&mut self, batch: usize, rng: &mut R) -> GenStepReport {
        assert!(batch > 0, "batch must be non-zero");
        let ws = &mut self.workspace;
        let zs = self.gan.sample_z_batch(batch, rng);
        let mut grads = self.gan.generator.zero_grads_ws(ws);
        let mut fake_scores = Vec::with_capacity(batch);
        let mut peak_elems = 0usize;
        let mut peak_traces = 0usize;

        let loss = self.config.loss;
        let backward_one = |gan: &GanPair,
                            grads: &mut Vec<LayerGrads>,
                            g_trace: &Trace,
                            d_trace: &Trace,
                            m: usize,
                            ws: &mut ConvWorkspace<f32>| {
            let score = wgan::score(d_trace.output());
            let delta = wgan::scalar_error(gen_delta(loss, score, m));
            // Error flows back through the (frozen) critic into the
            // Generator — Fig. 2 step ⑧. The critic's own gradients are a
            // by-product; they go straight back to the workspace.
            let (d_grads, delta_image) = gan
                .discriminator
                .backward_ws(d_trace, &delta, ws)
                .expect("trace produced by this network");
            for g in d_grads {
                g.recycle(ws);
            }
            let (g_grads, dx) = gan
                .generator
                .backward_ws(g_trace, &delta_image, ws)
                .expect("trace produced by this network");
            ws.give_fmaps(delta_image);
            ws.give_fmaps(dx);
            for (acc, g) in grads.iter_mut().zip(&g_grads) {
                acc.add_assign(g);
            }
            for g in g_grads {
                g.recycle(ws);
            }
        };

        match self.config.mode {
            SyncMode::Synchronized => {
                let traces: Vec<(Trace, Trace)> = zs
                    .iter()
                    .map(|z| {
                        let gt = self.gan.generator.forward_ws(z, ws).expect("z shape");
                        let dt = self
                            .gan
                            .discriminator
                            .forward_ws(gt.output(), ws)
                            .expect("image shape");
                        (gt, dt)
                    })
                    .collect();
                peak_elems = traces
                    .iter()
                    .map(|(g, d)| g.buffered_elems() + d.buffered_elems())
                    .sum();
                peak_traces = 2 * batch;
                for (_, dt) in &traces {
                    fake_scores.push(wgan::score(dt.output()));
                }
                for (gt, dt) in &traces {
                    backward_one(&self.gan, &mut grads, gt, dt, batch, ws);
                }
                for (gt, dt) in traces {
                    gt.recycle(ws);
                    dt.recycle(ws);
                }
            }
            SyncMode::Deferred => {
                for z in &zs {
                    let gt = self.gan.generator.forward_ws(z, ws).expect("z shape");
                    let dt = self
                        .gan
                        .discriminator
                        .forward_ws(gt.output(), ws)
                        .expect("image shape");
                    peak_elems = peak_elems.max(gt.buffered_elems() + dt.buffered_elems());
                    peak_traces = peak_traces.max(2);
                    fake_scores.push(wgan::score(dt.output()));
                    backward_one(&self.gan, &mut grads, &gt, &dt, batch, ws);
                    gt.recycle(ws);
                    dt.recycle(ws);
                }
            }
        }

        self.opt_g.step(&mut self.gan.generator, &grads);
        for g in grads {
            g.recycle(&mut self.workspace);
        }
        let gen_loss = match loss {
            LossKind::Wasserstein => wgan::gen_loss(&fake_scores),
            LossKind::MinimaxNonSaturating => wgan::vanilla_gen_loss(&fake_scores),
        };
        GenStepReport {
            gen_loss,
            peak_buffered_elems: peak_elems,
            peak_live_traces: peak_traces,
        }
    }

    /// One full WGAN iteration: `n_critic` Discriminator updates followed by
    /// one Generator update. Returns the last critic report and the
    /// Generator report.
    pub fn train_iteration<R: Rng>(
        &mut self,
        batch: usize,
        rng: &mut R,
    ) -> (DisStepReport, GenStepReport) {
        let mut span = zfgan_telemetry::span!("train/iteration");
        let t0 = std::time::Instant::now();
        let mut last = None;
        for _ in 0..self.config.n_critic.max(1) {
            let reals = self.gan.sample_real_batch(batch, rng);
            last = Some(self.step_discriminator(&reals, rng));
        }
        let gen = self.step_generator(batch, rng);
        if span.is_active() {
            span.record("batch", batch as u64);
            span.record("critic_updates", self.config.n_critic.max(1) as u64);
            zfgan_telemetry::count("trainer_steps_total", &[], 1);
            zfgan_telemetry::observe_wall(
                "trainer_step_seconds",
                &[],
                &[1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0],
                t0.elapsed().as_secs_f64(),
            );
        }
        (last.expect("n_critic ≥ 1"), gen)
    }
}

/// Per-sample output error of a real sample under `loss`, given the
/// sample's own critic output (score for WGAN, logit for minimax).
fn real_delta(loss: LossKind, score: f64, m: usize) -> f32 {
    match loss {
        LossKind::Wasserstein => wgan::dis_output_error_real(m),
        LossKind::MinimaxNonSaturating => wgan::vanilla_output_error_real(score, m),
    }
}

/// Per-sample output error of a fake sample during a Discriminator update.
fn fake_delta(loss: LossKind, score: f64, m: usize) -> f32 {
    match loss {
        LossKind::Wasserstein => wgan::dis_output_error_fake(m),
        LossKind::MinimaxNonSaturating => wgan::vanilla_output_error_fake(score, m),
    }
}

/// Per-sample output error of a fake sample during a Generator update.
fn gen_delta(loss: LossKind, score: f64, m: usize) -> f32 {
    match loss {
        LossKind::Wasserstein => wgan::gen_output_error(m),
        LossKind::MinimaxNonSaturating => wgan::vanilla_gen_output_error(score, m),
    }
}

/// Backpropagates one sample through `net` and accumulates its gradients,
/// drawing every transient from (and returning it to) the workspace.
fn accumulate_ws(
    grads: &mut [LayerGrads],
    net: &ConvNet,
    trace: &Trace,
    delta: &Fmaps<f32>,
    ws: &mut ConvWorkspace<f32>,
) {
    let (g, dx) = net
        .backward_ws(trace, delta, ws)
        .expect("trace produced by this network");
    ws.give_fmaps(dx);
    for (acc, gi) in grads.iter_mut().zip(&g) {
        acc.add_assign(gi);
    }
    for gi in g {
        gi.recycle(ws);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn trainer(mode: SyncMode, seed: u64) -> GanTrainer {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pair = GanPair::tiny(&mut rng);
        GanTrainer::new(
            pair,
            TrainerConfig {
                mode,
                optimizer: OptimizerKind::Sgd,
                ..TrainerConfig::default()
            },
        )
    }

    #[test]
    fn bad_configs_are_rejected_with_field_specific_errors() {
        let mut rng = SmallRng::seed_from_u64(60);
        let cases: [(TrainerConfig, &str); 4] = [
            (
                TrainerConfig {
                    weight_clip: Some(0.0),
                    ..TrainerConfig::default()
                },
                "weight_clip",
            ),
            (
                TrainerConfig {
                    weight_clip: Some(f32::NAN),
                    ..TrainerConfig::default()
                },
                "weight_clip",
            ),
            (
                TrainerConfig {
                    learning_rate: -1e-3,
                    ..TrainerConfig::default()
                },
                "learning_rate",
            ),
            (
                TrainerConfig {
                    n_critic: 0,
                    ..TrainerConfig::default()
                },
                "n_critic",
            ),
        ];
        for (cfg, field) in cases {
            assert!(cfg.validate().is_err());
            let err = GanTrainer::try_new(GanPair::tiny(&mut rng), cfg).unwrap_err();
            assert!(err.to_string().contains(field), "{err}");
        }
        assert!(TrainerConfig::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "weight_clip")]
    fn new_panics_with_the_descriptive_message() {
        let mut rng = SmallRng::seed_from_u64(61);
        let _ = GanTrainer::new(
            GanPair::tiny(&mut rng),
            TrainerConfig {
                weight_clip: Some(-1.0),
                ..TrainerConfig::default()
            },
        );
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let mut t = trainer(SyncMode::Deferred, 70);
        let mut rng = SmallRng::seed_from_u64(71);
        // Warm up so optimizer state is non-trivial.
        let _ = t.train_iteration(2, &mut rng);
        let state = t.snapshot();
        let rng_state = rng.clone();
        let (d1, g1) = t.train_iteration(2, &mut rng);
        // Diverge further, then roll back and replay.
        let _ = t.train_iteration(2, &mut rng);
        t.restore(&state);
        let mut rng2 = rng_state;
        let (d2, g2) = t.train_iteration(2, &mut rng2);
        assert_eq!(d1, d2);
        assert_eq!(g1, g2);
    }

    #[test]
    fn tiny_pair_shapes_are_consistent() {
        let mut rng = SmallRng::seed_from_u64(0);
        let pair = GanPair::tiny(&mut rng);
        assert_eq!(pair.z_shape(), (8, 1, 1));
        assert_eq!(pair.image_shape(), (1, 8, 8));
        assert_eq!(pair.discriminator().out_shape(), (1, 1, 1));
    }

    #[test]
    fn pair_validation_rejects_mismatches() {
        let mut rng = SmallRng::seed_from_u64(0);
        let a = GanPair::tiny(&mut rng);
        let b = GanPair::tiny(&mut rng);
        // Discriminator as generator: output is 1×1×1, not an image.
        assert!(GanPair::new(a.discriminator().clone(), b.discriminator().clone()).is_err());
        // Generator as critic: output is an image, not a scalar.
        assert!(GanPair::new(a.generator().clone(), b.generator().clone()).is_err());
    }

    /// Deferred synchronization is exact for the *original* GAN loss too —
    /// non-linear in the score, but still a per-sample sum.
    #[test]
    fn deferred_equals_synchronized_under_the_original_gan_loss() {
        let make = |mode| {
            let mut rng = SmallRng::seed_from_u64(55);
            let pair = GanPair::tiny(&mut rng);
            GanTrainer::new(
                pair,
                TrainerConfig {
                    mode,
                    loss: LossKind::MinimaxNonSaturating,
                    optimizer: OptimizerKind::Sgd,
                    ..TrainerConfig::default()
                },
            )
        };
        let mut t_sync = make(SyncMode::Synchronized);
        let mut t_def = make(SyncMode::Deferred);
        let mut data_rng = SmallRng::seed_from_u64(7);
        let reals = t_sync.gan().sample_real_batch(5, &mut data_rng);
        let mut ra = SmallRng::seed_from_u64(3);
        let mut rb = SmallRng::seed_from_u64(3);
        let a = t_sync.step_discriminator(&reals, &mut ra);
        let b = t_def.step_discriminator(&reals, &mut rb);
        assert_eq!(a.dis_loss, b.dis_loss);
        for (ls, ld) in t_sync
            .gan()
            .discriminator()
            .layers()
            .iter()
            .zip(t_def.gan().discriminator().layers())
        {
            assert_eq!(ls.weights().max_abs_diff(ld.weights()), 0.0);
        }
        // Generator step too.
        let ga = t_sync.step_generator(4, &mut ra);
        let gb = t_def.step_generator(4, &mut rb);
        assert_eq!(ga.gen_loss, gb.gen_loss);
    }

    #[test]
    fn vanilla_loss_trains_the_critic_too() {
        let mut rng = SmallRng::seed_from_u64(2030);
        let pair = GanPair::tiny(&mut rng);
        let mut trainer = GanTrainer::new(
            pair,
            TrainerConfig {
                mode: SyncMode::Deferred,
                loss: LossKind::MinimaxNonSaturating,
                optimizer: OptimizerKind::wgan_default(),
                learning_rate: 2e-3,
                weight_clip: None,
                n_critic: 1,
            },
        );
        let mut first = None;
        let mut last = 0.0;
        for i in 0..25 {
            let reals = trainer.gan().sample_real_batch(8, &mut rng);
            let rep = trainer.step_discriminator(&reals, &mut rng);
            if i == 0 {
                first = Some(rep.dis_loss);
            }
            last = rep.dis_loss;
        }
        // The minimax loss (−log-likelihood) must fall.
        assert!(last < first.unwrap() - 1e-4, "first={first:?} last={last}");
    }

    /// The paper's core algorithmic claim: deferred synchronization computes
    /// the *same* update as the original algorithm.
    #[test]
    fn deferred_equals_synchronized_discriminator_update() {
        let mut t_sync = trainer(SyncMode::Synchronized, 99);
        let mut t_def = trainer(SyncMode::Deferred, 99);
        // Identical starting weights (same seed) and identical inputs.
        let mut rng_data = SmallRng::seed_from_u64(1234);
        let reals = t_sync.gan().sample_real_batch(6, &mut rng_data);
        let mut rng_a = SmallRng::seed_from_u64(77);
        let mut rng_b = SmallRng::seed_from_u64(77);
        let ra = t_sync.step_discriminator(&reals, &mut rng_a);
        let rb = t_def.step_discriminator(&reals, &mut rng_b);
        assert_eq!(ra.dis_loss, rb.dis_loss);
        for (ls, ld) in t_sync
            .gan()
            .discriminator()
            .layers()
            .iter()
            .zip(t_def.gan().discriminator().layers())
        {
            assert_eq!(
                ls.weights().max_abs_diff(ld.weights()),
                0.0,
                "weights diverged between sync modes"
            );
        }
    }

    #[test]
    fn deferred_equals_synchronized_generator_update() {
        let mut t_sync = trainer(SyncMode::Synchronized, 5);
        let mut t_def = trainer(SyncMode::Deferred, 5);
        let mut rng_a = SmallRng::seed_from_u64(42);
        let mut rng_b = SmallRng::seed_from_u64(42);
        let ra = t_sync.step_generator(5, &mut rng_a);
        let rb = t_def.step_generator(5, &mut rng_b);
        assert_eq!(ra.gen_loss, rb.gen_loss);
        for (ls, ld) in t_sync
            .gan()
            .generator()
            .layers()
            .iter()
            .zip(t_def.gan().generator().layers())
        {
            assert_eq!(ls.weights().max_abs_diff(ld.weights()), 0.0);
        }
    }

    /// The paper's memory claim: synchronized buffering grows with 2·m,
    /// deferred buffering does not grow with the batch at all.
    #[test]
    fn deferred_memory_is_batch_independent() {
        for m in [2usize, 4, 8] {
            let mut t_sync = trainer(SyncMode::Synchronized, 11);
            let mut t_def = trainer(SyncMode::Deferred, 11);
            let mut rng = SmallRng::seed_from_u64(m as u64);
            let reals = t_sync.gan().sample_real_batch(m, &mut rng);
            let mut ra_rng = SmallRng::seed_from_u64(1);
            let mut rb_rng = SmallRng::seed_from_u64(1);
            let ra = t_sync.step_discriminator(&reals, &mut ra_rng);
            let rb = t_def.step_discriminator(&reals, &mut rb_rng);
            assert_eq!(ra.peak_live_traces, 2 * m);
            assert_eq!(rb.peak_live_traces, 1);
            assert_eq!(ra.peak_buffered_elems, 2 * m * rb.peak_buffered_elems);
        }
    }

    #[test]
    fn critic_learns_to_separate_real_from_fake() {
        let mut rng = SmallRng::seed_from_u64(2024);
        let pair = GanPair::tiny(&mut rng);
        let mut trainer = GanTrainer::new(
            pair,
            TrainerConfig {
                mode: SyncMode::Deferred,
                loss: LossKind::Wasserstein,
                optimizer: OptimizerKind::wgan_default(),
                learning_rate: 2e-3,
                weight_clip: Some(0.05),
                n_critic: 1,
            },
        );
        let mut first = None;
        let mut last = 0.0;
        for i in 0..30 {
            let reals = trainer.gan().sample_real_batch(8, &mut rng);
            let rep = trainer.step_discriminator(&reals, &mut rng);
            if i == 0 {
                first = Some(rep.wasserstein_estimate);
            }
            last = rep.wasserstein_estimate;
        }
        // The Wasserstein estimate (critic's separation margin) must grow.
        assert!(
            last > first.unwrap() + 1e-4,
            "critic did not learn: first={:?} last={last}",
            first
        );
    }

    #[test]
    fn train_iteration_runs_both_phases() {
        let mut rng = SmallRng::seed_from_u64(3);
        let pair = GanPair::tiny(&mut rng);
        let mut trainer = GanTrainer::new(
            pair,
            TrainerConfig {
                n_critic: 2,
                ..TrainerConfig::default()
            },
        );
        let (d, g) = trainer.train_iteration(3, &mut rng);
        assert!(d.dis_loss.is_finite());
        assert!(g.gen_loss.is_finite());
        assert!(g.peak_buffered_elems > 0);
    }

    #[test]
    fn generate_matches_a_manual_forward() {
        let mut rng = SmallRng::seed_from_u64(6);
        let pair = GanPair::tiny(&mut rng);
        let z = zfgan_tensor::Fmaps::random(8, 1, 1, 1.0, &mut rng);
        let a = pair.generate(&z);
        let b = pair.generator().forward(&z).unwrap().output().clone();
        assert_eq!(a, b);
        assert_eq!(pair.generate_batch(3, &mut rng).len(), 3);
    }

    #[test]
    fn real_samples_are_in_tanh_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        let pair = GanPair::tiny(&mut rng);
        for img in pair.sample_real_batch(4, &mut rng) {
            assert!(img.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
        }
    }
}
