//! Batch normalisation — and why the paper's deferred synchronization is
//! *allowed* to ignore it.
//!
//! DCGAN as published uses batch normalisation, whose training-mode
//! statistics couple every sample in the batch: sample *i*'s output depends
//! on the mean/variance of **all** samples. That coupling is precisely the
//! kind of cross-sample dependence that would forbid the paper's
//! per-sample deferred backward pass. Two facts reconcile this:
//!
//! 1. WGAN training (the algorithm the paper accelerates) works without
//!    batch norm in the critic — weight clipping already constrains it —
//!    and the inference-style normalisation below (running statistics,
//!    i.e. what the hardware would freeze) is per-sample.
//! 2. The decomposition argument of paper Eq. 6 only needs the *loss* to be
//!    a linear average; per-sample layers keep each sample's backward pass
//!    independent.
//!
//! This module implements both modes so the difference is testable:
//! [`BatchNorm::forward_batch`] (true batch statistics, cross-coupled) and
//! [`BatchNorm::forward_frozen`] (running statistics, per-sample). The
//! crate's tests demonstrate that the batch mode genuinely breaks
//! per-sample decomposability while the frozen mode preserves it.

use serde::{Deserialize, Serialize};
use zfgan_tensor::{Fmaps, ShapeError, TensorResult};

/// A 2-D batch-normalisation layer (per-channel statistics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchNorm {
    channels: usize,
    gamma: Vec<f32>,
    beta: Vec<f32>,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    eps: f32,
    momentum: f32,
}

/// Cached statistics from a batch-mode forward pass, needed by
/// [`BatchNorm::backward_batch`].
#[derive(Debug, Clone)]
pub struct BnCache {
    mean: Vec<f32>,
    var: Vec<f32>,
    normalised: Vec<Fmaps<f32>>,
}

impl BatchNorm {
    /// Creates a batch-norm layer with unit gain and zero shift.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channel count must be non-zero");
        Self {
            channels,
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            eps: 1e-5,
            momentum: 0.1,
        }
    }

    /// Number of normalised channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The per-channel gain `γ`.
    pub fn gamma(&self) -> &[f32] {
        &self.gamma
    }

    /// The per-channel shift `β`.
    pub fn beta(&self) -> &[f32] {
        &self.beta
    }

    /// Training-mode forward over a whole batch: normalises with the
    /// batch's own statistics and updates the running averages.
    /// **Cross-sample coupled** — the output of one sample changes if any
    /// other sample in the batch changes.
    ///
    /// # Errors
    ///
    /// Returns an error if the batch is empty or a sample has the wrong
    /// channel count.
    pub fn forward_batch(
        &mut self,
        batch: &[Fmaps<f32>],
    ) -> TensorResult<(Vec<Fmaps<f32>>, BnCache)> {
        if batch.is_empty() {
            return Err(ShapeError::new(
                "batch normalisation needs at least one sample",
            ));
        }
        for x in batch {
            if x.channels() != self.channels {
                return Err(ShapeError::new(format!(
                    "expected {} channels, got {}",
                    self.channels,
                    x.channels()
                )));
            }
        }
        let (_, h, w) = batch[0].shape();
        let n = (batch.len() * h * w) as f32;
        let mut mean = vec![0.0f32; self.channels];
        let mut var = vec![0.0f32; self.channels];
        for x in batch {
            for (c, m) in mean.iter_mut().enumerate() {
                for y in 0..h {
                    for xx in 0..w {
                        *m += *x.at(c, y, xx);
                    }
                }
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        for x in batch {
            for (c, v) in var.iter_mut().enumerate() {
                for y in 0..h {
                    for xx in 0..w {
                        let d = *x.at(c, y, xx) - mean[c];
                        *v += d * d;
                    }
                }
            }
        }
        for v in &mut var {
            *v /= n;
        }
        for c in 0..self.channels {
            self.running_mean[c] =
                (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
            self.running_var[c] =
                (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
        }
        let mut outs = Vec::with_capacity(batch.len());
        let mut normalised = Vec::with_capacity(batch.len());
        for x in batch {
            let mut nrm = x.clone();
            for c in 0..self.channels {
                let inv = 1.0 / (var[c] + self.eps).sqrt();
                for y in 0..h {
                    for xx in 0..w {
                        *nrm.at_mut(c, y, xx) = (*x.at(c, y, xx) - mean[c]) * inv;
                    }
                }
            }
            let mut out = nrm.clone();
            for c in 0..self.channels {
                for y in 0..h {
                    for xx in 0..w {
                        *out.at_mut(c, y, xx) = self.gamma[c] * *nrm.at(c, y, xx) + self.beta[c];
                    }
                }
            }
            normalised.push(nrm);
            outs.push(out);
        }
        Ok((
            outs,
            BnCache {
                mean,
                var,
                normalised,
            },
        ))
    }

    /// Inference-mode forward of a single sample using the frozen running
    /// statistics — per-sample independent, hence deferral-safe.
    ///
    /// # Errors
    ///
    /// Returns an error on a channel-count mismatch.
    pub fn forward_frozen(&self, x: &Fmaps<f32>) -> TensorResult<Fmaps<f32>> {
        if x.channels() != self.channels {
            return Err(ShapeError::new(format!(
                "expected {} channels, got {}",
                self.channels,
                x.channels()
            )));
        }
        let (_, h, w) = x.shape();
        let mut out = x.clone();
        for c in 0..self.channels {
            let inv = 1.0 / (self.running_var[c] + self.eps).sqrt();
            for y in 0..h {
                for xx in 0..w {
                    *out.at_mut(c, y, xx) =
                        self.gamma[c] * (*x.at(c, y, xx) - self.running_mean[c]) * inv
                            + self.beta[c];
                }
            }
        }
        Ok(out)
    }

    /// Training-mode backward over the whole batch: given `δ_out` per
    /// sample, returns `δ_in` per sample plus `(dγ, dβ)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the cache does not match the deltas.
    #[allow(clippy::type_complexity)]
    pub fn backward_batch(
        &self,
        deltas: &[Fmaps<f32>],
        cache: &BnCache,
    ) -> TensorResult<(Vec<Fmaps<f32>>, Vec<f32>, Vec<f32>)> {
        if deltas.len() != cache.normalised.len() {
            return Err(ShapeError::new("cache/delta batch size mismatch"));
        }
        let (_, h, w) = deltas[0].shape();
        let n = (deltas.len() * h * w) as f32;
        let mut dgamma = vec![0.0f32; self.channels];
        let mut dbeta = vec![0.0f32; self.channels];
        // Channel-wise sums needed by the standard BN backward formula.
        let mut sum_dn = vec![0.0f32; self.channels];
        let mut sum_dn_nrm = vec![0.0f32; self.channels];
        for (d, nrm) in deltas.iter().zip(&cache.normalised) {
            for c in 0..self.channels {
                for y in 0..h {
                    for xx in 0..w {
                        let dy = *d.at(c, y, xx);
                        let nv = *nrm.at(c, y, xx);
                        dgamma[c] += dy * nv;
                        dbeta[c] += dy;
                        let dn = dy * self.gamma[c];
                        sum_dn[c] += dn;
                        sum_dn_nrm[c] += dn * nv;
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(deltas.len());
        for (d, nrm) in deltas.iter().zip(&cache.normalised) {
            let mut dx = d.clone();
            for c in 0..self.channels {
                let inv = 1.0 / (cache.var[c] + self.eps).sqrt();
                for y in 0..h {
                    for xx in 0..w {
                        let dn = *d.at(c, y, xx) * self.gamma[c];
                        let nv = *nrm.at(c, y, xx);
                        *dx.at_mut(c, y, xx) = inv * (dn - sum_dn[c] / n - nv * sum_dn_nrm[c] / n);
                    }
                }
            }
            out.push(dx);
        }
        let _ = cache.mean.len();
        Ok((out, dgamma, dbeta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn batch(rng: &mut SmallRng, n: usize) -> Vec<Fmaps<f32>> {
        (0..n).map(|_| Fmaps::random(2, 3, 3, 2.0, rng)).collect()
    }

    #[test]
    fn batch_forward_normalises() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut bn = BatchNorm::new(2);
        let xs = batch(&mut rng, 4);
        let (ys, cache) = bn.forward_batch(&xs).unwrap();
        // Normalised activations have ~zero mean and ~unit variance.
        let mut mean = 0.0;
        let mut var = 0.0;
        let n = (ys.len() * 9) as f32;
        for y in &cache.normalised {
            for yy in 0..3 {
                for xx in 0..3 {
                    mean += *y.at(0, yy, xx);
                }
            }
        }
        mean /= n;
        for y in &cache.normalised {
            for yy in 0..3 {
                for xx in 0..3 {
                    var += (*y.at(0, yy, xx) - mean).powi(2);
                }
            }
        }
        var /= n;
        assert!(mean.abs() < 1e-5, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-3, "var {var}");
        assert_eq!(ys.len(), 4);
    }

    /// The cross-sample coupling that would break deferred synchronization:
    /// changing sample 1 changes sample 0's *output*.
    #[test]
    fn batch_mode_couples_samples() {
        let mut rng = SmallRng::seed_from_u64(2);
        let xs = batch(&mut rng, 3);
        let mut bn_a = BatchNorm::new(2);
        let (ya, _) = bn_a.forward_batch(&xs).unwrap();
        let mut xs_b = xs.clone();
        *xs_b[1].at_mut(0, 0, 0) += 10.0;
        let mut bn_b = BatchNorm::new(2);
        let (yb, _) = bn_b.forward_batch(&xs_b).unwrap();
        assert!(
            ya[0].max_abs_diff(&yb[0]) > 1e-3,
            "sample 0 should feel sample 1's change"
        );
    }

    /// Frozen statistics restore per-sample independence — deferral-safe.
    #[test]
    fn frozen_mode_is_per_sample() {
        let mut rng = SmallRng::seed_from_u64(3);
        let bn = BatchNorm::new(2);
        let xs = batch(&mut rng, 2);
        let y0_alone = bn.forward_frozen(&xs[0]).unwrap();
        // Recompute with a "different batch context": irrelevant by design.
        let y0_again = bn.forward_frozen(&xs[0]).unwrap();
        assert_eq!(y0_alone, y0_again);
    }

    /// BN backward matches finite differences through the batch statistics.
    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(4);
        let xs = batch(&mut rng, 2);
        let loss = |xs: &[Fmaps<f32>]| -> f64 {
            let mut bn = BatchNorm::new(2);
            let (ys, _) = bn.forward_batch(xs).unwrap();
            ys.iter().map(|y| y.sum_f64()).sum()
        };
        let mut bn = BatchNorm::new(2);
        let (ys, cache) = bn.forward_batch(&xs).unwrap();
        let ones: Vec<Fmaps<f32>> = ys
            .iter()
            .map(|_| Fmaps::from_vec(2, 3, 3, vec![1.0; 18]))
            .collect();
        let (dx, dgamma, dbeta) = bn.backward_batch(&ones, &cache).unwrap();
        let base = loss(&xs);
        let eps = 1e-2f32;
        for (s, c, y, x) in [(0usize, 0usize, 0usize, 0usize), (1, 1, 2, 2), (0, 1, 1, 0)] {
            let mut xp = xs.clone();
            *xp[s].at_mut(c, y, x) += eps;
            let fd = (loss(&xp) - base) / f64::from(eps);
            let an = f64::from(*dx[s].at(c, y, x));
            assert!(
                (fd - an).abs() < 5e-2,
                "dx[{s}][{c}][{y}][{x}] fd={fd} an={an}"
            );
        }
        // dβ = count of elements per channel (loss is a plain sum).
        for b in &dbeta {
            assert!((b - 18.0).abs() < 1e-3);
        }
        // dγ = Σ normalised ≈ 0 per channel.
        for g in &dgamma {
            assert!(g.abs() < 1e-2, "dgamma {g}");
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let mut bn = BatchNorm::new(2);
        assert!(bn.forward_batch(&[]).is_err());
        let wrong = Fmaps::<f32>::zeros(3, 2, 2);
        assert!(bn.forward_batch(std::slice::from_ref(&wrong)).is_err());
        assert!(bn.forward_frozen(&wrong).is_err());
    }
}
