//! Cache-robustness contract, mirroring `zfgan-store`'s fallback-ladder
//! tests one layer up: a flipped byte, a truncated generation or a
//! foreign-version cell in the DSE cache is *detected* (checksum /
//! envelope / config-hash validation), *recomputed* (the cell evaluates
//! again) and *republished* (the next run hits) — and the canonical
//! result stream never changes, so corruption can never poison the
//! Pareto frontier.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use zfgan_dse::sweeps::fig16;
use zfgan_dse::{DseConfig, VerifyPolicy};
use zfgan_store::{fnv64, Store, StoreConfig};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("zfgan-dse-robust-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Out {
    n: u64,
    scaled: f64,
}

fn eval(i: &u64) -> Out {
    Out {
        n: i.wrapping_mul(7),
        scaled: *i as f64 * 0.125,
    }
}

const CELLS: u64 = 6;

fn items() -> Vec<u64> {
    (0..CELLS).collect()
}

fn key_of(i: &u64) -> String {
    format!("cell-{i}")
}

/// The on-disk path of one cell's first generation (the engine's store
/// key is `namespace-<fnv64(key)>`).
fn cell_path(dir: &std::path::Path, namespace: &str, key: &str) -> PathBuf {
    let store = Store::open(dir.to_path_buf(), StoreConfig::default()).expect("open store");
    store.generation_path(&format!("{namespace}-{:016x}", fnv64(key.as_bytes())), 1)
}

/// Runs the batch counting evaluations; returns (results, evals).
fn run_counting(cfg: &DseConfig) -> (Vec<Out>, usize) {
    let calls = AtomicUsize::new(0);
    let batch = zfgan_dse::run_batch(cfg, &items(), key_of, |i| {
        calls.fetch_add(1, Ordering::Relaxed);
        eval(i)
    });
    (batch.results, calls.load(Ordering::Relaxed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single-byte flip or truncation of one cell's stored generation
    /// is detected and only that cell recomputes; a foreign-version salt
    /// invalidates (and recomputes) every cell. In all cases the results
    /// are unchanged and the damage is republished away: the following
    /// run is pure hits.
    #[test]
    fn damaged_cells_recompute_republish_and_heal(
        (victim, damage, at) in (0u64..CELLS, 0usize..3, 0usize..4096)
    ) {
        let dir = temp_dir("prop");
        let mut cfg = DseConfig::new("robust");
        cfg.cache_dir = Some(dir.clone());

        let (cold, cold_evals) = run_counting(&cfg);
        prop_assert_eq!(cold_evals, CELLS as usize);

        // Inflict the damage.
        let expected_evals = match damage {
            0 | 1 => {
                let path = cell_path(&dir, "robust", &key_of(&victim));
                let mut bytes = std::fs::read(&path)
                    .map_err(|e| TestCaseError::fail(format!("read {}: {e}", path.display())))?;
                if damage == 0 {
                    let i = at % bytes.len();
                    bytes[i] ^= 0x40;
                } else {
                    bytes.truncate(at % bytes.len());
                }
                std::fs::write(&path, &bytes)
                    .map_err(|e| TestCaseError::fail(format!("write {}: {e}", path.display())))?;
                1 // only the victim recomputes
            }
            _ => {
                // Foreign code version: every stored cell stops matching.
                cfg.salt = cfg.salt.wrapping_add(1);
                CELLS as usize
            }
        };

        let reg = Arc::new(zfgan_telemetry::Registry::new());
        let (warm, warm_evals) = {
            let _guard = zfgan_telemetry::scope(Arc::clone(&reg));
            run_counting(&cfg)
        };
        prop_assert_eq!(warm_evals, expected_evals, "detected damage recomputes");
        prop_assert_eq!(&warm, &cold, "results never change");
        prop_assert_eq!(
            zfgan_telemetry::export::counter_total(&reg, "dse_cache_misses_total"),
            expected_evals as u64
        );
        prop_assert_eq!(
            zfgan_telemetry::export::counter_total(&reg, "dse_published_total"),
            expected_evals as u64,
            "recomputed cells republish"
        );

        // Healed: the republished generation serves the next run fully.
        let (healed, healed_evals) = run_counting(&cfg);
        prop_assert_eq!(healed_evals, 0, "republished cache is pure hits");
        prop_assert_eq!(&healed, &cold);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A corrupted cell must not poison the Pareto stream of a real sweep:
/// the fig16 canonical JSONL (cells, `pareto_add` lines, final frontier)
/// is byte-identical across cold, corrupted-then-recomputed and warm
/// runs.
#[test]
fn corruption_does_not_poison_the_pareto_stream() {
    let dir = temp_dir("stream");
    let mut cfg = DseConfig::new("ignored");
    cfg.cache_dir = Some(dir.clone());

    let cold = fig16::run(&cfg);
    assert_eq!(cold.unique, 4);

    // Flip one byte inside every cell's stored generation.
    let ns_prefix = format!("{}-", fig16::NAME);
    let mut damaged = 0;
    for entry in walk(&dir) {
        if entry
            .file_name()
            .is_some_and(|n| n.to_string_lossy().ends_with(".zfc"))
            && entry.to_string_lossy().contains(&ns_prefix)
        {
            let mut bytes = std::fs::read(&entry).expect("read generation");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(&entry, &bytes).expect("write generation");
            damaged += 1;
        }
    }
    assert!(damaged > 0, "no generation files found under {dir:?}");

    let recomputed = fig16::run(&cfg);
    assert_eq!(
        cold.stream, recomputed.stream,
        "corrupted cells recompute into the identical stream"
    );
    let warm = fig16::run(&cfg);
    assert_eq!(cold.stream, warm.stream, "healed cache streams identically");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Under `--verify all`, hits that byte-match their recomputation count
/// as verified; a tampered *valid-envelope* payload cannot occur without
/// a checksum break, so verification failures stay at zero here.
#[test]
fn verify_all_confirms_stored_cells_byte_for_byte() {
    let dir = temp_dir("verify");
    let mut cfg = DseConfig::new("verify");
    cfg.cache_dir = Some(dir.clone());
    run_counting(&cfg);

    cfg.verify = VerifyPolicy::All;
    let reg = Arc::new(zfgan_telemetry::Registry::new());
    let (results, evals) = {
        let _guard = zfgan_telemetry::scope(Arc::clone(&reg));
        run_counting(&cfg)
    };
    assert_eq!(evals, CELLS as usize, "verify recomputes every hit");
    assert_eq!(results, items().iter().map(eval).collect::<Vec<_>>());
    assert_eq!(
        zfgan_telemetry::export::counter_total(&reg, "dse_verified_total"),
        CELLS
    );
    assert_eq!(
        zfgan_telemetry::export::counter_total(&reg, "dse_verify_failures_total"),
        0
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recursively lists the files under `dir`.
fn walk(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            out.extend(walk(&path));
        } else {
            out.push(path);
        }
    }
    out
}
