//! Dedup + determinism contract: a batch containing duplicate and
//! permuted cells evaluates each unique cell exactly once and produces a
//! byte-identical result stream regardless of thread count
//! (`ZFGAN_THREADS` is process-wide, so thread-count invariance is
//! exercised by the CI gate; here the pool's actual parallelism runs
//! against the serial reference) and shard count. Also pins the engine's
//! counters to the shared `/metrics` endpoint.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};
use zfgan_dse::sweeps::{fig16, fig18};
use zfgan_dse::{key_in_shard, DseConfig};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("zfgan-dse-dedup-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Out {
    v: u64,
    frac: f64,
}

fn eval(i: &u64) -> Out {
    Out {
        v: i * 11,
        frac: *i as f64 / 3.0,
    }
}

#[test]
fn duplicates_and_permutations_share_one_evaluation() {
    // 4 unique cells presented 3 times each, shuffled.
    let items: Vec<u64> = vec![3, 1, 0, 2, 1, 3, 0, 2, 2, 0, 1, 3];
    let calls = AtomicUsize::new(0);
    let batch = zfgan_dse::run_batch(
        &DseConfig::new("dedup"),
        &items,
        |i| format!("k{i}"),
        |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval(i)
        },
    );
    assert_eq!(calls.load(Ordering::Relaxed), 4, "one eval per unique cell");
    assert_eq!(batch.unique, 4);
    assert_eq!(batch.duplicates, 8);
    // Every duplicate sees the same reconstructed value, in input order.
    let expect: Vec<Out> = items.iter().map(eval).collect();
    assert_eq!(batch.results, expect);
}

#[test]
fn permuted_batches_yield_identical_cell_records() {
    let forward: Vec<u64> = (0..8).collect();
    let mut backward = forward.clone();
    backward.reverse();
    let cfg = DseConfig::new("perm");
    let a = zfgan_dse::run_batch(&cfg, &forward, |i| format!("k{i}"), eval);
    let b = zfgan_dse::run_batch(&cfg, &backward, |i| format!("k{i}"), eval);
    // Canonical cell records are sorted by key: identical across orders.
    assert_eq!(a.cells.len(), b.cells.len());
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.key, y.key);
        assert_eq!(x.result_json, y.result_json);
        assert_eq!(x.det, y.det);
    }
}

/// A permuted, duplicate-laden fig18 point list must stream exactly like
/// the pristine sweep — the stream is a function of the unique key set
/// alone.
#[test]
fn sweep_stream_is_invariant_to_input_presentation() {
    let cfg = DseConfig::new("ignored");
    let a = fig18::run(&cfg);
    let b = fig18::run(&cfg);
    assert_eq!(a.stream, b.stream);
    assert_eq!(a.unique, 12);
    assert_eq!(a.results.len(), 12);
}

/// Shard-count invariance: computing the cells through any number of
/// hash-routed shard passes (the client side of the work-unit protocol)
/// and then serving the full batch yields the byte-identical stream, with
/// the serving pass all hits.
#[test]
fn shard_count_never_changes_the_stream() {
    // The reference stream, computed unsharded and cacheless.
    let reference = fig16::run(&DseConfig::new("ignored")).stream;

    for shards in [1usize, 2, 3, 5] {
        let dir = temp_dir(&format!("s{shards}"));
        let mut cfg = DseConfig::new("ignored");
        cfg.cache_dir = Some(dir.clone());
        // Each shard computes and publishes its partition...
        let mut routed = 0;
        for index in 0..shards {
            routed += fig16::shard(&cfg, index, shards);
        }
        assert_eq!(routed, 4, "shards partition the 4 cells exactly");
        // ...and the serving pass streams identically (pure hits).
        let served = fig16::run(&cfg);
        assert_eq!(
            served.stream, reference,
            "stream must not depend on shard count {shards}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn shard_routing_is_a_partition_of_any_key_set() {
    let keys: Vec<String> = (0..257).map(|i| format!("cell-{i}")).collect();
    for count in [1usize, 2, 4, 9] {
        for key in &keys {
            let owners: Vec<usize> = (0..count)
                .filter(|&idx| key_in_shard(key, idx, count))
                .collect();
            assert_eq!(owners.len(), 1, "{key} must have exactly one owner");
        }
    }
}

/// The engine's cache counters ride the shared HTTP `/metrics` endpoint:
/// run a cached batch against the global registry, serve one scrape, and
/// find the `dse_*` series in Prometheus text format.
#[test]
fn dse_counters_are_exposed_on_the_shared_metrics_endpoint() {
    let dir = temp_dir("metrics");
    let mut cfg = DseConfig::new("metrics-sweep");
    cfg.cache_dir = Some(dir.clone());
    let items: Vec<u64> = (0..3).collect();
    // Cold populate + warm hit, recorded in the global registry (the
    // engine enables telemetry when a cache is configured).
    zfgan_dse::run_batch(&cfg, &items, |i| format!("m{i}"), eval);
    zfgan_dse::run_batch(&cfg, &items, |i| format!("m{i}"), eval);

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || zfgan_telemetry::http::serve_on(listener, Some(1)));
    let body = zfgan_telemetry::http::scrape(&addr, "/metrics").expect("scrape");
    server.join().expect("join").expect("serve");

    for series in [
        "dse_cells_total{namespace=\"metrics-sweep\"}",
        "dse_cache_hits_total{namespace=\"metrics-sweep\"}",
        "dse_cache_misses_total{namespace=\"metrics-sweep\"}",
        "dse_published_total{namespace=\"metrics-sweep\"}",
    ] {
        assert!(body.contains(series), "missing {series} in:\n{body}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
