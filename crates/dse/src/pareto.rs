//! Incremental Pareto frontier over the service's three objectives:
//! cycles × energy × buffer capacity, all minimised.

use crate::json_escape;

/// One cell's objective vector. Lower is better on every axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Total cycles of the cell's best configuration.
    pub cycles: u64,
    /// Estimated energy of that configuration, picojoules.
    pub energy_pj: f64,
    /// On-chip buffer capacity the configuration needs, bytes.
    pub buffer_bytes: u64,
}

impl Objectives {
    /// True when `self` dominates `other`: no worse on every axis and
    /// strictly better on at least one.
    pub fn dominates(&self, other: &Objectives) -> bool {
        let no_worse = self.cycles <= other.cycles
            && self.energy_pj <= other.energy_pj
            && self.buffer_bytes <= other.buffer_bytes;
        let better = self.cycles < other.cycles
            || self.energy_pj < other.energy_pj
            || self.buffer_bytes < other.buffer_bytes;
        no_worse && better
    }

    /// Canonical JSON rendering (floats print with Rust's shortest
    /// round-trip `Display`, byte-stable like the serde shim).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cycles\":{},\"energy_pj\":{},\"buffer_bytes\":{}}}",
            self.cycles, self.energy_pj, self.buffer_bytes
        )
    }
}

/// An incrementally maintained Pareto frontier keyed by cell key.
///
/// Membership is deterministic: inserting the same (key, objectives)
/// pairs in the same order always yields the same frontier, and the
/// engine feeds cells in canonical sorted-key order.
#[derive(Debug, Default)]
pub struct ParetoFrontier {
    members: Vec<(String, Objectives)>,
}

impl ParetoFrontier {
    /// An empty frontier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a cell. Returns `Some(evicted_keys)` (possibly empty, in
    /// frontier order) when the cell joins the frontier, `None` when an
    /// existing member dominates it.
    pub fn insert(&mut self, key: &str, obj: Objectives) -> Option<Vec<String>> {
        if self.members.iter().any(|(_, m)| m.dominates(&obj)) {
            return None;
        }
        let mut evicted = Vec::new();
        self.members.retain(|(k, m)| {
            if obj.dominates(m) {
                evicted.push(k.clone());
                false
            } else {
                true
            }
        });
        self.members.push((key.to_string(), obj));
        Some(evicted)
    }

    /// Number of non-dominated cells.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no cell has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The frontier in sorted-key order.
    pub fn members(&self) -> Vec<(&str, Objectives)> {
        let mut out: Vec<(&str, Objectives)> =
            self.members.iter().map(|(k, o)| (k.as_str(), *o)).collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Canonical one-line JSON summary of the frontier, sorted by key.
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .members()
            .into_iter()
            .map(|(k, o)| {
                format!(
                    "{{\"cell\":{},\"objectives\":{}}}",
                    json_escape(k),
                    o.to_json()
                )
            })
            .collect();
        format!("{{\"pareto\":[{}]}}", cells.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(c: u64, e: f64, b: u64) -> Objectives {
        Objectives {
            cycles: c,
            energy_pj: e,
            buffer_bytes: b,
        }
    }

    #[test]
    fn dominance_requires_strict_improvement_somewhere() {
        assert!(obj(1, 1.0, 1).dominates(&obj(2, 1.0, 1)));
        assert!(!obj(1, 1.0, 1).dominates(&obj(1, 1.0, 1)));
        assert!(!obj(1, 5.0, 1).dominates(&obj(2, 1.0, 1)));
    }

    #[test]
    fn frontier_admits_trades_and_evicts_dominated() {
        let mut f = ParetoFrontier::new();
        assert_eq!(f.insert("a", obj(10, 10.0, 10)), Some(vec![]));
        // A pure trade-off joins without evicting.
        assert_eq!(f.insert("b", obj(5, 20.0, 10)), Some(vec![]));
        // Dominated by "a": rejected.
        assert_eq!(f.insert("c", obj(11, 10.0, 10)), None);
        // Dominates both: evicts both.
        assert_eq!(
            f.insert("d", obj(4, 9.0, 9)),
            Some(vec!["a".to_string(), "b".to_string()])
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f.members()[0].0, "d");
        assert!(!f.is_empty());
    }

    #[test]
    fn json_is_sorted_by_key() {
        let mut f = ParetoFrontier::new();
        f.insert("z", obj(1, 2.0, 3));
        f.insert("a", obj(2, 1.0, 3));
        let json = f.to_json();
        assert!(json.starts_with("{\"pareto\":[{\"cell\":\"a\""), "{json}");
        assert!(json.contains("\"energy_pj\":2"), "{json}");
    }
}
