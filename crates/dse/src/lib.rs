//! Design-space exploration engine: sweeps as served query batches.
//!
//! A sweep is a batch of *(arch config × phase geometry)* queries. This
//! crate turns each batch into:
//!
//! 1. **Canonical cell keys** — the caller's stable key string per query,
//!    folded with a namespace and a code-version salt into the config hash
//!    of a content-addressed on-disk cache built on `zfgan-store`'s
//!    crash-consistent envelopes ([`DseConfig`]).
//! 2. **A deduped, windowed execution core** — duplicate keys evaluate
//!    once; misses fan out over `zfgan-pool` in bounded waves
//!    ([`DseConfig::window`]) so a huge batch never holds more than one
//!    wave of unpublished results in flight ([`run_batch`]).
//! 3. **Verifiable hits** — every computed cell is published together
//!    with its byte-stable deterministic telemetry section, so a cache
//!    hit can be re-derived and byte-compared ([`VerifyPolicy::All`]).
//! 4. **Canonical result streams** — per-cell JSONL in sorted-key order
//!    plus an incrementally maintained Pareto frontier over
//!    *(cycles × energy × buffer capacity)* ([`sweeps`], [`pareto`]).
//!
//! The stream contains no hit/miss or wall-clock information, so a cold
//! run, a warm rerun and a corrupted-then-recomputed run are
//! byte-identical — the CI gate diffs exactly that. Cache traffic is
//! observable instead through wall-clock-class telemetry counters
//! (`dse_*_total`), which also ride the shared `/metrics` endpoint.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod pareto;
pub mod sweeps;

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use zfgan_store::{fnv64, fnv64_salted, Store, StoreConfig};

/// The code-version salt folded into every cell's config hash. Bump the
/// string when the cached payload semantics change: every existing cell
/// then misses (foreign version) and is recomputed and republished —
/// stale generations can never be served.
pub fn code_salt() -> u64 {
    fnv64(b"zfgan-dse-payload-v1")
}

/// Environment variable naming the on-disk cell cache directory for
/// engine entry points that configure themselves from the environment
/// ([`DseConfig::from_env`]). Replaces the retired `ZFGAN_SWEEP_CACHE`.
pub const CACHE_ENV: &str = "ZFGAN_DSE_CACHE";

/// Default bounded in-flight window: cells computed per pool wave before
/// their results are published and the next wave starts.
pub const DEFAULT_WINDOW: usize = 64;

/// How cache hits are checked against their stored deterministic
/// telemetry sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyPolicy {
    /// Trust the envelope checksums (CRC32 + config hash) alone.
    Trust,
    /// Recompute every hit and byte-compare the full payload — result
    /// JSON *and* deterministic telemetry section. A mismatch counts in
    /// `dse_verify_failures_total` and the recomputed cell replaces and
    /// republishes the stored one.
    All,
}

/// One batch execution's configuration.
#[derive(Debug, Clone)]
pub struct DseConfig {
    /// Cache namespace (e.g. the sweep name); part of the store key and
    /// the config hash, so two sweeps never read each other's cells.
    pub namespace: String,
    /// Cell cache directory; `None` disables caching (every cell
    /// computes).
    pub cache_dir: Option<PathBuf>,
    /// Code-version salt folded into every config hash.
    pub salt: u64,
    /// Bounded in-flight window (cells per pool wave); the batch's
    /// backpressure knob.
    pub window: usize,
    /// Hit-verification policy.
    pub verify: VerifyPolicy,
}

impl DseConfig {
    /// A cache-less config for `namespace` with default window and salt.
    pub fn new(namespace: impl Into<String>) -> Self {
        Self {
            namespace: namespace.into(),
            cache_dir: None,
            salt: code_salt(),
            window: DEFAULT_WINDOW,
            verify: VerifyPolicy::Trust,
        }
    }

    /// Like [`DseConfig::new`], but the cache directory comes from the
    /// `ZFGAN_DSE_CACHE` environment variable when set.
    pub fn from_env(namespace: impl Into<String>) -> Self {
        let mut cfg = Self::new(namespace);
        cfg.cache_dir = std::env::var_os(CACHE_ENV).map(PathBuf::from);
        cfg
    }
}

/// One unique cell's outcome, in canonical (sorted-key) order inside
/// [`Batch::cells`].
#[derive(Debug, Clone)]
pub struct CellRecord {
    /// The caller's canonical cell key.
    pub key: String,
    /// Canonical JSON of the cell result (the serde shim serialises
    /// floats bit-exactly, so this string is byte-stable).
    pub result_json: String,
    /// The cell's deterministic telemetry section, captured under a
    /// scoped per-cell registry on the worker that computed it (empty-ish
    /// but byte-stable when the cell was computed without a cache).
    pub det: String,
}

/// Result of [`run_batch`].
#[derive(Debug)]
pub struct Batch<R> {
    /// One result per input item, in input order. Every result — hit or
    /// fresh — is reconstructed from its canonical JSON, so the values
    /// are independent of cache state.
    pub results: Vec<R>,
    /// Unique cells in canonical (sorted-key) order.
    pub cells: Vec<CellRecord>,
    /// Number of unique cells in the batch.
    pub unique: usize,
    /// Number of input items folded away by dedup.
    pub duplicates: usize,
}

/// The store key for a cell: readable namespace prefix plus the FNV-1a
/// hash of the canonical key (store keys are length- and
/// charset-restricted; the full key lives in the config hash).
fn store_key(namespace: &str, key: &str) -> String {
    format!("{namespace}-{:016x}", fnv64(key.as_bytes()))
}

/// The content address: code-version salt, namespace and canonical key
/// folded into one hash. A cell published under a different salt or
/// namespace never matches — it is skipped like a corrupt generation.
fn config_hash(cfg: &DseConfig, key: &str) -> u64 {
    fnv64_salted(
        fnv64_salted(cfg.salt, cfg.namespace.as_bytes()),
        key.as_bytes(),
    )
}

/// Encodes the cached payload: canonical JSON carrying the deterministic
/// telemetry section next to the result, so hits are verifiable
/// byte-for-byte.
fn encode_payload(det: &str, result_json: &str) -> String {
    format!("{{\"det\":{},\"result\":{result_json}}}", json_escape(det))
}

/// Escapes a string into a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Decodes a cached payload back into `(det, result_json)`, validating
/// that the result parses as `R`. Any malformation → `None` (the cell is
/// treated as a miss and recomputed).
fn decode_payload<R: Deserialize>(payload: &[u8]) -> Option<(String, String)> {
    let text = std::str::from_utf8(payload).ok()?;
    let v: serde_json::Value = serde_json::from_str(text).ok()?;
    let obj = v.as_object()?;
    let det = obj.get("det")?.as_str()?.to_string();
    let result = obj.get("result")?;
    R::from_value(result).ok()?;
    Some((det, serde_json::to_string(result).ok()?))
}

/// Records a wall-clock-class engine counter labelled by namespace (wall
/// class keeps the counters out of the deterministic sections the CI
/// byte-diffs).
fn count(name: &'static str, namespace: &str, delta: u64) {
    if delta > 0 {
        zfgan_telemetry::count_wall(name, &[("namespace", namespace)], delta);
    }
}

/// Computes one cell on the current thread under a fresh scoped
/// telemetry registry and returns `(result_json, det_section)`.
fn compute_cell<T, R, F>(eval: &F, item: &T) -> (String, String)
where
    R: Serialize,
    F: Fn(&T) -> R,
{
    let reg = Arc::new(zfgan_telemetry::Registry::new());
    let result = {
        let _guard = zfgan_telemetry::scope(Arc::clone(&reg));
        eval(item)
    };
    let det = zfgan_telemetry::export::deterministic_section(&reg);
    let json = serde_json::to_string(&result).expect("cell result must serialise");
    (json, det)
}

/// Serves one batch of queries: dedup → cache load → verify → windowed
/// compute on the pool → publish → canonical merge.
///
/// `key_of` must be a *canonical* key: equal keys mean equal cells. The
/// returned [`Batch`] carries input-order results and sorted-key unique
/// cells; both are byte-stable across thread counts, shard counts, item
/// permutation and cache state.
///
/// Store failures only ever cost recomputation — a corrupt, truncated or
/// foreign-version generation is skipped by the store's fallback ladder
/// (or rejected by payload validation here), recomputed and republished.
///
/// # Panics
///
/// Panics if a pool worker panics or a result fails to serialise.
pub fn run_batch<T, R, K, F>(cfg: &DseConfig, items: &[T], key_of: K, eval: F) -> Batch<R>
where
    T: Sync,
    R: Send + Serialize + Deserialize,
    K: Fn(&T) -> String,
    F: Fn(&T) -> R + Sync,
{
    let ns = cfg.namespace.clone();
    let keys: Vec<String> = items.iter().map(&key_of).collect();

    // Dedup: first item index per unique key, in canonical sorted order.
    let mut first: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, k) in keys.iter().enumerate() {
        first.entry(k.as_str()).or_insert(i);
    }
    let uniques: Vec<(&str, usize)> = first.iter().map(|(k, i)| (*k, *i)).collect();
    count("dse_cells_total", &ns, uniques.len() as u64);
    count("dse_dedup_total", &ns, (items.len() - uniques.len()) as u64);

    let mut store = cfg.cache_dir.as_ref().and_then(|dir| {
        // Deterministic sections are only meaningful with telemetry on;
        // a cached cell must carry the same section a live one would.
        zfgan_telemetry::set_enabled(true);
        match Store::open(dir.clone(), StoreConfig::default()) {
            Ok(s) => Some(s),
            Err(err) => {
                eprintln!("warning: dse cache unavailable ({err}); recomputing");
                None
            }
        }
    });

    // Load pass: pull every published cell; corrupt/foreign generations
    // are skipped by the fallback ladder, unparseable payloads rejected
    // here — either way the cell recomputes below.
    let mut cells: Vec<Option<(String, String)>> = vec![None; uniques.len()];
    if let Some(store) = store.as_mut() {
        for (slot, (key, _)) in cells.iter_mut().zip(&uniques) {
            let loaded = store
                .load_latest_for(&store_key(&ns, key), config_hash(cfg, key))
                .ok()
                .flatten();
            let fell_back = loaded.as_ref().is_some_and(|l| !l.skipped.is_empty());
            *slot = loaded.and_then(|l| decode_payload::<R>(&l.payload).map(|(d, r)| (r, d)));
            count("dse_cache_hits_total", &ns, u64::from(slot.is_some()));
            count("dse_cache_misses_total", &ns, u64::from(slot.is_none()));
            count("dse_cache_fallbacks_total", &ns, u64::from(fell_back));
        }
    } else {
        count("dse_cache_misses_total", &ns, uniques.len() as u64);
    }

    // Compute pass: misses, plus every hit under VerifyPolicy::All. The
    // bounded window is the batch's backpressure: one wave of results in
    // flight at a time, published before the next wave starts.
    let verify_hits = store.is_some() && cfg.verify == VerifyPolicy::All;
    let to_compute: Vec<usize> = (0..uniques.len())
        .filter(|&u| cells[u].is_none() || verify_hits)
        .collect();
    for wave in to_compute.chunks(cfg.window.max(1)) {
        let outs = zfgan_pool::parallel_map(wave.len(), |j| {
            compute_cell(&eval, &items[uniques[wave[j]].1])
        })
        .expect("dse worker panicked");
        for (&u, (result_json, det)) in wave.iter().zip(outs) {
            let key = uniques[u].0;
            let payload = encode_payload(&det, &result_json);
            let verified = match cells[u].as_ref() {
                // A hit being verified: byte-compare the full payload.
                Some((hit_json, hit_det)) => {
                    if encode_payload(hit_det, hit_json) == payload {
                        count("dse_verified_total", &ns, 1);
                        true
                    } else {
                        count("dse_verify_failures_total", &ns, 1);
                        false
                    }
                }
                None => false,
            };
            if !verified {
                if let Some(store) = store.as_mut() {
                    if let Err(err) = store.publish(
                        &store_key(&ns, key),
                        config_hash(cfg, key),
                        payload.as_bytes(),
                    ) {
                        eprintln!("warning: dse publish failed for {key}: {err}");
                    } else {
                        count("dse_published_total", &ns, 1);
                    }
                }
                cells[u] = Some((result_json, det));
            }
        }
    }

    // Canonical merge: results per input item, reconstructed uniformly
    // from the cell's canonical JSON (hits and fresh cells alike).
    let by_key: BTreeMap<&str, usize> = uniques
        .iter()
        .enumerate()
        .map(|(u, (k, _))| (*k, u))
        .collect();
    let parsed: Vec<serde_json::Value> = cells
        .iter()
        .map(|c| {
            let (json, _) = c.as_ref().expect("every unique cell resolved");
            serde_json::from_str(json).expect("canonical cell JSON parses")
        })
        .collect();
    let results: Vec<R> = keys
        .iter()
        .map(|k| {
            let u = by_key[k.as_str()];
            R::from_value(&parsed[u]).expect("canonical cell JSON reconstructs the result")
        })
        .collect();
    let cells: Vec<CellRecord> = uniques
        .iter()
        .zip(cells)
        .map(|((key, _), cell)| {
            let (result_json, det) = cell.expect("every unique cell resolved");
            CellRecord {
                key: (*key).to_string(),
                result_json,
                det,
            }
        })
        .collect();
    Batch {
        results,
        unique: cells.len(),
        duplicates: items.len() - cells.len(),
        cells,
    }
}

/// True when `key` belongs to shard `index` of `count` — the key-space
/// partition the cross-process work-unit protocol uses. Keys hash-route
/// (FNV-1a), so every shard gets a similar share regardless of batch
/// order, and the union over all shards is exactly the batch.
pub fn key_in_shard(key: &str, index: usize, count: usize) -> bool {
    count <= 1 || (fnv64(key.as_bytes()) % count as u64) as usize == index
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Out {
        n: u64,
        half: f64,
    }

    fn eval(i: &u64) -> Out {
        Out {
            n: i * 3,
            half: *i as f64 / 2.0,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("zfgan-dse-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn cacheless_batch_dedupes_and_preserves_input_order() {
        let items = [4u64, 7, 4, 1, 7, 4];
        let calls = AtomicUsize::new(0);
        let batch = run_batch(
            &DseConfig::new("t-dedup"),
            &items,
            |i| format!("cell-{i}"),
            |i| {
                calls.fetch_add(1, Ordering::Relaxed);
                eval(i)
            },
        );
        assert_eq!(calls.load(Ordering::Relaxed), 3, "one eval per unique cell");
        assert_eq!(batch.unique, 3);
        assert_eq!(batch.duplicates, 3);
        let expect: Vec<Out> = items.iter().map(eval).collect();
        assert_eq!(batch.results, expect);
        // Canonical order is sorted by key, independent of input order.
        let keys: Vec<&str> = batch.cells.iter().map(|c| c.key.as_str()).collect();
        assert_eq!(keys, ["cell-1", "cell-4", "cell-7"]);
    }

    #[test]
    fn warm_batch_hits_and_returns_identical_cells() {
        let dir = temp_dir("warm");
        let mut cfg = DseConfig::new("t-warm");
        cfg.cache_dir = Some(dir.clone());
        let items: Vec<u64> = (0..5).collect();
        let cold = run_batch(&cfg, &items, |i| format!("c{i}"), eval);
        let calls = AtomicUsize::new(0);
        let warm = run_batch(
            &cfg,
            &items,
            |i| format!("c{i}"),
            |i| {
                calls.fetch_add(1, Ordering::Relaxed);
                eval(i)
            },
        );
        assert_eq!(calls.load(Ordering::Relaxed), 0, "warm run must not eval");
        assert_eq!(cold.results, warm.results);
        for (a, b) in cold.cells.iter().zip(&warm.cells) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.result_json, b.result_json);
            assert_eq!(a.det, b.det);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_all_recomputes_hits_and_counts_agreement() {
        let dir = temp_dir("verify");
        let mut cfg = DseConfig::new("t-verify");
        cfg.cache_dir = Some(dir.clone());
        let items: Vec<u64> = (0..3).collect();
        run_batch(&cfg, &items, |i| format!("v{i}"), eval);
        cfg.verify = VerifyPolicy::All;
        let calls = AtomicUsize::new(0);
        let reg = Arc::new(zfgan_telemetry::Registry::new());
        let batch = {
            let _guard = zfgan_telemetry::scope(Arc::clone(&reg));
            run_batch(
                &cfg,
                &items,
                |i| format!("v{i}"),
                |i| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    eval(i)
                },
            )
        };
        assert_eq!(calls.load(Ordering::Relaxed), 3, "verify recomputes hits");
        assert_eq!(batch.results.len(), 3);
        assert_eq!(
            zfgan_telemetry::export::counter_total(&reg, "dse_verified_total"),
            3
        );
        assert_eq!(
            zfgan_telemetry::export::counter_total(&reg, "dse_verify_failures_total"),
            0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_salt_cells_are_recomputed_not_served() {
        let dir = temp_dir("salt");
        let mut cfg = DseConfig::new("t-salt");
        cfg.cache_dir = Some(dir.clone());
        cfg.salt = 1;
        let items = [9u64];
        run_batch(&cfg, &items, |i| format!("s{i}"), eval);
        // Same cells under a new code-version salt: must recompute.
        cfg.salt = 2;
        let calls = AtomicUsize::new(0);
        let batch = run_batch(
            &cfg,
            &items,
            |i| format!("s{i}"),
            |i| {
                calls.fetch_add(1, Ordering::Relaxed);
                eval(i)
            },
        );
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(batch.results, vec![eval(&9)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_routing_partitions_the_key_space() {
        let keys: Vec<String> = (0..100).map(|i| format!("k{i}")).collect();
        for count in [1usize, 2, 3, 7] {
            let total: usize = (0..count)
                .map(|idx| keys.iter().filter(|k| key_in_shard(k, idx, count)).count())
                .sum();
            assert_eq!(total, keys.len(), "shards must partition exactly");
        }
        assert!(keys.iter().all(|k| key_in_shard(k, 0, 1)));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_escape("plain"), "\"plain\"");
    }
}
