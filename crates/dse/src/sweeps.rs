//! The paper's five figure sweeps (figs. 15–19) as engine clients.
//!
//! Each sweep module owns its point list, canonical cell key, evaluator
//! and per-cell objective vector. [`drive`] turns a sweep into a
//! [`SweepRun`]: the input-order results the figure renderers consume,
//! plus the canonical JSONL stream — one line per unique cell in
//! sorted-key order, a `pareto_add` line whenever a cell joins the
//! incrementally maintained frontier, and the final frontier summary.
//!
//! The stream carries no hit/miss or timing information, so cold, warm
//! and corrupted-then-recomputed runs are byte-identical; that is the
//! invariant the CI gate byte-diffs.

use serde::{Deserialize, Serialize};
use zfgan_accel::{AccelConfig, Design, GanAccelerator, SyncPolicy};
use zfgan_dataflow::{ArchKind, Dataflow, PhaseTuned};
use zfgan_platforms::Platform;
use zfgan_sim::{ConvKind, ConvShape, EnergyModel, PhaseStats};
use zfgan_workloads::{GanSpec, PhaseSeq};

use crate::pareto::{Objectives, ParetoFrontier};
use crate::{json_escape, key_in_shard, run_batch, DseConfig};

/// The sweeps [`run_sweep`] knows, in figure order.
pub const SWEEP_NAMES: [&str; 5] = ["fig15", "fig16", "fig17", "fig18", "fig19"];

/// One driven sweep: input-order results plus the canonical stream.
#[derive(Debug)]
pub struct SweepRun<C> {
    /// One cell result per sweep point, in point order.
    pub results: Vec<C>,
    /// Canonical JSONL: per-cell lines (sorted by key), `pareto_add`
    /// admission lines, then the final frontier summary line.
    pub stream: String,
    /// Unique cells served.
    pub unique: usize,
    /// Input points folded away by dedup.
    pub duplicates: usize,
    /// Size of the final Pareto frontier.
    pub frontier_len: usize,
}

/// A type-erased [`SweepRun`] for callers that only consume the stream
/// (the `zfgan dse` CLI).
#[derive(Debug)]
pub struct SweepStream {
    /// Canonical JSONL stream (see [`SweepRun::stream`]).
    pub stream: String,
    /// Unique cells served.
    pub unique: usize,
    /// Input points folded away by dedup.
    pub duplicates: usize,
    /// Size of the final Pareto frontier.
    pub frontier_len: usize,
}

/// Runs one named sweep end to end and returns its canonical stream.
///
/// The sweep name becomes the cache namespace, so `cfg.namespace` is
/// ignored; every other knob (cache dir, salt, window, verify policy)
/// applies as given.
///
/// # Errors
///
/// Returns a message naming the valid sweeps when `name` is unknown.
pub fn run_sweep(name: &str, cfg: &DseConfig) -> Result<SweepStream, String> {
    fn erase<C>(run: SweepRun<C>) -> SweepStream {
        SweepStream {
            stream: run.stream,
            unique: run.unique,
            duplicates: run.duplicates,
            frontier_len: run.frontier_len,
        }
    }
    match name {
        "fig15" => Ok(erase(fig15::run(cfg))),
        "fig16" => Ok(erase(fig16::run(cfg))),
        "fig17" => Ok(erase(fig17::run(cfg))),
        "fig18" => Ok(erase(fig18::run(cfg))),
        "fig19" => Ok(erase(fig19::run(cfg))),
        other => Err(format!(
            "unknown sweep '{other}' (expected one of: {})",
            SWEEP_NAMES.join(", ")
        )),
    }
}

/// Computes and publishes one shard of a named sweep — the work-unit
/// protocol a child process runs. Returns the number of cells routed to
/// this shard.
///
/// # Errors
///
/// Returns a message naming the valid sweeps when `name` is unknown.
pub fn run_sweep_shard(
    name: &str,
    cfg: &DseConfig,
    index: usize,
    count: usize,
) -> Result<usize, String> {
    match name {
        "fig15" => Ok(fig15::shard(cfg, index, count)),
        "fig16" => Ok(fig16::shard(cfg, index, count)),
        "fig17" => Ok(fig17::shard(cfg, index, count)),
        "fig18" => Ok(fig18::shard(cfg, index, count)),
        "fig19" => Ok(fig19::shard(cfg, index, count)),
        other => Err(format!(
            "unknown sweep '{other}' (expected one of: {})",
            SWEEP_NAMES.join(", ")
        )),
    }
}

/// A copy of `cfg` with the namespace forced to the sweep's own name, so
/// two sweeps sharing one cache directory never read each other's cells.
fn named(cfg: &DseConfig, namespace: &str) -> DseConfig {
    let mut out = cfg.clone();
    out.namespace = namespace.to_string();
    out
}

/// Serves the batch and folds the cells into the canonical stream plus
/// the incremental Pareto frontier.
fn drive<P, C, K, F, O>(cfg: &DseConfig, points: &[P], key_of: K, eval: F, obj: O) -> SweepRun<C>
where
    P: Sync,
    C: Send + Serialize + Deserialize,
    K: Fn(&P) -> String,
    F: Fn(&P) -> C + Sync,
    O: Fn(&C) -> Objectives,
{
    let batch = run_batch(cfg, points, key_of, eval);
    let mut frontier = ParetoFrontier::new();
    let mut stream = String::new();
    for cell in &batch.cells {
        // Objectives derive from the reconstructed cell, so a cached cell
        // streams exactly what the cold computation streamed.
        let v: serde_json::Value =
            serde_json::from_str(&cell.result_json).expect("canonical cell JSON parses");
        let c = C::from_value(&v).expect("canonical cell JSON reconstructs the cell");
        let o = obj(&c);
        stream.push_str("{\"cell\":");
        stream.push_str(&json_escape(&cell.key));
        stream.push_str(",\"objectives\":");
        stream.push_str(&o.to_json());
        stream.push_str(",\"result\":");
        stream.push_str(&cell.result_json);
        stream.push_str("}\n");
        if let Some(evicted) = frontier.insert(&cell.key, o) {
            let ev: Vec<String> = evicted.iter().map(|k| json_escape(k)).collect();
            stream.push_str("{\"pareto_add\":");
            stream.push_str(&json_escape(&cell.key));
            stream.push_str(",\"evicted\":[");
            stream.push_str(&ev.join(","));
            stream.push_str("]}\n");
        }
    }
    stream.push_str(&frontier.to_json());
    stream.push('\n');
    SweepRun {
        results: batch.results,
        stream,
        unique: batch.unique,
        duplicates: batch.duplicates,
        frontier_len: frontier.len(),
    }
}

/// Computes and publishes the cells of one shard: filters the point list
/// by key routing, then runs the filtered batch against the shared cache.
fn shard_batch<P, C, K, F>(
    cfg: &DseConfig,
    points: Vec<P>,
    key_of: K,
    eval: F,
    index: usize,
    count: usize,
) -> usize
where
    P: Sync,
    C: Send + Serialize + Deserialize,
    K: Fn(&P) -> String,
    F: Fn(&P) -> C + Sync,
{
    let mine: Vec<P> = points
        .into_iter()
        .filter(|p| key_in_shard(&key_of(p), index, count))
        .collect();
    let n = mine.len();
    let _ = run_batch(cfg, &mine, key_of, eval);
    n
}

/// The four computing-phase groups of figs. 15/16 with their PE budgets
/// (ST phases: 1200 PEs, W phases: 480 PEs).
const PHASE_GROUPS: [(&str, ConvKind, usize); 4] = [
    ("D (S-CONV)", ConvKind::S, 1200),
    ("G (T-CONV)", ConvKind::T, 1200),
    ("Dw (W-CONV)", ConvKind::WGradS, 480),
    ("Gw (W-CONV)", ConvKind::WGradT, 480),
];

/// Peak on-chip working set over a phase set: weights + real inputs +
/// outputs of the widest phase, two bytes per 16-bit element. This is the
/// buffer-capacity axis of the Pareto frontier.
fn working_set_bytes(phases: &[ConvShape]) -> u64 {
    phases
        .iter()
        .map(|p| (p.weight_count() + p.real_input_count() + p.output_count()) * 2)
        .max()
        .unwrap_or(0)
}

/// The tuned stats whose cycles are minimal across the five
/// architectures for one phase set — the configuration the cell's
/// objectives describe.
fn best_arch_stats(phases: &[ConvShape], budget: usize) -> PhaseStats {
    let mut best: Option<PhaseStats> = None;
    for arch in ArchKind::ALL {
        let stats = PhaseTuned::tune(arch, budget, phases).schedule_all(phases);
        let better = match best {
            Some(b) => stats.cycles < b.cycles,
            None => true,
        };
        if better {
            best = Some(stats);
        }
    }
    best.expect("at least one architecture")
}

/// Energy of one update on a design, mirroring `Design::evaluate`'s exact
/// tuning (including the Eq. 8 combo budget split). Energy is linear in
/// the event counts, so per-array breakdowns sum exactly.
fn design_energy_pj(design: &Design, spec: &GanSpec, seq: PhaseSeq, total_pes: usize) -> f64 {
    let model = EnergyModel::default();
    let st_phases = spec.st_phases(seq);
    let w_phases = spec.w_phases(seq);
    let (st_stats, w_stats) = match design {
        Design::Unique(arch) => {
            let all: Vec<ConvShape> = st_phases.iter().chain(&w_phases).copied().collect();
            let tuned = PhaseTuned::tune(*arch, total_pes, &all);
            (
                tuned.schedule_all(&st_phases),
                tuned.schedule_all(&w_phases),
            )
        }
        Design::Combo { st, w } => {
            let st_budget =
                ((total_pes as f64) * AccelConfig::ST_TO_W_RATIO / 3.5).round() as usize;
            let w_budget = total_pes - st_budget;
            (
                PhaseTuned::tune(*st, st_budget, &st_phases).schedule_all(&st_phases),
                PhaseTuned::tune(*w, w_budget, &w_phases).schedule_all(&w_phases),
            )
        }
    };
    model.phase_energy(&st_stats).total_pj() + model.phase_energy(&w_stats).total_pj()
}

/// Fig. 15 — per-architecture throughput on the four computing phases.
pub mod fig15 {
    use super::*;

    /// Cache namespace and CLI name of this sweep.
    pub const NAME: &str = "fig15";

    type Point = (GanSpec, &'static str, ConvKind, usize);

    /// One figure row: an architecture's throughput on one (GAN, phase
    /// group). Field order is the `results/fig15.json` byte layout.
    #[derive(Debug, Serialize, Deserialize)]
    pub struct Row {
        /// Workload name.
        pub gan: String,
        /// Phase-group label.
        pub phase: &'static str,
        /// Architecture name.
        pub arch: &'static str,
        /// Cycles of the tuned schedule.
        pub cycles: u64,
        /// Speedup over improved NLR at the same budget.
        pub speedup_vs_nlr: f64,
        /// PE utilization (paper Eq. 5).
        pub utilization: f64,
    }

    /// One cell: every architecture on one (GAN, phase group), plus the
    /// best configuration's objective vector.
    #[derive(Debug, Serialize, Deserialize)]
    pub struct Cell {
        /// Per-architecture rows, in `ArchKind::ALL` order.
        pub rows: Vec<Row>,
        /// Cycles of the fastest architecture.
        pub cycles: u64,
        /// Energy of that configuration, picojoules.
        pub energy_pj: f64,
        /// Peak working-set buffer capacity, bytes.
        pub buffer_bytes: u64,
    }

    fn points() -> Vec<Point> {
        let mut points = Vec::new();
        for spec in GanSpec::all_paper_gans() {
            for (label, kind, budget) in PHASE_GROUPS {
                points.push((spec.clone(), label, kind, budget));
            }
        }
        points
    }

    fn key(p: &Point) -> String {
        let (spec, label, _, budget) = p;
        format!("{}|{label}|{budget}", spec.name())
    }

    fn eval(p: &Point) -> Cell {
        let (spec, label, kind, budget) = p;
        let phases: Vec<ConvShape> = spec.phase_set(*kind);
        let nlr_cycles = PhaseTuned::tune(ArchKind::Nlr, *budget, &phases)
            .schedule_all(&phases)
            .cycles;
        let rows = ArchKind::ALL
            .into_iter()
            .map(|arch| {
                let stats = PhaseTuned::tune(arch, *budget, &phases).schedule_all(&phases);
                Row {
                    gan: spec.name().to_string(),
                    phase: label,
                    arch: arch.name(),
                    cycles: stats.cycles,
                    speedup_vs_nlr: nlr_cycles as f64 / stats.cycles as f64,
                    utilization: stats.utilization(),
                }
            })
            .collect();
        let best = best_arch_stats(&phases, *budget);
        Cell {
            rows,
            cycles: best.cycles,
            energy_pj: EnergyModel::default().phase_energy(&best).total_pj(),
            buffer_bytes: working_set_bytes(&phases),
        }
    }

    fn obj(c: &Cell) -> Objectives {
        Objectives {
            cycles: c.cycles,
            energy_pj: c.energy_pj,
            buffer_bytes: c.buffer_bytes,
        }
    }

    /// Runs the sweep through the engine.
    pub fn run(cfg: &DseConfig) -> SweepRun<Cell> {
        drive(&named(cfg, NAME), &points(), key, eval, obj)
    }

    /// The figure's rows, flattened in point order.
    pub fn rows(cfg: &DseConfig) -> Vec<Row> {
        run(cfg).results.into_iter().flat_map(|c| c.rows).collect()
    }

    /// Computes and publishes this shard's cells (work-unit protocol).
    pub fn shard(cfg: &DseConfig, index: usize, count: usize) -> usize {
        shard_batch::<_, Cell, _, _>(&named(cfg, NAME), points(), key, eval, index, count)
    }
}

/// Fig. 16 — DCGAN on-chip data-access breakdown.
pub mod fig16 {
    use super::*;

    /// Cache namespace and CLI name of this sweep.
    pub const NAME: &str = "fig16";

    type Point = (&'static str, ConvKind, usize);

    /// One figure row: an architecture's buffer-access breakdown on one
    /// phase group. Field order is the `results/fig16.json` byte layout.
    #[derive(Debug, Serialize, Deserialize)]
    pub struct Row {
        /// Phase-group label.
        pub phase: &'static str,
        /// Architecture name.
        pub arch: &'static str,
        /// Kernel-weight buffer reads.
        pub weight_reads: u64,
        /// Input-neuron buffer reads.
        pub input_reads: u64,
        /// Output reads plus writes.
        pub output_rw: u64,
        /// All on-chip accesses.
        pub total: u64,
    }

    /// One cell: every architecture on one DCGAN phase group.
    #[derive(Debug, Serialize, Deserialize)]
    pub struct Cell {
        /// Per-architecture rows, in `ArchKind::ALL` order.
        pub rows: Vec<Row>,
        /// Cycles of the fastest architecture.
        pub cycles: u64,
        /// Energy of that configuration, picojoules.
        pub energy_pj: f64,
        /// Peak working-set buffer capacity, bytes.
        pub buffer_bytes: u64,
    }

    fn points() -> Vec<Point> {
        PHASE_GROUPS.to_vec()
    }

    fn key(p: &Point) -> String {
        let (label, _, budget) = p;
        format!("{label}|{budget}")
    }

    fn eval(p: &Point) -> Cell {
        let (label, kind, budget) = p;
        let spec = GanSpec::dcgan();
        let phases = spec.phase_set(*kind);
        let rows = ArchKind::ALL
            .into_iter()
            .map(|arch| {
                let s = PhaseTuned::tune(arch, *budget, &phases).schedule_all(&phases);
                Row {
                    phase: label,
                    arch: arch.name(),
                    weight_reads: s.access.weight_reads,
                    input_reads: s.access.input_reads,
                    output_rw: s.access.output_reads + s.access.output_writes,
                    total: s.access.total(),
                }
            })
            .collect();
        let best = best_arch_stats(&phases, *budget);
        Cell {
            rows,
            cycles: best.cycles,
            energy_pj: EnergyModel::default().phase_energy(&best).total_pj(),
            buffer_bytes: working_set_bytes(&phases),
        }
    }

    fn obj(c: &Cell) -> Objectives {
        Objectives {
            cycles: c.cycles,
            energy_pj: c.energy_pj,
            buffer_bytes: c.buffer_bytes,
        }
    }

    /// Runs the sweep through the engine.
    pub fn run(cfg: &DseConfig) -> SweepRun<Cell> {
        drive(&named(cfg, NAME), &points(), key, eval, obj)
    }

    /// The figure's rows, flattened in point order.
    pub fn rows(cfg: &DseConfig) -> Vec<Row> {
        run(cfg).results.into_iter().flat_map(|c| c.rows).collect()
    }

    /// Computes and publishes this shard's cells (work-unit protocol).
    pub fn shard(cfg: &DseConfig, index: usize, count: usize) -> usize {
        shard_batch::<_, Cell, _, _>(&named(cfg, NAME), points(), key, eval, index, count)
    }
}

/// Fig. 17 — the five designs on D and G updates at 1680 PEs.
pub mod fig17 {
    use super::*;

    /// Cache namespace and CLI name of this sweep.
    pub const NAME: &str = "fig17";

    /// The figure's PE budget.
    pub const PES: usize = 1680;

    type Point = (GanSpec, &'static str, PhaseSeq);

    /// One figure row: a (design, policy) on one (GAN, update). Field
    /// order is the `results/fig17.json` byte layout.
    #[derive(Debug, Serialize, Deserialize)]
    pub struct Row {
        /// Workload name.
        pub gan: String,
        /// Update pass label (`D` or `G`).
        pub update: &'static str,
        /// Design name.
        pub design: String,
        /// Synchronization policy label.
        pub policy: &'static str,
        /// Total cycles per sample for this update.
        pub cycles: u64,
        /// Speedup over unique OST under synchronization.
        pub speedup_vs_ost_sync: f64,
    }

    /// One cell: every (design, policy) on one (GAN, update), plus the
    /// winning design's objective vector.
    #[derive(Debug, Serialize, Deserialize)]
    pub struct Cell {
        /// Rows in `Design::paper_designs()` × (sync, deferred) order.
        pub rows: Vec<Row>,
        /// Cycles of the fastest (design, policy).
        pub cycles: u64,
        /// Energy of that design's update, picojoules.
        pub energy_pj: f64,
        /// Deferred-update buffer capacity of the workload, bytes.
        pub buffer_bytes: u64,
    }

    fn points() -> Vec<Point> {
        let mut points = Vec::new();
        for spec in GanSpec::all_paper_gans() {
            for (update, seq) in [("D", PhaseSeq::DisUpdate), ("G", PhaseSeq::GenUpdate)] {
                points.push((spec.clone(), update, seq));
            }
        }
        points
    }

    fn key(p: &Point) -> String {
        let (spec, update, _) = p;
        format!("{}|{update}|{PES}", spec.name())
    }

    fn eval(p: &Point) -> Cell {
        let (spec, update, seq) = p;
        let baseline = Design::paper_designs()[0]
            .evaluate(spec, *seq, SyncPolicy::Synchronized, PES)
            .total_cycles;
        let mut rows = Vec::new();
        let mut best: Option<(u64, Design)> = None;
        for design in Design::paper_designs() {
            for (pname, policy) in [
                ("sync", SyncPolicy::Synchronized),
                ("deferred", SyncPolicy::Deferred),
            ] {
                let r = design.evaluate(spec, *seq, policy, PES);
                let better = match best {
                    Some((c, _)) => r.total_cycles < c,
                    None => true,
                };
                if better {
                    best = Some((r.total_cycles, design));
                }
                rows.push(Row {
                    gan: spec.name().to_string(),
                    update,
                    design: design.name(),
                    policy: pname,
                    cycles: r.total_cycles,
                    speedup_vs_ost_sync: baseline as f64 / r.total_cycles as f64,
                });
            }
        }
        let (cycles, winner) = best.expect("at least one design");
        Cell {
            rows,
            cycles,
            energy_pj: design_energy_pj(&winner, spec, *seq, PES),
            buffer_bytes: spec.deferred_buffer_bytes(2),
        }
    }

    fn obj(c: &Cell) -> Objectives {
        Objectives {
            cycles: c.cycles,
            energy_pj: c.energy_pj,
            buffer_bytes: c.buffer_bytes,
        }
    }

    /// Runs the sweep through the engine.
    pub fn run(cfg: &DseConfig) -> SweepRun<Cell> {
        drive(&named(cfg, NAME), &points(), key, eval, obj)
    }

    /// The figure's rows, flattened in point order.
    pub fn rows(cfg: &DseConfig) -> Vec<Row> {
        run(cfg).results.into_iter().flat_map(|c| c.rows).collect()
    }

    /// Computes and publishes this shard's cells (work-unit protocol).
    pub fn shard(cfg: &DseConfig, index: usize, count: usize) -> usize {
        shard_batch::<_, Cell, _, _>(&named(cfg, NAME), points(), key, eval, index, count)
    }
}

/// Fig. 18 — the top three designs across the 512 → 2048 PE sweep.
pub mod fig18 {
    use super::*;

    /// Cache namespace and CLI name of this sweep.
    pub const NAME: &str = "fig18";

    /// The swept PE counts.
    pub const PE_SWEEP: [usize; 4] = [512, 1024, 1680, 2048];

    type Point = (Design, usize);

    /// One figure row: a design's full-iteration cycles at one PE count.
    /// Field order is the `results/fig18.json` byte layout.
    #[derive(Debug, Serialize, Deserialize)]
    pub struct Row {
        /// Design name.
        pub design: String,
        /// PE budget.
        pub pes: usize,
        /// Cycles per training sample (D + G update, deferred).
        pub cycles_per_sample: u64,
        /// Throughput relative to NLR-OST at 512 PEs.
        pub perf_vs_512_nlr_ost: f64,
    }

    /// One cell: a single (design, PE count) evaluation.
    #[derive(Debug, Serialize, Deserialize)]
    pub struct Cell {
        /// The figure row.
        pub row: Row,
        /// Cycles per training sample.
        pub cycles: u64,
        /// Energy of one training iteration, picojoules.
        pub energy_pj: f64,
        /// Deferred-update buffer capacity of DCGAN, bytes.
        pub buffer_bytes: u64,
    }

    /// The compared designs, in figure order.
    pub fn designs() -> [Design; 3] {
        [
            Design::Combo {
                st: ArchKind::Nlr,
                w: ArchKind::Ost,
            },
            Design::Unique(ArchKind::Zfost),
            Design::Combo {
                st: ArchKind::Zfost,
                w: ArchKind::Zfwst,
            },
        ]
    }

    fn points() -> Vec<Point> {
        let mut points = Vec::new();
        for design in designs() {
            for pes in PE_SWEEP {
                points.push((design, pes));
            }
        }
        points
    }

    fn key(p: &Point) -> String {
        let (design, pes) = p;
        format!("{}|{pes}", design.name())
    }

    fn eval(p: &Point) -> Cell {
        let (design, pes) = p;
        let spec = GanSpec::dcgan();
        // The baseline is part of the cell so cells are self-contained
        // (tuning is memoized process-wide; this re-derivation is cheap).
        let baseline = designs()[0].iteration_cycles(&spec, SyncPolicy::Deferred, PE_SWEEP[0]);
        let cycles = design.iteration_cycles(&spec, SyncPolicy::Deferred, *pes);
        let energy_pj = design_energy_pj(design, &spec, PhaseSeq::DisUpdate, *pes)
            + design_energy_pj(design, &spec, PhaseSeq::GenUpdate, *pes);
        Cell {
            row: Row {
                design: design.name(),
                pes: *pes,
                cycles_per_sample: cycles,
                perf_vs_512_nlr_ost: baseline as f64 / cycles as f64,
            },
            cycles,
            energy_pj,
            buffer_bytes: spec.deferred_buffer_bytes(2),
        }
    }

    fn obj(c: &Cell) -> Objectives {
        Objectives {
            cycles: c.cycles,
            energy_pj: c.energy_pj,
            buffer_bytes: c.buffer_bytes,
        }
    }

    /// Runs the sweep through the engine.
    pub fn run(cfg: &DseConfig) -> SweepRun<Cell> {
        drive(&named(cfg, NAME), &points(), key, eval, obj)
    }

    /// The figure's rows, in point order.
    pub fn rows(cfg: &DseConfig) -> Vec<Row> {
        run(cfg).results.into_iter().map(|c| c.row).collect()
    }

    /// Computes and publishes this shard's cells (work-unit protocol).
    pub fn shard(cfg: &DseConfig, index: usize, count: usize) -> usize {
        shard_batch::<_, Cell, _, _>(&named(cfg, NAME), points(), key, eval, index, count)
    }
}

/// Fig. 19 — accelerator vs CPU/GPU platforms on full training iterations.
pub mod fig19 {
    use super::*;

    /// Cache namespace and CLI name of this sweep.
    pub const NAME: &str = "fig19";

    type Point = GanSpec;

    /// One figure row: a platform's throughput and efficiency on one GAN.
    /// Field order is the `results/fig19.json` byte layout.
    #[derive(Debug, Serialize, Deserialize)]
    pub struct Row {
        /// Workload name.
        pub gan: String,
        /// Platform name.
        pub platform: String,
        /// Throughput in GOPS.
        pub gops: f64,
        /// Power in watts.
        pub watts: f64,
        /// Energy efficiency in GOPS per watt.
        pub gops_per_watt: f64,
    }

    /// One cell: our accelerator plus every analytical platform on one
    /// GAN, with the accelerator's objective vector.
    #[derive(Debug, Serialize, Deserialize)]
    pub struct Cell {
        /// FPGA row first, then the paper platforms in their order.
        pub rows: Vec<Row>,
        /// Accelerator cycles per training sample.
        pub cycles: u64,
        /// Accelerator energy per operation, picojoules.
        pub energy_pj: f64,
        /// Deferred-update buffer capacity of the workload, bytes.
        pub buffer_bytes: u64,
    }

    fn points() -> Vec<Point> {
        GanSpec::all_paper_gans()
    }

    fn key(p: &Point) -> String {
        p.name().to_string()
    }

    fn eval(spec: &Point) -> Cell {
        let phases = spec.iteration_phases();
        let mut rows = Vec::new();
        let accel = GanAccelerator::new(AccelConfig::vcu118(), spec.clone());
        let r = accel.iteration_report(64);
        rows.push(Row {
            gan: spec.name().to_string(),
            platform: "FPGA (ours)".to_string(),
            gops: r.gops,
            watts: r.watts,
            gops_per_watt: r.gops_per_watt,
        });
        for p in Platform::all_paper_platforms() {
            let pr = p.run(&phases);
            rows.push(Row {
                gan: spec.name().to_string(),
                platform: p.name().to_string(),
                gops: pr.gops,
                watts: p.power_watts(),
                gops_per_watt: pr.gops_per_watt,
            });
        }
        Cell {
            rows,
            cycles: accel.iteration_cycles_per_sample(),
            // W / GOPS = J per 10⁹ ops → 10³ pJ per op.
            energy_pj: r.watts / r.gops * 1000.0,
            buffer_bytes: spec.deferred_buffer_bytes(2),
        }
    }

    fn obj(c: &Cell) -> Objectives {
        Objectives {
            cycles: c.cycles,
            energy_pj: c.energy_pj,
            buffer_bytes: c.buffer_bytes,
        }
    }

    /// Runs the sweep through the engine.
    pub fn run(cfg: &DseConfig) -> SweepRun<Cell> {
        drive(&named(cfg, NAME), &points(), key, eval, obj)
    }

    /// The figure's rows, flattened in point order.
    pub fn rows(cfg: &DseConfig) -> Vec<Row> {
        run(cfg).results.into_iter().flat_map(|c| c.rows).collect()
    }

    /// Computes and publishes this shard's cells (work-unit protocol).
    pub fn shard(cfg: &DseConfig, index: usize, count: usize) -> usize {
        shard_batch::<_, Cell, _, _>(&named(cfg, NAME), points(), key, eval, index, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_sweep_rejects_unknown_names() {
        let err = run_sweep("fig99", &DseConfig::new("x")).unwrap_err();
        assert!(err.contains("fig15"), "{err}");
        let err = run_sweep_shard("nope", &DseConfig::new("x"), 0, 2).unwrap_err();
        assert!(err.contains("fig19"), "{err}");
    }

    #[test]
    fn fig16_stream_is_canonical_and_repeatable() {
        let cfg = DseConfig::new("ignored");
        let a = fig16::run(&cfg);
        let b = fig16::run(&cfg);
        assert_eq!(a.stream, b.stream);
        assert_eq!(a.unique, 4);
        assert_eq!(a.duplicates, 0);
        assert!(a.frontier_len >= 1);
        let last = a.stream.lines().last().unwrap();
        assert!(last.starts_with("{\"pareto\":["), "{last}");
        // Per-cell lines come in sorted-key order.
        let cells: Vec<&str> = a
            .stream
            .lines()
            .filter(|l| l.starts_with("{\"cell\":"))
            .collect();
        assert_eq!(cells.len(), 4);
        let mut sorted = cells.clone();
        sorted.sort();
        assert_eq!(cells, sorted);
    }

    #[test]
    fn fig18_rows_match_direct_evaluation() {
        let rows = fig18::rows(&DseConfig::new("ignored"));
        assert_eq!(rows.len(), 12);
        let spec = GanSpec::dcgan();
        let direct = fig18::designs()[1].iteration_cycles(&spec, SyncPolicy::Deferred, 1024);
        let row = rows
            .iter()
            .find(|r| r.design == "ZFOST" && r.pes == 1024)
            .expect("present");
        assert_eq!(row.cycles_per_sample, direct);
    }
}
