//! Offline stand-in for the slice of `proptest` this workspace uses:
//! the `proptest! { fn case(x in strategy, …) { … } }` macro,
//! range/tuple/`any` strategies, `prop_map`/`prop_filter_map`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted for an offline test
//! harness: no shrinking (a failing case reports its values and seed
//! instead), and a deterministic per-test RNG (seeded from the test's
//! module path) so failures reproduce across runs.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub use zfgan_rand::rngs::SmallRng as TestRng;
use zfgan_rand::{Rng, RngCore, SeedableRng};

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Run-time configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with a message (what `prop_assert!` produces).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives the cases of one property test (used by the `proptest!`
/// expansion; not part of the public proptest API).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    accepted: u32,
    rejected: u64,
    case_seed: u64,
}

impl TestRunner {
    /// Builds a runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        // Deterministic base seed from the test name (FNV-1a) so each test
        // gets its own reproducible stream.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            config,
            name,
            accepted: 0,
            rejected: 0,
            case_seed: h,
        }
    }

    /// Whether another case should run.
    pub fn more(&self) -> bool {
        self.accepted < self.config.cases
    }

    /// The RNG for the next case (advances the per-case seed).
    pub fn case_rng(&mut self) -> TestRng {
        self.case_seed = self.case_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        TestRng::seed_from_u64(self.case_seed)
    }

    /// Records a strategy rejection (filter miss); panics if the test
    /// rejects far more often than it accepts.
    pub fn reject(&mut self) {
        self.rejected += 1;
        let budget = 100 + self.config.cases as u64 * 100;
        assert!(
            self.rejected <= budget,
            "{}: too many strategy rejections ({} for {} accepted cases)",
            self.name,
            self.rejected,
            self.accepted,
        );
    }

    /// Records the outcome of one executed case.
    ///
    /// # Panics
    ///
    /// Panics (failing the `#[test]`) if the case returned an error.
    pub fn finish_case(&mut self, result: Result<(), TestCaseError>) {
        if let Err(e) = result {
            panic!(
                "{} failed at case {} (seed {:#x}): {}",
                self.name, self.accepted, self.case_seed, e
            );
        }
        self.accepted += 1;
    }
}

/// A source of random values of one type.
///
/// `sample` returns `None` when a filter rejects the draw; the runner
/// retries with a fresh RNG state.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value (or `None` on a filter rejection).
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Maps values through a partial function; `None` rejects the draw.
    /// `_reason` mirrors the upstream diagnostic label.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        _reason: &'static str,
        f: F,
    ) -> FilterMapStrategy<Self, F>
    where
        Self: Sized,
    {
        FilterMapStrategy { inner: self, f }
    }

    /// Keeps only values passing `pred`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _reason: &'static str,
        pred: F,
    ) -> FilterStrategy<Self, F>
    where
        Self: Sized,
    {
        FilterStrategy { inner: self, pred }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug)]
pub struct FilterMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMapStrategy<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct FilterStrategy<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for FilterStrategy<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.pred)(v))
    }
}

/// A strategy producing one fixed value (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

// --- ranges ----------------------------------------------------------------

macro_rules! strategy_for_sampleable_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}
strategy_for_sampleable_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// --- any -------------------------------------------------------------------

/// Types with a full-domain default strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for `T` (upstream's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

// --- tuples ----------------------------------------------------------------

macro_rules! strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.sample(rng)?,)+))
            }
        }
    )*};
}
strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

// --- macros ----------------------------------------------------------------

/// The property-test entry macro: wraps each `fn name(pat in strategy, …)`
/// into a `#[test]` that samples the strategies and runs the body for the
/// configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            while runner.more() {
                let mut rng = runner.case_rng();
                $(
                    let $pat = match $crate::Strategy::sample(&($strat), &mut rng) {
                        ::std::option::Option::Some(v) => v,
                        ::std::option::Option::None => {
                            runner.reject();
                            continue;
                        }
                    };
                )+
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                runner.finish_case(result);
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts inside a `proptest!` body; failure fails just this case with
/// the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Tuple strategies and ranges stay in bounds.
        fn ranges_in_bounds((a, b) in (1usize..=5, -2.0f32..2.0), s in any::<u64>()) {
            prop_assert!((1..=5).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            let _ = s;
        }

        fn filter_map_applies(v in (1usize..=3, 2usize..=5).prop_filter_map(
            "product must be even",
            |(x, y)| if x * y % 2 == 0 { Some(x * y) } else { None },
        )) {
            prop_assert!(v % 2 == 0, "odd product {v} slipped through");
        }

        fn map_composes(x in (0u32..10).prop_map(|v| v * 3)) {
            prop_assert_eq!(x % 3, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        proptest_inner();
    }

    fn proptest_inner() {
        let mut runner = crate::TestRunner::new(crate::ProptestConfig::with_cases(4), "inner");
        while runner.more() {
            let _rng = runner.case_rng();
            runner.finish_case(Err(crate::TestCaseError::fail("forced")));
        }
    }
}
