//! Offline stand-in for the slice of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and the [`Value`]
//! tree (re-exported from the compat `serde`, which fixes its data model
//! to JSON shapes).
//!
//! Finite `f32`/`f64` values round-trip bit-exactly: floats are printed
//! with Rust's shortest round-trip `Display` and re-parsed with
//! `str::parse`, which is correctly rounded.

pub use zfgan_serde::{Error, Map, Number, Value};

use zfgan_serde::{Deserialize, Serialize};

/// Serialises `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the shim's data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serialises `value` as human-readable JSON (two-space indent, the
/// upstream default).
///
/// # Errors
///
/// Never fails for the shim's data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

/// Parses JSON text into any [`Deserialize`] type (including [`Value`]).
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.parse_value()?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a following \uXXXX.
                                if self.peek() != Some(b'\\') {
                                    return Err(Error::custom("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(Error::custom("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Copy the whole contiguous run of unescaped bytes at
                    // once, validating UTF-8 over the run only (quote and
                    // backslash are ASCII, so they can never appear inside
                    // a multi-byte character's continuation bytes).
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while let Some(&b) = self.bytes.get(end) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        let num = if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                Number::from_u64(u)
            } else if let Ok(i) = text.parse::<i64>() {
                Number::from_i64(i)
            } else {
                // Integer literal beyond 64 bits: fall back to f64, like
                // serde_json's arbitrary-precision-off behaviour.
                Number::from_f64(
                    text.parse::<f64>()
                        .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
                )
            }
        } else {
            Number::from_f64(
                text.parse::<f64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        };
        Ok(Value::Number(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v: Value = from_str(r#"{"a": [1, -2.5, "x\n", null, true], "b": {}}"#).unwrap();
        let obj = v.as_object().unwrap();
        let arr = obj.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 5);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_str(), Some("x\n"));
        assert!(obj.get("b").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        for bits in [0x3f80_0001u32, 0x0000_0001, 0x7f7f_ffff, 0xbf00_0000] {
            let x = f32::from_bits(bits);
            let json = to_string(&x).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), bits, "{json}");
        }
        let y = 0.1f64 + 0.2;
        let back: f64 = from_str(&to_string(&y).unwrap()).unwrap();
        assert_eq!(back.to_bits(), y.to_bits());
    }

    #[test]
    fn pretty_printing_matches_shape() {
        let v: Value = from_str(r#"{"k": [1, 2]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }
}
