//! A human-readable "datasheet" for one accelerator configuration — the
//! one-page summary a hardware engineer would pin above their desk.

use std::fmt::Write as _;

use zfgan_workloads::PhaseSeq;

use crate::accelerator::GanAccelerator;
use crate::buffers::VCU9P_BRAM_BYTES;
use crate::resources::{DeviceCapacity, ResourceModel};

/// Renders the full configuration / buffers / resources / performance
/// summary of an accelerator instance as plain text.
///
/// # Example
///
/// ```
/// use zfgan_accel::{datasheet, AccelConfig, GanAccelerator};
/// use zfgan_workloads::GanSpec;
///
/// let accel = GanAccelerator::new(AccelConfig::vcu118(), GanSpec::cgan());
/// let sheet = datasheet(&accel, 64);
/// assert!(sheet.contains("ZFOST"));
/// assert!(sheet.contains("GOPS"));
/// ```
pub fn datasheet(accel: &GanAccelerator, batch: usize) -> String {
    let cfg = accel.config();
    let spec = accel.spec();
    let plan = accel.buffer_plan();
    let resources = ResourceModel::estimate(cfg, spec);
    let device = DeviceCapacity::xcvu9p();
    let report = accel.iteration_report(batch);
    let (st_d, w_d) = accel.update_stats(PhaseSeq::DisUpdate);
    let (st_g, w_g) = accel.update_stats(PhaseSeq::GenUpdate);

    let mut out = String::new();
    let _ = writeln!(out, "=== zfgan accelerator datasheet: {} ===", spec.name());
    let _ = writeln!(
        out,
        "Arrays        ZFOST {g}x{g}x{st} ({st_pes} PEs) + ZFWST {g}x{g}x{w} ({w_pes} PEs)",
        g = cfg.grid(),
        st = cfg.st_pof(),
        w = cfg.w_pof(),
        st_pes = cfg.st_pes(),
        w_pes = cfg.w_pes(),
    );
    let _ = writeln!(
        out,
        "Platform      {:.0} MHz, {:.0} Gbit/s DRAM, {}-bit datapath",
        cfg.frequency_mhz(),
        cfg.bandwidth_gbps(),
        cfg.data_bits()
    );
    let _ = writeln!(out, "--- On-chip buffers (Section V-B) ---");
    for (name, bytes) in plan.named_sizes() {
        let _ = writeln!(out, "  {name:<10} {bytes:>9} B");
    }
    let _ = writeln!(
        out,
        "  total      {:>9} B of {} B BRAM ({:.1}%)",
        plan.total_bytes(),
        VCU9P_BRAM_BYTES,
        100.0 * plan.total_bytes() as f64 / VCU9P_BRAM_BYTES as f64
    );
    let _ = writeln!(out, "--- Resources (Table III model) ---");
    let _ = writeln!(
        out,
        "  LUT {} / {}   FF {} / {}   BRAM {} / {}   DSP {} / {}",
        resources.luts,
        device.luts,
        resources.flip_flops,
        device.flip_flops,
        resources.bram_blocks,
        device.bram_blocks,
        resources.dsps,
        device.dsps
    );
    let _ = writeln!(out, "--- Per-sample schedule (deferred) ---");
    let _ = writeln!(
        out,
        "  D-update   ST {:>9} cyc (util {:.2})   W {:>9} cyc (util {:.2})",
        st_d.cycles,
        st_d.utilization(),
        w_d.cycles,
        w_d.utilization()
    );
    let _ = writeln!(
        out,
        "  G-update   ST {:>9} cyc (util {:.2})   W {:>9} cyc (util {:.2})",
        st_g.cycles,
        st_g.utilization(),
        w_g.cycles,
        w_g.utilization()
    );
    let bound = if accel.is_bandwidth_bound() {
        "bandwidth"
    } else {
        "compute"
    };
    let _ = writeln!(
        out,
        "  roofline   compute {} cyc vs DRAM {} cyc  ->  {bound}-bound",
        accel.compute_cycles_per_sample(),
        accel.dram_cycles_per_sample()
    );
    let _ = writeln!(out, "--- Throughput & energy (batch {batch}) ---");
    let _ = writeln!(
        out,
        "  {:.0} GOPS   {:.1} W   {:.1} GOPS/W   {:.2} ms/iteration",
        report.gops,
        report.watts,
        report.gops_per_watt,
        report.seconds_per_iteration * 1e3
    );
    let _ = writeln!(
        out,
        "  inference  G: {} cyc ({:.0} images/s)   D: {} cyc",
        accel.generator_inference_cycles(),
        accel.inference_rate_hz(),
        accel.discriminator_inference_cycles()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelConfig;
    use zfgan_workloads::GanSpec;

    #[test]
    fn datasheet_contains_every_section() {
        let accel = GanAccelerator::new(AccelConfig::vcu118(), GanSpec::dcgan());
        let sheet = datasheet(&accel, 16);
        for needle in [
            "datasheet: DCGAN",
            "buffers",
            "Resources",
            "schedule",
            "roofline",
            "GOPS",
            "inference",
        ] {
            assert!(sheet.contains(needle), "missing {needle:?} in:\n{sheet}");
        }
        assert!(sheet.contains("compute-bound"));
    }

    #[test]
    fn datasheet_reflects_configuration() {
        let accel = GanAccelerator::new(AccelConfig::with_total_pes(512), GanSpec::mnist_gan());
        let sheet = datasheet(&accel, 4);
        assert!(sheet.contains("MNIST-GAN"));
        assert!(sheet.contains(&format!("{}", accel.config().st_pof())));
    }
}
