//! Pipeline occupancy analysis — paper Figs. 9 and 10.
//!
//! The naive mapping instantiates three per-phase architectures (T-ARCH,
//! S-ARCH, W-ARCH) and pipelines sample loops across them; because the
//! phase mix is uneven (a Discriminator update has three T passes, two S
//! passes and two W passes), the less-loaded stages idle — the bubbles of
//! Fig. 9. The paper's design merges T-ARCH and S-ARCH into one
//! time-multiplexed **ST-ARCH** and slows W-ARCH to 2/5 speed (Eq. 8),
//! after which both stages are fully busy (Fig. 10).

use serde::{Deserialize, Serialize};
use zfgan_sim::ConvShape;
use zfgan_workloads::{GanSpec, PhaseSeq};

/// Occupancy of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneReport {
    /// Stage name ("T-ARCH", "S-ARCH", "W-ARCH", "ST-ARCH").
    pub name: String,
    /// Work units the stage performs per sample loop.
    pub busy: u64,
    /// The pipeline's steady-state period per sample.
    pub period: u64,
    /// `busy / period`.
    pub utilization: f64,
}

/// Occupancy report for one pipeline organisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Per-stage occupancy.
    pub lanes: Vec<LaneReport>,
    /// Steady-state cycles (work units) per sample.
    pub period: u64,
}

impl PipelineReport {
    /// The fraction of stage-cycles lost to bubbles, over all lanes.
    pub fn bubble_fraction(&self) -> f64 {
        let total: u64 = self.lanes.iter().map(|l| l.period).sum();
        let busy: u64 = self.lanes.iter().map(|l| l.busy).sum();
        1.0 - busy as f64 / total as f64
    }

    fn from_lanes(named: Vec<(String, u64)>) -> Self {
        let period = named.iter().map(|(_, b)| *b).max().unwrap_or(0).max(1);
        let lanes = named
            .into_iter()
            .map(|(name, busy)| LaneReport {
                name,
                busy,
                period,
                utilization: busy as f64 / period as f64,
            })
            .collect();
        Self { lanes, period }
    }
}

/// Fig. 9: the naive three-architecture pipeline, with stage work computed
/// by `dur` (pass a constant closure for the paper's unit-slot
/// idealization, or a dataflow's `schedule(..).cycles` for real durations).
pub fn naive_pipeline(
    spec: &GanSpec,
    seq: PhaseSeq,
    mut dur: impl FnMut(&ConvShape) -> u64,
) -> PipelineReport {
    let st = spec.st_phases(seq);
    let w = spec.w_phases(seq);
    let layers = spec.layers().len();
    // The ST sequence interleaves T and S passes; recover the split by
    // phase kind.
    let mut t_busy = 0u64;
    let mut s_busy = 0u64;
    for p in &st {
        match p.kind() {
            zfgan_sim::ConvKind::T => t_busy += dur(p),
            zfgan_sim::ConvKind::S => s_busy += dur(p),
            _ => unreachable!("st_phases contains only S/T"),
        }
    }
    let w_busy: u64 = w.iter().map(&mut dur).sum();
    let _ = layers;
    PipelineReport::from_lanes(vec![
        ("T-ARCH".to_string(), t_busy),
        ("S-ARCH".to_string(), s_busy),
        ("W-ARCH".to_string(), w_busy),
    ])
}

/// Fig. 10: the time-multiplexed organisation — one ST-ARCH handling all
/// `S`/`T` passes, one W-ARCH decoupled through the Data/Error buffers.
/// `w_slowdown` is the W-ARCH speed ratio relative to ST-ARCH (Eq. 8 uses
/// 2.5: W-ARCH has 1/2.5 of ST-ARCH's channels).
///
/// # Panics
///
/// Panics if `w_slowdown` is not positive.
pub fn time_multiplexed_pipeline(
    spec: &GanSpec,
    seq: PhaseSeq,
    mut dur: impl FnMut(&ConvShape) -> u64,
    w_slowdown: f64,
) -> PipelineReport {
    assert!(w_slowdown > 0.0, "slowdown ratio must be positive");
    let st_busy: u64 = spec.st_phases(seq).iter().map(&mut dur).sum();
    let w_work: u64 = spec.w_phases(seq).iter().map(&mut dur).sum();
    let w_busy = (w_work as f64 * w_slowdown).round() as u64;
    PipelineReport::from_lanes(vec![
        ("ST-ARCH".to_string(), st_busy),
        ("W-ARCH".to_string(), w_busy),
    ])
}

/// A labeled busy interval on one lane of the per-phase timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSegment {
    /// Lane name ("ST-ARCH" / "W-ARCH").
    pub lane: &'static str,
    /// Human-readable phase label, e.g. "Ḡ L2 (T)".
    pub label: String,
    /// Start cycle (inclusive).
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
}

/// Builds the labeled per-phase schedule of **one sample's** update on the
/// time-multiplexed accelerator: every ST pass runs back to back on
/// ST-ARCH while W-ARCH drains the same sample's `W-CONV` work as soon as
/// each layer's operands exist (after the corresponding backward pass) —
/// the fine-grained picture behind paper Fig. 10.
pub fn labeled_update_timeline(
    spec: &GanSpec,
    seq: PhaseSeq,
    mut st_dur: impl FnMut(&ConvShape) -> u64,
    mut w_dur: impl FnMut(&ConvShape) -> u64,
) -> Vec<PhaseSegment> {
    let n = spec.layers().len();
    let pass_names: &[&str] = match seq {
        PhaseSeq::DisUpdate => &[
            "Ḡ fwd",
            "D̄ fwd(fake)",
            "D̄ fwd(real)",
            "D̄ bwd(fake)",
            "D̄ bwd(real)",
        ],
        PhaseSeq::GenUpdate => &["Ḡ fwd", "D̄ fwd", "D̄ bwd", "Ḡ bwd"],
    };
    let st_phases = spec.st_phases(seq);
    let mut segments = Vec::new();
    let mut t = 0u64;
    // The backward passes (which produce the W operands) are the last
    // `w_passes` ST passes; record their completion times per pass.
    let mut pass_end = Vec::new();
    for (p, name) in pass_names.iter().enumerate() {
        for (l, phase) in st_phases[p * n..(p + 1) * n].iter().enumerate() {
            let d = st_dur(phase);
            segments.push(PhaseSegment {
                lane: "ST-ARCH",
                label: format!("{name} L{}", l + 1),
                start: t,
                end: t + d,
            });
            t += d;
        }
        pass_end.push(t);
    }
    // W-CONV work: one W pass per backward pass, eligible once that
    // backward pass has fully retired its errors into the Error buffer.
    let w_phases = spec.w_phases(seq);
    let w_passes = w_phases.len() / n;
    let mut w_free = 0u64;
    for wp in 0..w_passes {
        let eligible = pass_end[pass_names.len() - w_passes + wp];
        for (l, phase) in w_phases[wp * n..(wp + 1) * n].iter().enumerate() {
            let d = w_dur(phase);
            let start = w_free.max(eligible);
            segments.push(PhaseSegment {
                lane: "W-ARCH",
                label: format!("W pass {} L{}", wp + 1, l + 1),
                start,
                end: start + d,
            });
            w_free = start + d;
        }
    }
    segments
}

/// Renders labeled segments lane by lane in start order.
pub fn render_segments(segments: &[PhaseSegment]) -> String {
    let mut out = String::new();
    for lane in ["ST-ARCH", "W-ARCH"] {
        out.push_str(&format!(
            "{lane}:
"
        ));
        let mut lane_segs: Vec<&PhaseSegment> =
            segments.iter().filter(|s| s.lane == lane).collect();
        lane_segs.sort_by_key(|s| s.start);
        for s in lane_segs {
            out.push_str(&format!(
                "  [{:>9} .. {:>9}) {}
",
                s.start, s.end, s.label
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIT: fn(&ConvShape) -> u64 = |_| 1;

    #[test]
    fn naive_dis_update_w_arch_utilization_is_two_thirds() {
        // Paper Section IV-B: "the utilization of W-ARCH is low (66.7% when
        // updating Discriminator…)".
        let spec = GanSpec::cgan();
        let r = naive_pipeline(&spec, PhaseSeq::DisUpdate, UNIT);
        let w = r.lanes.iter().find(|l| l.name == "W-ARCH").unwrap();
        assert!(
            (w.utilization - 2.0 / 3.0).abs() < 1e-9,
            "util {}",
            w.utilization
        );
        // S-ARCH idles too: 2 passes against T-ARCH's 3.
        let s = r.lanes.iter().find(|l| l.name == "S-ARCH").unwrap();
        assert!((s.utilization - 2.0 / 3.0).abs() < 1e-9);
        assert!(r.bubble_fraction() > 0.2);
    }

    #[test]
    fn naive_gen_update_w_arch_utilization_is_half() {
        // "…and 50% when updating Generator".
        let spec = GanSpec::cgan();
        let r = naive_pipeline(&spec, PhaseSeq::GenUpdate, UNIT);
        let w = r.lanes.iter().find(|l| l.name == "W-ARCH").unwrap();
        assert!((w.utilization - 0.5).abs() < 1e-9, "util {}", w.utilization);
    }

    #[test]
    fn time_multiplexing_removes_the_bubbles() {
        // Fig. 10: with ST merged and W slowed 2.5×, both lanes are busy.
        let spec = GanSpec::cgan();
        let r = time_multiplexed_pipeline(&spec, PhaseSeq::DisUpdate, UNIT, 2.5);
        for lane in &r.lanes {
            assert!(
                lane.utilization > 0.99,
                "{}: {}",
                lane.name,
                lane.utilization
            );
        }
        assert!(r.bubble_fraction() < 0.01);
    }

    #[test]
    fn gen_update_w_arch_has_slack_at_eq8_ratio() {
        // Eq. 8 sizes W-ARCH for the Discriminator's 2/5 ratio; Generator
        // updates need only 1/4, so W-ARCH has headroom there.
        let spec = GanSpec::cgan();
        let r = time_multiplexed_pipeline(&spec, PhaseSeq::GenUpdate, UNIT, 2.5);
        let w = r.lanes.iter().find(|l| l.name == "W-ARCH").unwrap();
        assert!(
            (0.5..1.0).contains(&w.utilization),
            "util {}",
            w.utilization
        );
    }

    #[test]
    fn labeled_timeline_orders_and_gates_correctly() {
        let spec = GanSpec::cgan();
        let segs = labeled_update_timeline(&spec, PhaseSeq::DisUpdate, |_| 10, |_| 12);
        // 5 ST passes × 4 layers + 2 W passes × 4 layers.
        assert_eq!(segs.len(), 5 * 4 + 2 * 4);
        // ST is gap-free.
        let st: Vec<&PhaseSegment> = segs.iter().filter(|s| s.lane == "ST-ARCH").collect();
        for pair in st.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        // Every W segment starts only after its producing backward pass:
        // W pass 1 needs "D̄ bwd(fake)" (pass 4 of 5) complete at cycle 160.
        let w1 = segs
            .iter()
            .find(|s| s.label == "W pass 1 L1")
            .expect("present");
        assert!(w1.start >= 4 * 4 * 10);
        // Rendering mentions both lanes and a label.
        let text = render_segments(&segs);
        assert!(text.contains("ST-ARCH:") && text.contains("W pass 2 L4"));
    }

    #[test]
    fn labeled_timeline_handles_gen_update() {
        let spec = GanSpec::mnist_gan();
        let segs = labeled_update_timeline(&spec, PhaseSeq::GenUpdate, |_| 5, |_| 7);
        assert_eq!(segs.len(), 4 * 2 + 2);
        assert!(segs.iter().any(|s| s.label.starts_with("Ḡ bwd")));
    }

    #[test]
    fn real_durations_are_supported() {
        use zfgan_dataflow::{Dataflow, Zfost};
        let spec = GanSpec::mnist_gan();
        let zf = Zfost::new(4, 4, 75);
        let r = naive_pipeline(&spec, PhaseSeq::DisUpdate, |p| zf.schedule(p).cycles);
        assert!(r.period > 0);
        assert_eq!(r.lanes.len(), 3);
    }
}
