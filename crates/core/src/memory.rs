//! The Section III-A memory analysis: synchronized vs deferred
//! intermediate-data buffering.

use serde::{Deserialize, Serialize};
use zfgan_workloads::GanSpec;

use crate::buffers::VCU9P_BRAM_BYTES;

/// Memory requirements of a workload under both synchronization policies.
///
/// # Example
///
/// ```
/// use zfgan_accel::MemoryAnalysis;
/// use zfgan_workloads::GanSpec;
///
/// let m = MemoryAnalysis::analyse(&GanSpec::dcgan(), 256, 2);
/// // The paper's ~126 MB figure:
/// assert!((120e6..132e6).contains(&(m.synchronized_bytes as f64)));
/// assert_eq!(m.reduction_factor(), 512.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryAnalysis {
    /// Batch size the analysis assumed.
    pub batch: usize,
    /// Intermediate bytes one sample's forward pass produces.
    pub per_sample_bytes: u64,
    /// Buffer demand of the original algorithm (`2 × batch` samples).
    pub synchronized_bytes: u64,
    /// Buffer demand after deferred synchronization (one sample).
    pub deferred_bytes: u64,
    /// Whether each policy's demand fits the XCVU9P's block RAM.
    pub synchronized_fits_on_chip: bool,
    /// Whether the deferred demand fits on chip.
    pub deferred_fits_on_chip: bool,
}

impl MemoryAnalysis {
    /// Analyses `spec` at the given batch size and element width.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `bytes_per_elem` is zero.
    pub fn analyse(spec: &GanSpec, batch: usize, bytes_per_elem: usize) -> Self {
        assert!(
            batch > 0 && bytes_per_elem > 0,
            "batch and element width must be non-zero"
        );
        let per_sample = spec.dis_intermediate_bytes_per_sample(bytes_per_elem);
        let synchronized = spec.sync_buffer_bytes(batch, bytes_per_elem);
        let deferred = spec.deferred_buffer_bytes(bytes_per_elem);
        Self {
            batch,
            per_sample_bytes: per_sample,
            synchronized_bytes: synchronized,
            deferred_bytes: deferred,
            synchronized_fits_on_chip: synchronized <= VCU9P_BRAM_BYTES,
            deferred_fits_on_chip: deferred <= VCU9P_BRAM_BYTES,
        }
    }

    /// How many times smaller the deferred demand is (`2 × batch`).
    pub fn reduction_factor(&self) -> f64 {
        self.synchronized_bytes as f64 / self.deferred_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcgan_at_256_matches_the_paper() {
        let m = MemoryAnalysis::analyse(&GanSpec::dcgan(), 256, 2);
        let mb = m.synchronized_bytes as f64 / 1e6;
        assert!((120.0..132.0).contains(&mb), "{mb} MB");
        assert!(!m.synchronized_fits_on_chip);
        assert!(m.deferred_fits_on_chip);
        assert_eq!(m.reduction_factor(), 512.0);
    }

    #[test]
    fn reduction_scales_with_batch() {
        for batch in [16usize, 64, 256] {
            let m = MemoryAnalysis::analyse(&GanSpec::cgan(), batch, 2);
            assert_eq!(m.reduction_factor(), 2.0 * batch as f64);
        }
    }

    #[test]
    fn small_gan_fits_either_way() {
        // MNIST-GAN intermediates are small enough that even a modest batch
        // fits on chip — deferral matters for the big networks.
        let m = MemoryAnalysis::analyse(&GanSpec::mnist_gan(), 4, 2);
        assert!(m.synchronized_fits_on_chip);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_batch_rejected() {
        let _ = MemoryAnalysis::analyse(&GanSpec::dcgan(), 0, 2);
    }
}
