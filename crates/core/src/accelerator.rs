//! The top-level accelerator model (paper Fig. 14): a ZFOST ST-ARCH and a
//! ZFWST W-ARCH coupled through on-chip buffers, running deferred-
//! synchronization GAN training.

use serde::{Deserialize, Serialize};
use zfgan_dataflow::{Dataflow, Zfost, Zfwst};
use zfgan_sim::{DramTraffic, EnergyBreakdown, EnergyModel, PhaseStats};
use zfgan_workloads::{GanSpec, PhaseSeq};

use crate::buffers::BufferPlan;
use crate::config::AccelConfig;

/// Board-level static power of the FPGA platform in watts (clock trees,
/// DDR4 PHYs, regulators) — added on top of the event-based energy model
/// when converting to wall power, as a WattsUp meter would see it.
pub const BOARD_STATIC_WATTS: f64 = 15.0;

/// Performance/energy summary of running GAN training on the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccelReport {
    /// Cycles per training iteration (one sample through both updates).
    pub cycles_per_sample: u64,
    /// Seconds per training iteration at the configured clock for the whole
    /// batch.
    pub seconds_per_iteration: f64,
    /// Effectual operations per sample iteration (2 per MAC).
    pub ops_per_sample: u64,
    /// Sustained throughput in GOPS — the Fig. 19 left axis.
    pub gops: f64,
    /// Event-based energy of one batch iteration.
    pub energy: EnergyBreakdown,
    /// Wall power estimate in watts (event energy / time + board static).
    pub watts: f64,
    /// Energy efficiency in GOPS/W — the Fig. 19 right axis.
    pub gops_per_watt: f64,
}

/// The paper's accelerator: configuration + workload + the two arrays.
///
/// # Example
///
/// ```
/// use zfgan_accel::{AccelConfig, GanAccelerator};
/// use zfgan_workloads::GanSpec;
///
/// let accel = GanAccelerator::new(AccelConfig::vcu118(), GanSpec::cgan());
/// let report = accel.iteration_report(64);
/// assert!(report.gops > 100.0);
/// assert!(report.gops_per_watt > 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct GanAccelerator {
    config: AccelConfig,
    spec: GanSpec,
    st_arch: Zfost,
    w_arch: Zfwst,
    energy_model: EnergyModel,
}

impl GanAccelerator {
    /// Builds the accelerator for one workload.
    pub fn new(config: AccelConfig, spec: GanSpec) -> Self {
        let g = config.grid();
        Self {
            st_arch: Zfost::new(g, g, config.st_pof()),
            w_arch: Zfwst::new(g, g, config.w_pof()),
            energy_model: EnergyModel::default(),
            config,
            spec,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// The workload.
    pub fn spec(&self) -> &GanSpec {
        &self.spec
    }

    /// The ST-ARCH array.
    pub fn st_arch(&self) -> &Zfost {
        &self.st_arch
    }

    /// The W-ARCH array.
    pub fn w_arch(&self) -> &Zfwst {
        &self.w_arch
    }

    /// The buffer plan for this workload.
    pub fn buffer_plan(&self) -> BufferPlan {
        BufferPlan::for_spec(&self.spec, &self.config)
    }

    /// Schedules one update of the given kind on both arrays, returning
    /// `(st_stats, w_stats)` for a single sample's loop.
    pub fn update_stats(&self, seq: PhaseSeq) -> (PhaseStats, PhaseStats) {
        let st = self.st_arch.schedule_all(&self.spec.st_phases(seq));
        let w = self.w_arch.schedule_all(&self.spec.w_phases(seq));
        (st, w)
    }

    /// Cycles per sample for one update under deferred synchronization:
    /// the two decoupled arrays pipeline, so the slower one governs.
    pub fn update_cycles(&self, seq: PhaseSeq) -> u64 {
        let (st, w) = self.update_stats(seq);
        st.cycles.max(w.cycles)
    }

    /// Cycles per sample for a full training iteration (both updates),
    /// compute side only.
    pub fn compute_cycles_per_sample(&self) -> u64 {
        self.update_cycles(PhaseSeq::DisUpdate) + self.update_cycles(PhaseSeq::GenUpdate)
    }

    /// Cycles the DRAM channel needs per sample iteration at full
    /// bandwidth — the other side of the roofline.
    pub fn dram_cycles_per_sample(&self) -> u64 {
        self.config
            .dram()
            .cycles_for_bytes(self.iteration_dram_traffic().total_bytes())
    }

    /// Effective cycles per sample: the slower of compute and DRAM. At the
    /// paper's design point every workload is compute-bound (Eq. 7 chose
    /// the unrolling to make it so), but aggressive PE scaling or a
    /// bandwidth cut can flip it.
    pub fn iteration_cycles_per_sample(&self) -> u64 {
        self.compute_cycles_per_sample()
            .max(self.dram_cycles_per_sample())
    }

    /// Whether the configuration is limited by off-chip bandwidth rather
    /// than PEs.
    pub fn is_bandwidth_bound(&self) -> bool {
        self.dram_cycles_per_sample() > self.compute_cycles_per_sample()
    }

    /// Cycles for one Generator *inference* (one forward pass of the
    /// up-sampling ladder on ST-ARCH) — the paper's IoT deployment story
    /// runs inference continuously and training opportunistically.
    pub fn generator_inference_cycles(&self) -> u64 {
        self.st_arch
            .schedule_all(&self.spec.phase_set(zfgan_sim::ConvKind::T))
            .cycles
    }

    /// Cycles for one Discriminator inference (a recognition forward pass).
    pub fn discriminator_inference_cycles(&self) -> u64 {
        self.st_arch
            .schedule_all(&self.spec.phase_set(zfgan_sim::ConvKind::S))
            .cycles
    }

    /// Generator inferences per second at the configured clock.
    pub fn inference_rate_hz(&self) -> f64 {
        self.config.frequency_mhz() * 1e6 / self.generator_inference_cycles() as f64
    }

    /// Off-chip traffic of one sample's full iteration: layer weights
    /// fetched once per pass that uses them, ∇W partials read+written per
    /// W pass (the Eq. 7 budget), plus the input image.
    pub fn iteration_dram_traffic(&self) -> DramTraffic {
        let b = self.config.bytes_per_elem() as u64;
        let weights_bytes: u64 = self
            .spec
            .layers()
            .iter()
            .map(|l| (l.large_c * l.small_c * l.kernel * l.kernel) as u64 * b)
            .sum();
        // ST passes per iteration: 5 (D update) + 4 (G update); each pass
        // streams each layer's weights through the Weight buffer once.
        let st_passes = 9u64;
        // W passes: 2 + 1; each reads and writes the full ∇W once.
        let w_passes = 3u64;
        let (c, h, w) = self.spec.image_shape();
        let image_bytes = (c * h * w) as u64 * b;
        DramTraffic {
            read_bytes: st_passes * weights_bytes + w_passes * weights_bytes + 2 * image_bytes,
            write_bytes: w_passes * weights_bytes,
        }
    }

    /// Runs one batch iteration and summarises throughput and energy.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn iteration_report(&self, batch: usize) -> AccelReport {
        assert!(batch > 0, "batch must be non-zero");
        let cycles_per_sample = self.iteration_cycles_per_sample();
        let ops_per_sample = self.spec.iteration_ops();
        let seconds = batch as f64 * cycles_per_sample as f64 / (self.config.frequency_mhz() * 1e6);
        let gops = batch as f64 * ops_per_sample as f64 / seconds / 1e9;

        // Merge both arrays' event counts plus DRAM traffic for energy.
        let (st_d, w_d) = self.update_stats(PhaseSeq::DisUpdate);
        let (st_g, w_g) = self.update_stats(PhaseSeq::GenUpdate);
        let dram = self.iteration_dram_traffic();
        let mut energy = EnergyBreakdown::default();
        for s in [st_d, st_g, w_d, w_g] {
            energy = energy.merged(self.energy_model.phase_energy(&s));
        }
        energy = energy.merged(self.energy_model.phase_energy(&PhaseStats {
            dram,
            ..Default::default()
        }));
        // Scale per-sample energy to the batch.
        let scale = batch as f64;
        let energy = EnergyBreakdown {
            compute_pj: energy.compute_pj * scale,
            sram_pj: energy.sram_pj * scale,
            dram_pj: energy.dram_pj * scale,
            static_pj: energy.static_pj * scale,
        };
        let dynamic_watts = energy.total_pj() * 1e-12 / seconds;
        let watts = dynamic_watts + BOARD_STATIC_WATTS;
        AccelReport {
            cycles_per_sample,
            seconds_per_iteration: seconds,
            ops_per_sample,
            gops,
            energy,
            watts,
            gops_per_watt: gops / watts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accel(spec: GanSpec) -> GanAccelerator {
        GanAccelerator::new(AccelConfig::vcu118(), spec)
    }

    #[test]
    fn w_arch_keeps_up_at_eq8_ratio() {
        // Eq. 8 sizes W-ARCH so it does not bottleneck the Discriminator
        // update: W cycles ≈ ST cycles within the ratio's rounding.
        let a = accel(GanSpec::cgan());
        let (st, w) = a.update_stats(PhaseSeq::DisUpdate);
        let ratio = w.cycles as f64 / st.cycles as f64;
        assert!((0.5..=1.3).contains(&ratio), "W/ST cycle ratio {ratio}");
    }

    #[test]
    fn report_is_self_consistent() {
        let a = accel(GanSpec::cgan());
        let r = a.iteration_report(32);
        assert!(r.gops > 0.0 && r.gops.is_finite());
        assert!(r.watts > BOARD_STATIC_WATTS);
        assert!((r.gops_per_watt - r.gops / r.watts).abs() < 1e-9);
        // Sustained throughput cannot exceed 2 ops/PE/cycle.
        let peak = 2.0 * a.config().total_pes() as f64 * a.config().frequency_mhz() / 1e3;
        assert!(r.gops < peak, "{} ≥ peak {peak}", r.gops);
    }

    #[test]
    fn utilization_is_high_on_big_networks() {
        let a = accel(GanSpec::cgan());
        let r = a.iteration_report(1);
        let peak = 2.0 * a.config().total_pes() as f64 * a.config().frequency_mhz() / 1e3;
        assert!(r.gops > 0.4 * peak, "sustained {} of peak {peak}", r.gops);
    }

    #[test]
    fn paper_design_point_is_compute_bound() {
        // Eq. 7 chose W_Pof so the bandwidth keeps up: all three workloads
        // must be compute-bound at the VCU118 point.
        for spec in GanSpec::all_paper_gans() {
            let a = accel(spec.clone());
            assert!(
                !a.is_bandwidth_bound(),
                "{} is bandwidth-bound",
                spec.name()
            );
            assert!(a.dram_cycles_per_sample() > 0);
        }
    }

    #[test]
    fn inference_is_much_cheaper_than_training() {
        let a = accel(GanSpec::cgan());
        let inf = a.generator_inference_cycles();
        let train = a.iteration_cycles_per_sample();
        assert!(train > 5 * inf, "train {train} vs inference {inf}");
        assert!(a.inference_rate_hz() > 100.0);
        assert!(a.discriminator_inference_cycles() > 0);
    }

    #[test]
    fn dram_traffic_is_dominated_by_weights() {
        let a = accel(GanSpec::dcgan());
        let t = a.iteration_dram_traffic();
        assert!(t.read_bytes > t.write_bytes);
        assert!(t.total_bytes() > 1_000_000);
    }

    #[test]
    fn batch_scales_time_not_gops() {
        let a = accel(GanSpec::mnist_gan());
        let r1 = a.iteration_report(1);
        let r64 = a.iteration_report(64);
        assert!((r64.gops - r1.gops).abs() / r1.gops < 1e-9);
        assert!(r64.seconds_per_iteration > 60.0 * r1.seconds_per_iteration);
    }
}
