//! Batch-granularity pipeline simulation: an executable Gantt chart of the
//! two-array accelerator processing a whole mini-batch.
//!
//! The [`Design`](crate::Design) evaluation uses the steady-state shortcut
//! `total ≈ max(ST, W)` per sample; this module *simulates* the pipeline
//! event by event — each sample's W-CONV work may only start once its own
//! ST work produced the data/error operands (that is what the Data/Error
//! buffers decouple) and once the W array finished the previous sample —
//! and verifies that the shortcut is exact up to the one-sample fill/drain
//! ramp. It also renders the Fig. 9/10-style lane segments.

use serde::{Deserialize, Serialize};

/// One busy interval on a pipeline lane, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Which sample's work this is.
    pub sample: usize,
    /// Start cycle (inclusive).
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
}

/// The simulated schedule of one batch on the ST-ARCH + W-ARCH pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchSchedule {
    /// ST-ARCH busy intervals, one per sample.
    pub st: Vec<Segment>,
    /// W-ARCH busy intervals, one per sample.
    pub w: Vec<Segment>,
    /// Total cycles until the last W segment retires.
    pub makespan: u64,
}

impl BatchSchedule {
    /// Simulates `batch` back-to-back sample loops under **deferred
    /// synchronization**: sample `i`'s ST work starts as soon as the ST
    /// array frees up; its W work starts once both its ST work and the W
    /// array's previous job are done.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn deferred(st_cycles: u64, w_cycles: u64, batch: usize) -> Self {
        assert!(batch > 0, "batch must be non-zero");
        let mut st = Vec::with_capacity(batch);
        let mut w = Vec::with_capacity(batch);
        let mut st_free = 0u64;
        let mut w_free = 0u64;
        for sample in 0..batch {
            let st_start = st_free;
            let st_end = st_start + st_cycles;
            st.push(Segment {
                sample,
                start: st_start,
                end: st_end,
            });
            st_free = st_end;
            let w_start = st_end.max(w_free);
            let w_end = w_start + w_cycles;
            w.push(Segment {
                sample,
                start: w_start,
                end: w_end,
            });
            w_free = w_end;
        }
        let makespan = w.last().map(|s| s.end).unwrap_or(0);
        Self { st, w, makespan }
    }

    /// Simulates the **synchronized** algorithm: every sample's ST work
    /// (all forwards, then all backwards) completes before any W work may
    /// start, so the arrays strictly alternate at batch granularity.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn synchronized(st_cycles: u64, w_cycles: u64, batch: usize) -> Self {
        assert!(batch > 0, "batch must be non-zero");
        let mut st = Vec::with_capacity(batch);
        let mut w = Vec::with_capacity(batch);
        for sample in 0..batch {
            let start = sample as u64 * st_cycles;
            st.push(Segment {
                sample,
                start,
                end: start + st_cycles,
            });
        }
        let barrier = batch as u64 * st_cycles;
        for sample in 0..batch {
            let start = barrier + sample as u64 * w_cycles;
            w.push(Segment {
                sample,
                start,
                end: start + w_cycles,
            });
        }
        Self {
            st,
            w,
            makespan: barrier + batch as u64 * w_cycles,
        }
    }

    /// Fraction of the makespan each lane is busy, `(st, w)`.
    pub fn utilizations(&self) -> (f64, f64) {
        let busy = |segs: &[Segment]| segs.iter().map(|s| s.end - s.start).sum::<u64>() as f64;
        (
            busy(&self.st) / self.makespan as f64,
            busy(&self.w) / self.makespan as f64,
        )
    }

    /// Renders a coarse ASCII Gantt chart (one row per lane), `width`
    /// characters wide — handy in examples and bench output.
    pub fn render_ascii(&self, width: usize) -> String {
        let scale = |cycle: u64| -> usize {
            ((cycle as f64 / self.makespan as f64) * width as f64).round() as usize
        };
        let render_lane = |name: &str, segs: &[Segment]| -> String {
            let mut row = vec![b'.'; width];
            for s in segs {
                let (a, b) = (scale(s.start), scale(s.end).max(scale(s.start) + 1));
                for c in row.iter_mut().take(b.min(width)).skip(a) {
                    *c = b'0' + (s.sample % 10) as u8;
                }
            }
            format!("{name:>8} |{}|", String::from_utf8(row).expect("ascii"))
        };
        format!(
            "{}\n{}",
            render_lane("ST-ARCH", &self.st),
            render_lane("W-ARCH", &self.w)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deferred_pipeline_matches_steady_state_model() {
        // makespan = m·max(st, w) + min(st, w) exactly, for either ordering.
        for (st, w) in [(100u64, 40u64), (40, 100), (70, 70)] {
            for m in [1usize, 4, 32] {
                let s = BatchSchedule::deferred(st, w, m);
                assert_eq!(
                    s.makespan,
                    m as u64 * st.max(w) + st.min(w),
                    "st={st} w={w} m={m}"
                );
            }
        }
    }

    #[test]
    fn synchronized_serializes_the_arrays() {
        let s = BatchSchedule::synchronized(100, 40, 8);
        assert_eq!(s.makespan, 8 * 100 + 8 * 40);
        // No W segment overlaps any ST segment.
        let st_end = s.st.iter().map(|x| x.end).max().unwrap();
        assert!(s.w.iter().all(|x| x.start >= st_end));
    }

    #[test]
    fn deferred_w_waits_for_its_own_sample() {
        let s = BatchSchedule::deferred(10, 50, 4);
        for (st, w) in s.st.iter().zip(&s.w) {
            assert!(w.start >= st.end, "sample {}: W before its ST", st.sample);
        }
        // W is the bottleneck here: back-to-back W segments.
        for pair in s.w.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn utilization_approaches_one_on_the_bottleneck_lane() {
        let s = BatchSchedule::deferred(100, 40, 64);
        let (st_util, w_util) = s.utilizations();
        assert!(st_util > 0.99, "st {st_util}");
        assert!((w_util - 0.4).abs() < 0.02, "w {w_util}");
    }

    #[test]
    fn speedup_over_synchronized_matches_fig17_intuition() {
        // With the Eq. 8 ratio (W ≈ 2/5 ST), deferral turns st+w into
        // max(st, w): a 1.4× speedup at batch scale.
        let (st, w) = (1000u64, 400u64);
        let m = 64;
        let sync = BatchSchedule::synchronized(st, w, m).makespan;
        let def = BatchSchedule::deferred(st, w, m).makespan;
        let speedup = sync as f64 / def as f64;
        assert!((1.35..=1.45).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn ascii_gantt_renders_both_lanes() {
        let s = BatchSchedule::deferred(10, 10, 3);
        let art = s.render_ascii(40);
        assert!(art.contains("ST-ARCH"));
        assert!(art.contains("W-ARCH"));
        assert_eq!(art.lines().count(), 2);
    }
}
