//! `zfgan-accel` — the paper's full GAN accelerator (its Fig. 14) and the
//! design-space machinery behind its evaluation.
//!
//! The accelerator couples two PE arrays through on-chip buffers:
//!
//! * **ST-ARCH**, a [`Zfost`](zfgan_dataflow::Zfost) array running the five
//!   `S-CONV`/`T-CONV` passes of a Discriminator update (four for a
//!   Generator update), and
//! * **W-ARCH**, a [`Zfwst`](zfgan_dataflow::Zfwst) array running the
//!   `W-CONV` weight-gradient passes, decoupled through the Data/Error
//!   buffers so it may lag ST-ARCH by design.
//!
//! This crate provides:
//!
//! * [`AccelConfig`] — platform parameters and the Eq. 7/8 unrolling
//!   derivation (`W_Pof = BW/(2·f·bits)`, `ST_Pof = 2.5 × W_Pof`),
//! * [`BufferPlan`] — the In&Out / Data / Error / ∇W / Weight buffer sizing
//!   of Section V-B with an on-chip capacity check,
//! * [`ResourceModel`] — the Table III LUT/FF/BRAM/DSP estimate,
//! * [`Design`] / [`DesignReport`] — the Fig. 17 competitors (unique OST /
//!   ZFOST / ZFWST, combinational NLR-OST and ZFOST-ZFWST) under
//!   synchronized vs deferred training,
//! * [`timeline`] — the Fig. 9 (pipeline with bubbles) vs Fig. 10
//!   (time-multiplexed) occupancy analysis,
//! * [`gantt`] — an event-level batch pipeline simulation that verifies the
//!   steady-state model and renders lane schedules,
//! * [`MemoryAnalysis`] — the Section III-A 2·batch → 1 buffering result,
//! * [`GanAccelerator`] — the top-level model producing per-iteration
//!   cycles, GOPS and energy for Figs. 18–19.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod accelerator;
mod buffers;
mod config;
mod datasheet;
mod design;
pub mod gantt;
mod memory;
mod resources;
pub mod timeline;

pub use accelerator::{AccelReport, GanAccelerator};
pub use buffers::BufferPlan;
pub use config::AccelConfig;
pub use datasheet::datasheet;
pub use design::{Design, DesignReport, SyncPolicy};
pub use memory::MemoryAnalysis;
pub use resources::ResourceModel;
