//! On-chip buffer sizing — paper Section V-B.
//!
//! Fig. 14's buffers and their sizing rules:
//!
//! * **In&Out (×2)** — ping-pong pair next to ZFOST; each must hold the
//!   largest layer output of the workload ("the size of buffers in In&Out
//!   should be equal to the maximum size of outputs among all the layers").
//! * **Data** — the forward intermediates `d^l` of one sample (thanks to
//!   deferred synchronization, *one* sample suffices — this is exactly the
//!   Section III-A result).
//! * **Error** — the backward errors `δ^l` of one sample.
//! * **∇W (×2)** — ping-pong partial-gradient store for ZFWST. Only the
//!   in-flight tile lives on chip (`W_Pof` channels × kernel); completed
//!   partials stream to DRAM — the traffic Eq. 7 budgets for.
//! * **Weight** — the working set of kernel weights for the output maps
//!   currently unrolled on ZFOST (`ST_Pof × N_if × k²`), so each weight is
//!   fetched from DRAM exactly once per pass.

use serde::{Deserialize, Serialize};
use zfgan_sim::{BufferSpec, OnChipBuffer};
use zfgan_workloads::GanSpec;

use crate::config::AccelConfig;

/// Usable on-chip block RAM of the paper's XCVU9P: 75.9 Mbit.
pub const VCU9P_BRAM_BYTES: u64 = 75_900_000 / 8;

/// A complete buffer plan for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferPlan {
    in_out_bytes: u64,
    data_bytes: u64,
    error_bytes: u64,
    grad_bytes: u64,
    weight_bytes: u64,
}

impl BufferPlan {
    /// Sizes every buffer for `spec` under `config`.
    pub fn for_spec(spec: &GanSpec, config: &AccelConfig) -> Self {
        let b = config.bytes_per_elem() as u64;
        // Largest activation on either side of any layer (the Generator
        // mirrors the ladder, so the large side bounds both directions).
        let max_layer_elems = spec
            .layers()
            .iter()
            .map(|l| {
                let large = l.large_c * l.large_hw * l.large_hw;
                let small = l.small_c * l.small_hw() * l.small_hw();
                large.max(small) as u64
            })
            .max()
            .expect("spec has layers");
        let intermediates = spec.dis_intermediate_bytes_per_sample(config.bytes_per_elem());
        // Weight working set: the ST_Pof output maps currently unrolled,
        // against every input map of the worst layer.
        let weight_ws = spec
            .layers()
            .iter()
            .map(|l| (config.st_pof().min(l.small_c) * l.large_c * l.kernel * l.kernel) as u64)
            .max()
            .expect("spec has layers");
        // ∇W in-flight tile: W_Pof channel-pairs × kernel.
        let max_kernel = spec
            .layers()
            .iter()
            .map(|l| (l.kernel * l.kernel) as u64)
            .max()
            .expect("spec has layers");
        Self {
            in_out_bytes: max_layer_elems * b,
            data_bytes: intermediates,
            error_bytes: intermediates,
            grad_bytes: config.w_pof() as u64 * max_kernel * b,
            weight_bytes: weight_ws * b,
        }
    }

    /// Size of **one** In&Out buffer (two are instantiated).
    pub fn in_out_bytes(&self) -> u64 {
        self.in_out_bytes
    }

    /// Size of the Data buffer (one sample's forward intermediates).
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// Size of the Error buffer (one sample's backward errors).
    pub fn error_bytes(&self) -> u64 {
        self.error_bytes
    }

    /// Size of **one** ∇W buffer (two are instantiated, ping-pong).
    pub fn grad_bytes(&self) -> u64 {
        self.grad_bytes
    }

    /// Size of the Weight buffer.
    pub fn weight_bytes(&self) -> u64 {
        self.weight_bytes
    }

    /// Total on-chip bytes including the doubled ping-pong buffers.
    pub fn total_bytes(&self) -> u64 {
        2 * self.in_out_bytes
            + self.data_bytes
            + self.error_bytes
            + 2 * self.grad_bytes
            + self.weight_bytes
    }

    /// Whether the plan fits in `capacity_bytes` of block RAM.
    pub fn fits(&self, capacity_bytes: u64) -> bool {
        self.total_bytes() <= capacity_bytes
    }

    /// The named buffer sizes, in Fig. 14 order.
    pub fn named_sizes(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("In&Out A", self.in_out_bytes),
            ("In&Out B", self.in_out_bytes),
            ("Data", self.data_bytes),
            ("Error", self.error_bytes),
            ("∇W A", self.grad_bytes),
            ("∇W B", self.grad_bytes),
            ("Weight", self.weight_bytes),
        ]
    }

    /// Simulates the In&Out ping-pong of one Discriminator forward pass
    /// against the planned capacities: layer `l` reads its input from one
    /// buffer and writes its output to the other, which then flips to
    /// become the next layer's input ("After completing one layer's
    /// processing, the input and output buffers are switched").
    ///
    /// Returns the two buffers with their occupancy high-water marks and
    /// access counters filled in.
    ///
    /// # Errors
    ///
    /// Returns a [`zfgan_sim::BufferError`] if any layer's activation
    /// overflows its buffer — i.e. the plan was sized wrong.
    pub fn simulate_forward(
        &self,
        spec: &GanSpec,
        config: &AccelConfig,
    ) -> Result<(OnChipBuffer, OnChipBuffer), zfgan_sim::BufferError> {
        let b = config.bytes_per_elem() as u64;
        let mut ping = OnChipBuffer::new(BufferSpec::new("In&Out A", self.in_out_bytes));
        let mut pong = OnChipBuffer::new(BufferSpec::new("In&Out B", self.in_out_bytes));
        // Image lands in the ping buffer.
        let (c, h, w) = spec.image_shape();
        let mut live_bytes = (c * h * w) as u64 * b;
        ping.alloc(live_bytes)?;
        ping.record_writes(live_bytes / b);
        let mut reading_ping = true;
        for l in spec.layers() {
            let out_bytes = (l.small_c * l.small_hw() * l.small_hw()) as u64 * b;
            let (src, dst) = if reading_ping {
                (&mut ping, &mut pong)
            } else {
                (&mut pong, &mut ping)
            };
            dst.alloc(out_bytes)?;
            src.record_reads(live_bytes / b);
            dst.record_writes(out_bytes / b);
            src.free(live_bytes);
            live_bytes = out_bytes;
            reading_ping = !reading_ping;
        }
        Ok((ping, pong))
    }

    /// Instantiates live, counter-carrying buffer models from the plan.
    pub fn instantiate(&self) -> Vec<OnChipBuffer> {
        self.named_sizes()
            .into_iter()
            .map(|(name, bytes)| OnChipBuffer::new(BufferSpec::new(name, bytes)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_workloads_fit_on_chip_after_deferral() {
        let cfg = AccelConfig::vcu118();
        for spec in GanSpec::all_paper_gans() {
            let plan = BufferPlan::for_spec(&spec, &cfg);
            assert!(
                plan.fits(VCU9P_BRAM_BYTES),
                "{}: {} bytes exceed {}",
                spec.name(),
                plan.total_bytes(),
                VCU9P_BRAM_BYTES
            );
        }
    }

    #[test]
    fn synchronized_dcgan_would_not_fit() {
        // The point of Section III-A: without deferral the Data buffer
        // alone would need 2·batch samples ≈ 126 MB ≫ 9.5 MB of BRAM.
        let spec = GanSpec::dcgan();
        assert!(spec.sync_buffer_bytes(256, 2) > VCU9P_BRAM_BYTES);
        // …while the deferred Data buffer is a rounding error of capacity.
        let plan = BufferPlan::for_spec(&spec, &AccelConfig::vcu118());
        assert!(plan.data_bytes() * 10 < VCU9P_BRAM_BYTES);
    }

    #[test]
    fn in_out_holds_largest_activation() {
        let cfg = AccelConfig::vcu118();
        let plan = BufferPlan::for_spec(&GanSpec::cgan(), &cfg);
        // cGAN's largest side is 64·32·32 = 65536 elements (layer 2 input),
        // vs the 3·64·64 image = 12288.
        assert_eq!(plan.in_out_bytes(), 65536 * 2);
    }

    #[test]
    fn weight_working_set_covers_unrolled_channels() {
        let cfg = AccelConfig::vcu118();
        let plan = BufferPlan::for_spec(&GanSpec::cgan(), &cfg);
        // Worst layer: ST_Pof = 75 of layer 4's 512 outputs × 256 inputs ×
        // 4·4 weights.
        assert_eq!(plan.weight_bytes(), 75 * 256 * 16 * 2);
        // ∇W tile: 30 pairs × 16 weights × 2 bytes, doubled by ping-pong.
        assert_eq!(plan.grad_bytes(), 30 * 16 * 2);
    }

    #[test]
    fn forward_ping_pong_fits_the_plan_for_every_workload() {
        let cfg = AccelConfig::vcu118();
        for spec in GanSpec::all_paper_gans() {
            let plan = BufferPlan::for_spec(&spec, &cfg);
            let (ping, pong) = plan
                .simulate_forward(&spec, &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
            assert!(ping.peak_bytes() <= plan.in_out_bytes());
            assert!(pong.peak_bytes() <= plan.in_out_bytes());
            // Every layer read its input and wrote its output exactly once.
            let total_writes = ping.writes() + pong.writes();
            let expected: u64 = (spec.image_shape().0 * spec.image_shape().1 * spec.image_shape().2)
                as u64
                + spec
                    .layers()
                    .iter()
                    .map(|l| (l.small_c * l.small_hw() * l.small_hw()) as u64)
                    .sum::<u64>();
            assert_eq!(total_writes, expected, "{}", spec.name());
        }
    }

    #[test]
    fn undersized_buffers_overflow_loudly() {
        let cfg = AccelConfig::vcu118();
        let spec = GanSpec::cgan();
        let mut plan = BufferPlan::for_spec(&spec, &cfg);
        plan.in_out_bytes = 16; // sabotage
        assert!(plan.simulate_forward(&spec, &cfg).is_err());
    }

    #[test]
    fn instantiate_names_all_buffers() {
        let cfg = AccelConfig::vcu118();
        let plan = BufferPlan::for_spec(&GanSpec::mnist_gan(), &cfg);
        let bufs = plan.instantiate();
        assert_eq!(bufs.len(), 7);
        assert!(bufs.iter().any(|b| b.spec().name == "Weight"));
        let total: u64 = bufs.iter().map(|b| b.spec().capacity_bytes).sum();
        assert_eq!(total, plan.total_bytes());
    }
}
