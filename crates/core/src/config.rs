//! Accelerator configuration and the Eq. 7/8 unrolling derivation.

use serde::{Deserialize, Serialize};
use zfgan_sim::DramModel;

/// Platform parameters of the accelerator (paper Section V).
///
/// # Example
///
/// ```
/// use zfgan_accel::AccelConfig;
///
/// let cfg = AccelConfig::vcu118();
/// // Paper Section V-C: "W_Pof is 30 and ST_Pof is 75".
/// assert_eq!(cfg.w_pof(), 30);
/// assert_eq!(cfg.st_pof(), 75);
/// assert_eq!(cfg.total_pes(), 1680);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccelConfig {
    frequency_mhz: f64,
    bandwidth_gbps: f64,
    data_bits: u32,
    /// PE grid edge of both arrays (paper Section V-A: 4×4, the minimum
    /// output feature map / kernel of DCGAN).
    grid: usize,
    w_pof: usize,
    st_pof: usize,
}

impl AccelConfig {
    /// The ratio between ST-ARCH and W-ARCH throughput (paper Eq. 8):
    /// Discriminator updates issue five ST passes per two W passes, so
    /// W-ARCH may run at 2/5 of ST-ARCH speed.
    pub const ST_TO_W_RATIO: f64 = 2.5;

    /// Derives the unrolling from platform limits: `W_Pof` from Eq. 7 (off-
    /// chip bandwidth) and `ST_Pof = 2.5 × W_Pof` from Eq. 8.
    ///
    /// # Panics
    ///
    /// Panics if parameters are non-positive or the bandwidth cannot sustain
    /// even one W-ARCH channel.
    pub fn from_platform(frequency_mhz: f64, bandwidth_gbps: f64, data_bits: u32) -> Self {
        assert!(data_bits > 0, "data width must be non-zero");
        let dram = DramModel::new(bandwidth_gbps, frequency_mhz);
        let w_pof = dram.eq7_w_pof(data_bits);
        assert!(
            w_pof >= 1,
            "bandwidth cannot sustain a single W-ARCH channel"
        );
        let st_pof = (Self::ST_TO_W_RATIO * w_pof as f64).round() as usize;
        Self {
            frequency_mhz,
            bandwidth_gbps,
            data_bits,
            grid: 4,
            w_pof,
            st_pof,
        }
    }

    /// The paper's platform: Xilinx VCU118, 200 MHz PEs, 192 Gbit/s DDR4,
    /// 16-bit datapath.
    pub fn vcu118() -> Self {
        Self::from_platform(200.0, 192.0, 16)
    }

    /// A configuration with exactly `total` PEs, split `ST : W = 2.5 : 1`
    /// as Eq. 8 prescribes (used for the Fig. 18 PE sweep). Bandwidth and
    /// frequency keep the VCU118 values.
    ///
    /// # Panics
    ///
    /// Panics if `total` is too small to give each array one channel
    /// (less than `2 × grid²` PEs).
    pub fn with_total_pes(total: usize) -> Self {
        let grid = 4usize;
        let cell = grid * grid;
        assert!(total >= 2 * cell, "need at least {} PEs", 2 * cell);
        let channels = total / cell;
        // Split channels 2.5 : 1, keeping at least one W channel.
        let w_pof = ((channels as f64) / 3.5).round().max(1.0) as usize;
        let st_pof = channels - w_pof;
        assert!(st_pof >= 1, "split leaves ST-ARCH empty");
        Self {
            frequency_mhz: 200.0,
            bandwidth_gbps: 192.0,
            data_bits: 16,
            grid,
            w_pof,
            st_pof,
        }
    }

    /// Fully explicit constructor: platform limits plus the array shape.
    /// `grid` is the PE-array edge of both arrays (the paper's Section V-A
    /// picks 4, the minimum output feature map / kernel of DCGAN).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn custom(
        frequency_mhz: f64,
        bandwidth_gbps: f64,
        data_bits: u32,
        grid: usize,
        st_pof: usize,
        w_pof: usize,
    ) -> Self {
        assert!(
            frequency_mhz > 0.0 && bandwidth_gbps > 0.0,
            "platform limits must be positive"
        );
        assert!(
            data_bits > 0 && grid > 0 && st_pof > 0 && w_pof > 0,
            "shape must be non-zero"
        );
        Self {
            frequency_mhz,
            bandwidth_gbps,
            data_bits,
            grid,
            w_pof,
            st_pof,
        }
    }

    /// A variant of this configuration with a different PE-grid edge,
    /// re-splitting (approximately) the same total PE budget — the
    /// Section V-A grid ablation.
    ///
    /// # Panics
    ///
    /// Panics if `grid` is zero or too large for the budget.
    pub fn with_grid(&self, grid: usize) -> Self {
        assert!(grid > 0, "grid must be non-zero");
        let st_pof = (self.st_pes() / (grid * grid)).max(1);
        let w_pof = (self.w_pes() / (grid * grid)).max(1);
        Self::custom(
            self.frequency_mhz,
            self.bandwidth_gbps,
            self.data_bits,
            grid,
            st_pof,
            w_pof,
        )
    }

    /// PE clock in MHz.
    pub fn frequency_mhz(&self) -> f64 {
        self.frequency_mhz
    }

    /// Off-chip bandwidth in Gbit/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bandwidth_gbps
    }

    /// Datapath width in bits.
    pub fn data_bits(&self) -> u32 {
        self.data_bits
    }

    /// Bytes per data element.
    pub fn bytes_per_elem(&self) -> usize {
        (self.data_bits as usize).div_ceil(8)
    }

    /// PE grid edge of each array.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// `W_Pof`: ZFWST channel unrolling (Eq. 7).
    pub fn w_pof(&self) -> usize {
        self.w_pof
    }

    /// `ST_Pof`: ZFOST channel unrolling (Eq. 8).
    pub fn st_pof(&self) -> usize {
        self.st_pof
    }

    /// PEs in the ST-ARCH array.
    pub fn st_pes(&self) -> usize {
        self.grid * self.grid * self.st_pof
    }

    /// PEs in the W-ARCH array.
    pub fn w_pes(&self) -> usize {
        self.grid * self.grid * self.w_pof
    }

    /// Total PEs across both arrays.
    pub fn total_pes(&self) -> usize {
        self.st_pes() + self.w_pes()
    }

    /// The DRAM model implied by this configuration.
    pub fn dram(&self) -> DramModel {
        DramModel::new(self.bandwidth_gbps, self.frequency_mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcu118_matches_paper_section_v() {
        let c = AccelConfig::vcu118();
        assert_eq!(c.w_pof(), 30);
        assert_eq!(c.st_pof(), 75);
        assert_eq!(c.st_pes(), 1200);
        assert_eq!(c.w_pes(), 480);
        assert_eq!(c.total_pes(), 1680);
        assert_eq!(c.bytes_per_elem(), 2);
    }

    #[test]
    fn eq8_ratio_holds() {
        let c = AccelConfig::vcu118();
        let ratio = c.st_pof() as f64 / c.w_pof() as f64;
        assert!((ratio - AccelConfig::ST_TO_W_RATIO).abs() < 1e-9);
    }

    #[test]
    fn pe_sweep_split_preserves_ratio_roughly() {
        for total in [512usize, 1024, 2048] {
            let c = AccelConfig::with_total_pes(total);
            assert!(c.total_pes() <= total);
            let ratio = c.st_pof() as f64 / c.w_pof() as f64;
            assert!((2.0..=3.0).contains(&ratio), "total {total}: ratio {ratio}");
        }
    }

    #[test]
    fn halving_bandwidth_halves_w_pof() {
        let full = AccelConfig::from_platform(200.0, 192.0, 16);
        let half = AccelConfig::from_platform(200.0, 96.0, 16);
        assert_eq!(half.w_pof(), full.w_pof() / 2);
    }

    #[test]
    fn grid_variants_preserve_the_budget_roughly() {
        let base = AccelConfig::vcu118();
        for grid in [2usize, 3, 4, 5, 8] {
            let c = base.with_grid(grid);
            assert_eq!(c.grid(), grid);
            let ratio = c.total_pes() as f64 / base.total_pes() as f64;
            assert!((0.7..=1.1).contains(&ratio), "grid {grid}: ratio {ratio}");
        }
    }

    #[test]
    fn custom_constructor_is_explicit() {
        let c = AccelConfig::custom(100.0, 96.0, 8, 5, 40, 16);
        assert_eq!(c.grid(), 5);
        assert_eq!(c.st_pes(), 25 * 40);
        assert_eq!(c.bytes_per_elem(), 1);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn tiny_budget_rejected() {
        let _ = AccelConfig::with_total_pes(16);
    }
}
