//! FPGA resource model — paper Table III.
//!
//! The estimate is calibrated against the paper's reported utilization of
//! the XCVU9P (254 523 LUTs, 79 668 FFs, 2 008 BRAM blocks, 1 694 DSPs for
//! 1 680 PEs): one DSP slice per PE plus address-generation overhead,
//! ~145 LUTs and ~44 FFs of datapath/control per PE, one 36 Kbit BRAM
//! block of register/partial-sum storage per PE, and banked BRAM blocks
//! (one bank per PE-grid column) for the Section V-B buffers.

use serde::{Deserialize, Serialize};
use zfgan_workloads::GanSpec;

use crate::buffers::BufferPlan;
use crate::config::AccelConfig;

/// XCVU9P totals (paper Table III, right column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceCapacity {
    /// Logic LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub flip_flops: u64,
    /// 36 Kbit block RAMs.
    pub bram_blocks: u64,
    /// DSP slices.
    pub dsps: u64,
}

impl DeviceCapacity {
    /// The paper's Xilinx UltraScale+ XCVU9P.
    pub fn xcvu9p() -> Self {
        Self {
            luts: 1_182_240,
            flip_flops: 2_364_480,
            bram_blocks: 2_160,
            dsps: 6_840,
        }
    }
}

/// Estimated resource usage of one accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceModel {
    /// Logic LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub flip_flops: u64,
    /// 36 Kbit block RAMs.
    pub bram_blocks: u64,
    /// DSP slices.
    pub dsps: u64,
}

const LUTS_PER_PE: u64 = 145;
const LUTS_FIXED: u64 = 11_000; // DMA engines, AXI, control FSMs
const FFS_PER_PE: u64 = 44;
const FFS_FIXED: u64 = 5_700;
const DSPS_FIXED: u64 = 14; // address generators
const BRAM_BYTES_PER_BLOCK: u64 = 36 * 1024 / 8;

impl ResourceModel {
    /// Estimates resources for `config` running `spec`.
    pub fn estimate(config: &AccelConfig, spec: &GanSpec) -> Self {
        let pes = config.total_pes() as u64;
        let plan = BufferPlan::for_spec(spec, config);
        // Each named buffer rounds up to whole BRAM blocks independently;
        // wide buffers replicate for banked access (factor from port width:
        // one bank per PE-grid column).
        let banks = config.grid() as u64;
        let buffer_blocks: u64 = plan
            .named_sizes()
            .iter()
            .map(|&(_, bytes)| {
                let per_bank = bytes.div_ceil(banks);
                banks * per_bank.div_ceil(BRAM_BYTES_PER_BLOCK)
            })
            .sum();
        Self {
            luts: LUTS_FIXED + LUTS_PER_PE * pes,
            flip_flops: FFS_FIXED + FFS_PER_PE * pes,
            // One block of register/psum storage per PE + the banked
            // Section V-B buffers.
            bram_blocks: pes + buffer_blocks,
            dsps: DSPS_FIXED + pes,
        }
    }

    /// Whether the estimate fits a device.
    pub fn fits(&self, device: &DeviceCapacity) -> bool {
        self.luts <= device.luts
            && self.flip_flops <= device.flip_flops
            && self.bram_blocks <= device.bram_blocks
            && self.dsps <= device.dsps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_is_in_the_ballpark_of_table_iii() {
        // Paper Table III: 254 523 LUTs, 79 668 FFs, 2 008 BRAMs, 1 694
        // DSPs. The estimate should land within ±30% on every row.
        let m = ResourceModel::estimate(&AccelConfig::vcu118(), &GanSpec::dcgan());
        let within = |est: u64, paper: u64| {
            let r = est as f64 / paper as f64;
            (0.7..=1.3).contains(&r)
        };
        assert!(within(m.luts, 254_523), "LUTs {}", m.luts);
        assert!(within(m.flip_flops, 79_668), "FFs {}", m.flip_flops);
        assert!(within(m.bram_blocks, 2_008), "BRAMs {}", m.bram_blocks);
        assert!(within(m.dsps, 1_694), "DSPs {}", m.dsps);
    }

    #[test]
    fn design_fits_the_device() {
        let m = ResourceModel::estimate(&AccelConfig::vcu118(), &GanSpec::dcgan());
        assert!(m.fits(&DeviceCapacity::xcvu9p()));
    }

    #[test]
    fn more_pes_cost_more_dsps() {
        let small = ResourceModel::estimate(&AccelConfig::with_total_pes(512), &GanSpec::cgan());
        let big = ResourceModel::estimate(&AccelConfig::with_total_pes(2048), &GanSpec::cgan());
        assert!(big.dsps > small.dsps);
        assert!(big.luts > small.luts);
    }
}
