//! The Fig. 17 design space: unique vs combinational architectures under
//! synchronized vs deferred training.
//!
//! * A **unique** design runs every phase on one array holding the whole PE
//!   budget. Deferral does not change its performance — there is nothing to
//!   overlap ("the performance of unique architecture remains the same").
//! * A **combinational** design splits the budget `ST : W = 2.5 : 1`
//!   (Eq. 8) between an ST-ARCH and a W-ARCH. Under the original
//!   synchronized algorithm "only one architecture … works at each time",
//!   so the two serialize; with deferred synchronization the per-sample
//!   loops pipeline and the iteration time is the *slower* array's total.

use serde::{Deserialize, Serialize};
use zfgan_dataflow::{ArchKind, Dataflow, PhaseTuned};
use zfgan_workloads::{GanSpec, PhaseSeq};

use crate::config::AccelConfig;

/// Synchronization policy of the training algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncPolicy {
    /// Original algorithm: loss synchronization barrier between all forward
    /// and all backward passes.
    Synchronized,
    /// Paper Section IV-A: per-sample backward immediately after forward.
    Deferred,
}

/// One competitor of the Fig. 17 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Design {
    /// All phases on one architecture with the full PE budget.
    Unique(ArchKind),
    /// ST phases on `st`, W phases on `w`, budget split per Eq. 8.
    Combo {
        /// Architecture of the ST-ARCH array.
        st: ArchKind,
        /// Architecture of the W-ARCH array.
        w: ArchKind,
    },
}

impl Design {
    /// The five designs of paper Fig. 17, in its order: OST, ZFWST, ZFOST
    /// (unique), NLR-OST, ZFOST-ZFWST (combinational).
    pub fn paper_designs() -> Vec<Design> {
        vec![
            Design::Unique(ArchKind::Ost),
            Design::Unique(ArchKind::Zfwst),
            Design::Unique(ArchKind::Zfost),
            Design::Combo {
                st: ArchKind::Nlr,
                w: ArchKind::Ost,
            },
            Design::Combo {
                st: ArchKind::Zfost,
                w: ArchKind::Zfwst,
            },
        ]
    }

    /// Display name matching the paper's legend.
    pub fn name(&self) -> String {
        match self {
            Design::Unique(a) => a.name().to_string(),
            Design::Combo { st, w } => format!("{}-{}", st.name(), w.name()),
        }
    }

    /// Evaluates one network update on this design.
    ///
    /// # Panics
    ///
    /// Panics if `total_pes` is too small to tune (fewer than 32).
    pub fn evaluate(
        &self,
        spec: &GanSpec,
        seq: PhaseSeq,
        policy: SyncPolicy,
        total_pes: usize,
    ) -> DesignReport {
        assert!(total_pes >= 32, "PE budget too small");
        let st_phases = spec.st_phases(seq);
        let w_phases = spec.w_phases(seq);
        match self {
            Design::Unique(arch) => {
                let all: Vec<_> = st_phases.iter().chain(&w_phases).copied().collect();
                let tuned = PhaseTuned::tune(*arch, total_pes, &all);
                let st_cycles = tuned.schedule_all(&st_phases).cycles;
                let w_cycles = tuned.schedule_all(&w_phases).cycles;
                // One array: everything serializes regardless of policy.
                DesignReport {
                    design: *self,
                    policy,
                    st_cycles,
                    w_cycles,
                    total_cycles: st_cycles + w_cycles,
                    total_pes,
                }
            }
            Design::Combo { st, w } => {
                let st_budget =
                    ((total_pes as f64) * AccelConfig::ST_TO_W_RATIO / 3.5).round() as usize;
                let w_budget = total_pes - st_budget;
                let st_tuned = PhaseTuned::tune(*st, st_budget, &st_phases);
                let w_tuned = PhaseTuned::tune(*w, w_budget, &w_phases);
                let st_cycles = st_tuned.schedule_all(&st_phases).cycles;
                let w_cycles = w_tuned.schedule_all(&w_phases).cycles;
                let total_cycles = match policy {
                    // Only one array works at a time.
                    SyncPolicy::Synchronized => st_cycles + w_cycles,
                    // Per-sample loops pipeline across the batch: steady
                    // state is governed by the slower array.
                    SyncPolicy::Deferred => st_cycles.max(w_cycles),
                };
                DesignReport {
                    design: *self,
                    policy,
                    st_cycles,
                    w_cycles,
                    total_cycles,
                    total_pes,
                }
            }
        }
    }

    /// Evaluates a full training iteration (Discriminator + Generator
    /// update) and returns total cycles per sample.
    pub fn iteration_cycles(&self, spec: &GanSpec, policy: SyncPolicy, total_pes: usize) -> u64 {
        self.evaluate(spec, PhaseSeq::DisUpdate, policy, total_pes)
            .total_cycles
            + self
                .evaluate(spec, PhaseSeq::GenUpdate, policy, total_pes)
                .total_cycles
    }
}

/// Outcome of evaluating a [`Design`] on one update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignReport {
    /// The evaluated design.
    pub design: Design,
    /// The evaluated policy.
    pub policy: SyncPolicy,
    /// Cycles spent on `S-CONV`/`T-CONV` passes.
    pub st_cycles: u64,
    /// Cycles spent on `W-CONV` passes.
    pub w_cycles: u64,
    /// Total cycles per sample for this update.
    pub total_cycles: u64,
    /// PE budget used.
    pub total_pes: usize,
}

impl DesignReport {
    /// Throughput relative to another report (higher = faster).
    pub fn speedup_over(&self, other: &DesignReport) -> f64 {
        other.total_cycles as f64 / self.total_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PES: usize = 1680;

    fn eval(design: Design, policy: SyncPolicy) -> DesignReport {
        design.evaluate(&GanSpec::cgan(), PhaseSeq::DisUpdate, policy, PES)
    }

    #[test]
    fn unique_designs_ignore_the_policy() {
        let a = eval(Design::Unique(ArchKind::Zfost), SyncPolicy::Synchronized);
        let b = eval(Design::Unique(ArchKind::Zfost), SyncPolicy::Deferred);
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn deferral_unlocks_the_combinational_design() {
        let combo = Design::Combo {
            st: ArchKind::Zfost,
            w: ArchKind::Zfwst,
        };
        let sync = eval(combo, SyncPolicy::Synchronized);
        let deferred = eval(combo, SyncPolicy::Deferred);
        assert!(deferred.total_cycles < sync.total_cycles);
        assert_eq!(
            deferred.total_cycles,
            deferred.st_cycles.max(deferred.w_cycles)
        );
        assert_eq!(sync.total_cycles, sync.st_cycles + sync.w_cycles);
    }

    #[test]
    fn under_synchronization_unique_zfost_beats_the_combo() {
        // Paper: "Under the synchronization … the unique architecture ZFOST
        // outperforms our combinational architecture."
        let unique = eval(Design::Unique(ArchKind::Zfost), SyncPolicy::Synchronized);
        let combo = eval(
            Design::Combo {
                st: ArchKind::Zfost,
                w: ArchKind::Zfwst,
            },
            SyncPolicy::Synchronized,
        );
        assert!(unique.total_cycles < combo.total_cycles);
    }

    #[test]
    fn deferred_zfost_zfwst_is_the_overall_winner() {
        // "Overall" = a full training iteration (Discriminator + Generator
        // update), the granularity of the paper's headline claim. On the
        // D-update alone a full-budget unique ZFOST can tie the combo
        // (both are near-ideal on D̄w); the Ḡw phase is where the unique
        // design loses and the ZFWST array earns its keep.
        let spec = GanSpec::cgan();
        let winner = Design::Combo {
            st: ArchKind::Zfost,
            w: ArchKind::Zfwst,
        };
        let w = winner.iteration_cycles(&spec, SyncPolicy::Deferred, PES);
        for d in Design::paper_designs() {
            for p in [SyncPolicy::Synchronized, SyncPolicy::Deferred] {
                let r = d.iteration_cycles(&spec, p, PES);
                assert!(
                    w <= r,
                    "{} under {:?} ({r}) beats ZFOST-ZFWST ({w})",
                    d.name(),
                    p,
                );
            }
        }
    }

    #[test]
    fn zf_combo_beats_traditional_combo() {
        let zf = eval(
            Design::Combo {
                st: ArchKind::Zfost,
                w: ArchKind::Zfwst,
            },
            SyncPolicy::Deferred,
        );
        let trad = eval(
            Design::Combo {
                st: ArchKind::Nlr,
                w: ArchKind::Ost,
            },
            SyncPolicy::Deferred,
        );
        assert!(
            zf.speedup_over(&trad) > 1.2,
            "speedup {}",
            zf.speedup_over(&trad)
        );
    }

    #[test]
    fn average_speedup_over_traditional_designs_is_paper_scale() {
        // The abstract's headline: "best performance (average 4.3X) with the
        // same computing resource" over traditional accelerators. Average
        // our winner's speedup over the traditional designs across the three
        // GANs and both updates; accept the 2×–8× band (exact 4.3 depends
        // on the authors' layer mix).
        let winner = Design::Combo {
            st: ArchKind::Zfost,
            w: ArchKind::Zfwst,
        };
        let traditional = [
            Design::Unique(ArchKind::Ost),
            Design::Combo {
                st: ArchKind::Nlr,
                w: ArchKind::Ost,
            },
        ];
        let mut speedups = Vec::new();
        for spec in GanSpec::all_paper_gans() {
            for seq in [PhaseSeq::DisUpdate, PhaseSeq::GenUpdate] {
                let w = winner.evaluate(&spec, seq, SyncPolicy::Deferred, PES);
                for t in traditional {
                    let r = t.evaluate(&spec, seq, SyncPolicy::Synchronized, PES);
                    speedups.push(w.speedup_over(&r));
                }
            }
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        assert!((2.0..=8.0).contains(&avg), "average speedup {avg}");
    }

    #[test]
    fn design_names_match_the_legend() {
        let names: Vec<_> = Design::paper_designs().iter().map(Design::name).collect();
        assert_eq!(
            names,
            vec!["OST", "ZFWST", "ZFOST", "NLR-OST", "ZFOST-ZFWST"]
        );
    }

    #[test]
    fn iteration_cycles_sum_both_updates() {
        let d = Design::Unique(ArchKind::Zfost);
        let spec = GanSpec::mnist_gan();
        let total = d.iteration_cycles(&spec, SyncPolicy::Deferred, PES);
        let dis = d.evaluate(&spec, PhaseSeq::DisUpdate, SyncPolicy::Deferred, PES);
        let gen = d.evaluate(&spec, PhaseSeq::GenUpdate, SyncPolicy::Deferred, PES);
        assert_eq!(total, dis.total_cycles + gen.total_cycles);
    }
}
